#!/usr/bin/env python3
"""The Weather hot-spot study: Figures 8, 9 and 10 in one script.

Reproduces the paper's central experiment at full machine size (64
processors): an innocuous variable — initialized by one processor, read by
all — cripples limited directories, while LimitLESS rides it out in
software.

Run:  python examples/weather_hotspot.py  [n_procs]
"""

import sys

from repro import AlewifeConfig, run_experiment
from repro.stats.report import bar_chart
from repro.workloads import WeatherWorkload

PROCS = int(sys.argv[1]) if len(sys.argv) > 1 else 64


def run(protocol: str, label: str, **extras):
    config = AlewifeConfig(n_procs=PROCS, protocol=protocol, **extras)
    stats = run_experiment(config, WeatherWorkload(iterations=5))
    print(f"  {label:24s} {stats.cycles:>10,} cycles   traps={stats.traps_taken}")
    return label, stats.mcycles()


def main() -> None:
    print(f"Weather (unoptimized hot variable), {PROCS} processors\n")

    print("Figure 8 — limited directories thrash:")
    fig8 = [
        run("limited", "Dir1NB", pointers=1),
        run("limited", "Dir2NB", pointers=2),
        run("limited", "Dir4NB", pointers=4),
        run("fullmap", "Full-Map"),
    ]
    print("\n" + bar_chart("Figure 8", fig8) + "\n")

    print("Figure 9 — LimitLESS tracks full-map across Ts:")
    fig9 = [run("limited", "Dir4NB", pointers=4)]
    for ts in (150, 100, 50, 25):
        fig9.append(run("limitless", f"LimitLESS4 Ts={ts}", pointers=4, ts=ts))
    fig9.append(run("fullmap", "Full-Map"))
    print("\n" + bar_chart("Figure 9", fig9) + "\n")

    print("Figure 10 — graceful degradation with fewer pointers:")
    fig10 = [run("limited", "Dir4NB", pointers=4)]
    for p in (1, 2, 4):
        fig10.append(run("limitless", f"LimitLESS{p}", pointers=p, ts=50))
    fig10.append(run("fullmap", "Full-Map"))
    print("\n" + bar_chart("Figure 10", fig10))


if __name__ == "__main__":
    main()
