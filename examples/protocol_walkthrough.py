#!/usr/bin/env python3
"""Protocol walkthrough: watch Table 2 happen, message by message.

Instruments the network of a 6-node machine and prints every protocol
packet for one shared block while a script of reads and writes drives the
directory through its states — including a LimitLESS pointer overflow and
the Trap-On-Write termination.

Run:  python examples/protocol_walkthrough.py
"""

from repro import AlewifeConfig
from repro.machine import AlewifeMachine
from repro.proc import ops
from repro.workloads.base import Workload


class _Script(Workload):
    """Readers 1..4 share a block homed at 0; node 5 then writes it."""

    name = "walkthrough"

    def __init__(self):
        self.addr = None

    def build(self, machine):
        var = machine.allocator.alloc_scalar("X", home=0)
        self.addr = var.base

        def reader(p):
            yield ops.think(10 * p)  # stagger arrivals for a readable trace
            yield ops.load(var.base)

        def writer():
            yield ops.think(400)
            yield ops.store(var.base, 99)

        programs = {p: [reader(p)] for p in range(1, 5)}
        programs[0] = [reader(0)]
        programs[5] = [writer()]
        return programs


def main() -> None:
    # Two hardware pointers: the third reader overflows into software.
    config = AlewifeConfig(n_procs=6, protocol="limitless", pointers=2, ts=50)
    machine = AlewifeMachine(config)
    workload = _Script()
    programs = workload.build(machine)
    block = machine.space.block_of(workload.addr)

    original_send = machine.network.send

    def traced_send(packet):
        if packet.address == block and packet.is_protocol:
            txn = packet.meta.get("txn")
            extra = f" txn={txn}" if txn is not None else ""
            data = " +data" if packet.data is not None else ""
            print(
                f"  [{machine.sim.now:>5}] {packet.opcode:6s} "
                f"node{packet.src} -> node{packet.dst}{extra}{data}"
            )
        original_send(packet)

    machine.network.send = traced_send

    entry = machine.nodes[0].directory_controller.directory.entry(block)
    last = {"state": None}

    def watch_state():
        snapshot = (entry.state.name, entry.meta.name, tuple(sorted(entry.sharers)))
        if snapshot != last["state"]:
            print(
                f"  [{machine.sim.now:>5}]        directory: "
                f"{entry.state.name} / {entry.meta.name} P={set(snapshot[2]) or '{}'}"
            )
            last["state"] = snapshot
        machine.sim.call_after(5, watch_state)

    print("Block X homed at node 0; LimitLESS with TWO hardware pointers.\n")
    for proc_id, gens in programs.items():
        for gen in gens:
            machine.nodes[proc_id].processor.add_thread(gen)
    machine.sim.call_at(0, watch_state)
    for node in machine.nodes:
        node.start()
    machine.sim.run(until=1200)

    software = machine.nodes[0].software
    print(
        f"\nTraps taken at node 0: {machine.nodes[0].processor.traps_taken} "
        f"(software vector now {software.vectors.get(block, 'freed')})"
    )
    print(f"Final directory state: {entry.state.name}, P={entry.all_copy_holders()}")


if __name__ == "__main__":
    main()
