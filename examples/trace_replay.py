#!/usr/bin/env python3
"""Post-mortem trace methodology (§5.1): record once, replay everywhere.

ASIM's second input source was a dynamic post-mortem trace scheduler: a
parallel trace with embedded synchronization, replayed against the memory
simulator with network feedback.  This example records the Weather memory
reference stream from one execution and replays the *identical* stream
under every directory scheme — the controlled comparison the paper used.

Run:  python examples/trace_replay.py  [n_procs]
"""

import sys

from repro import AlewifeConfig
from repro.machine import AlewifeMachine
from repro.stats.report import format_table
from repro.workloads import TraceReplayWorkload, WeatherWorkload, record_trace

PROCS = int(sys.argv[1]) if len(sys.argv) > 1 else 32


def main() -> None:
    print(f"Recording Weather ({PROCS} processors) under Full-Map...")
    config = AlewifeConfig(n_procs=PROCS, protocol="fullmap")
    trace, recorded = record_trace(config, WeatherWorkload(iterations=4))
    print(
        f"  {trace.references():,} memory references across "
        f"{trace.n_procs} streams; recording run took {recorded.cycles:,} cycles\n"
    )

    rows = []
    for label, protocol, extras in [
        ("Dir1NB", "limited", {"pointers": 1}),
        ("Dir4NB", "limited", {"pointers": 4}),
        ("Dir4B (broadcast)", "limited_broadcast", {"pointers": 4}),
        ("LimitLESS4 Ts=50", "limitless", {"pointers": 4, "ts": 50}),
        ("Chained", "chained", {}),
        ("Full-Map", "fullmap", {}),
    ]:
        machine = AlewifeMachine(
            AlewifeConfig(n_procs=PROCS, protocol=protocol, **extras)
        )
        stats = machine.run(TraceReplayWorkload(trace))
        rows.append((label, stats))
        print(f"  replayed under {label:20s} {stats.cycles:>9,} cycles")

    baseline = rows[-1][1].cycles
    print()
    print(
        format_table(
            ["scheme", "cycles", "vs Full-Map", "traps", "evictions"],
            [
                (
                    label,
                    f"{s.cycles:,}",
                    f"{s.cycles / baseline:.2f}x",
                    s.traps_taken,
                    s.counters.get("dir.pointer_evictions"),
                )
                for label, s in rows
            ],
        )
    )
    print(
        "\nIdentical reference streams, different directories: the spread "
        "is pure protocol."
    )


if __name__ == "__main__":
    main()
