#!/usr/bin/env python3
"""The paper's scaling arguments, computed: §3.1 latency and §1 memory.

Prints (1) the Th + m*Ts latency model with the paper's worked example,
(2) directory memory overhead versus machine size for every scheme, and
(3) the write-latency comparison against chained directories.

Run:  python examples/scalability_model.py
"""

from repro.model.analytical import (
    chained_write_latency,
    directory_overhead,
    fanout_write_latency,
    limitless_remote_latency,
    slowdown_vs_fullmap,
    software_only_viability,
)
from repro.stats.report import format_table


def latency_model() -> None:
    print("§3.1 latency model: remote latency = Th + m * Ts  (Th = 35)\n")
    rows = []
    for m in (0.0, 0.01, 0.03, 0.10, 1.0):
        row = [f"{m:.0%}"]
        for ts in (25, 50, 100, 150):
            slowdown = slowdown_vs_fullmap(35, ts, m)
            row.append(f"{limitless_remote_latency(35, ts, m):.1f} ({slowdown:+.0%})")
        rows.append(row)
    print(format_table(["m \\ Ts", "25", "50", "100", "150"], rows))
    print(
        "\nThe worked example: m=3%, Ts=100 -> "
        f"{slowdown_vs_fullmap(35, 100, 0.03):.0%} slower than full-map "
        "(the paper's 10%).\n"
    )
    print(
        "Migration path: all-software coherence (m=1) costs "
        f"{software_only_viability(35, 100):+.0%} today, but only "
        f"{software_only_viability(1000, 50):+.0%} once network latency "
        "dominates (Th=1000, Ts=50).\n"
    )


def memory_model() -> None:
    print("§1 directory memory overhead (4 MB/node, 16-byte blocks):\n")
    rows = []
    for n in (16, 64, 256, 1024):
        full = directory_overhead("fullmap", n)
        limited = directory_overhead("limited", n)
        limitless = directory_overhead("limitless", n)
        chained = directory_overhead("chained", n)
        rows.append(
            [
                n,
                f"{full.overhead_ratio:.1%}",
                f"{limited.overhead_ratio:.1%}",
                f"{limitless.overhead_ratio:.1%}",
                f"{chained.overhead_ratio:.1%}",
                f"{full.directory_bits / limitless.directory_bits:.1f}x",
            ]
        )
    print(
        format_table(
            ["N", "full-map", "Dir4NB", "LimitLESS4", "chained", "full/LimitLESS"],
            rows,
        )
    )
    print(
        "\nFull-map grows O(N^2); LimitLESS keeps the O(N) footprint of a "
        "limited directory\n(plus two meta-state bits and the Local Bit per "
        "entry).\n"
    )


def write_latency_model() -> None:
    print("§1 invalidate latency: serial chain walk vs parallel fan-out\n")
    round_trip = 40.0
    rows = [
        [
            ws,
            f"{chained_write_latency(ws, round_trip):.0f}",
            f"{fanout_write_latency(ws, round_trip):.0f}",
        ]
        for ws in (1, 2, 4, 16, 64, 256)
    ]
    print(format_table(["worker-set", "chained (cycles)", "fan-out (cycles)"], rows))
    print(
        "\nChained directories pay one network round trip per sharer — the "
        "high write\nlatency the paper cites when rejecting them for very "
        "large machines."
    )


def main() -> None:
    latency_model()
    memory_model()
    write_latency_model()


if __name__ == "__main__":
    main()
