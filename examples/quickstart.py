#!/usr/bin/env python3
"""Quickstart: simulate one Alewife machine and compare two protocols.

Builds a 16-processor Alewife machine, runs the Weather workload under a
four-pointer limited directory and under LimitLESS, and prints the result.

Run:  python examples/quickstart.py
"""

from repro import AlewifeConfig, run_experiment
from repro.stats.report import comparison_table
from repro.workloads import WeatherWorkload

PROCS = 16


def main() -> None:
    workload = WeatherWorkload(iterations=4)
    print(f"Workload: {workload.describe()} on {PROCS} processors\n")

    runs = []
    for protocol, extras in [
        ("limited", {"pointers": 4}),
        ("limitless", {"pointers": 4, "ts": 50}),
        ("fullmap", {}),
    ]:
        config = AlewifeConfig(n_procs=PROCS, protocol=protocol, **extras)
        stats = run_experiment(config, workload)
        runs.append(stats)
        print(stats.summary())

    print()
    print(comparison_table(runs, baseline_label="Full-Map"))
    print(
        "\nLimitLESS pays a few software traps on the widely shared "
        "variable,\nthen performs like full-map — with the memory of a "
        "limited directory."
    )


if __name__ == "__main__":
    main()
