#!/usr/bin/env python3
"""§6 in action: find the hot variable with the trap handler, then fix it.

This retells the paper's war story.  Kiyoshi Kurihara found the hot-spot
variable in the Weather forecasting code; §6 proposes that the LimitLESS
trap handler itself "record the worker-set of each variable that overflows
its hardware directory" so the programmer or compiler can find such
variables automatically.

The script (1) runs unoptimized Weather under LimitLESS, (2) asks the
software directory which blocks overflowed and how wide their worker-sets
got, (3) names the culprit, and (4) reruns with the optimization applied.

Run:  python examples/worker_set_profiling.py
"""

from repro import AlewifeConfig
from repro.extensions import overflow_worker_sets
from repro.machine import AlewifeMachine
from repro.workloads import WeatherWorkload

PROCS = 32


def run(optimized: bool):
    config = AlewifeConfig(n_procs=PROCS, protocol="limitless", pointers=4, ts=50)
    machine = AlewifeMachine(config)
    stats = machine.run(WeatherWorkload(iterations=5, optimized=optimized))
    return machine, stats


def main() -> None:
    print(f"Step 1: run unoptimized Weather on {PROCS} processors (LimitLESS4)\n")
    machine, stats = run(optimized=False)
    print(f"  execution time: {stats.cycles:,} cycles, {stats.traps_taken} traps\n")

    print("Step 2: worker-sets recorded by the LimitLESS trap handler:\n")
    names = {}
    for alloc in machine.allocator.allocations:
        names[machine.space.block_of(alloc.base)] = alloc.name
    report = overflow_worker_sets(machine)
    rows = sorted(report.items(), key=lambda kv: -kv[1])
    for block, worker_set in rows[:6]:
        print(f"  {names.get(block, hex(block)):28s} worker-set {worker_set}")

    culprit_block, width = rows[0]
    culprit = names.get(culprit_block, hex(culprit_block))
    print(
        f"\nStep 3: '{culprit}' is read by {width} processors but its home "
        "has only 4 hardware pointers.\n        Flag it read-only (the "
        "paper's fix) and rerun:\n"
    )

    _, optimized_stats = run(optimized=True)
    print(
        f"  unoptimized: {stats.cycles:>10,} cycles ({stats.traps_taken} traps)\n"
        f"  optimized:   {optimized_stats.cycles:>10,} cycles "
        f"({optimized_stats.traps_taken} traps)\n"
    )
    speedup = stats.cycles / optimized_stats.cycles
    print(f"  speedup from the feedback loop: {speedup:.2f}x")


if __name__ == "__main__":
    main()
