"""Minimal asyncio HTTP/JSON front for :class:`SweepService`.

A handwritten HTTP/1.1 layer over ``asyncio.start_server`` — no
dependencies beyond the stdlib, no framework.  One request per
connection (``Connection: close``), JSON in and out, and close-delimited
NDJSON for progress streams (clients read lines until EOF, so the stream
needs neither chunked encoding nor a length).

Endpoints::

    GET  /healthz            liveness + drain state
    GET  /metrics            counters, latency percentiles, gauges
    POST /jobs               submit a job (202; 200 when served warm)
    GET  /jobs               recent job snapshots (?limit=N)
    GET  /jobs/<id>          one job snapshot
    GET  /jobs/<id>/stream   NDJSON progress events until the job ends
    POST /shutdown           begin graceful drain, then exit

Admission failures map to structured JSON errors with the service's own
status codes: 429 ``queue_full``, 413 ``over_budget``, 503
``shutting_down``, 400 ``bad_request``.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Optional

from .service import AdmissionError, BadRequest, SweepService

#: refuse request bodies larger than this (a job grid is a few KB)
MAX_BODY_BYTES = 4 << 20

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HTTPError(Exception):
    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = status
        self.code = code


def _head(status: int, content_type: str, length: Optional[int]) -> bytes:
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        "Connection: close",
    ]
    if length is not None:
        lines.append(f"Content-Length: {length}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


def _json_bytes(payload: dict) -> bytes:
    return (json.dumps(payload) + "\n").encode("utf-8")


class SweepServer:
    """Serve one :class:`SweepService` over HTTP on an asyncio loop."""

    def __init__(
        self, service: SweepService, host: str = "127.0.0.1", port: int = 8351
    ):
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()

    async def start(self) -> tuple[str, int]:
        """Bind and listen; returns the actual (host, port)."""
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    def request_shutdown(self) -> None:
        """Flip the server into drain mode (thread-unsafe; loop only)."""
        self.service.begin_drain()
        self._shutdown.set()

    async def serve_until_shutdown(self, *, drain_timeout: float | None = None) -> None:
        """Serve until :meth:`request_shutdown`, then drain and close.

        Draining happens off-loop (``service.close`` blocks on in-flight
        jobs) so the server keeps answering ``/healthz`` and streams keep
        flowing while the pool finishes.
        """
        if self._server is None:
            await self.start()
        await self._shutdown.wait()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, lambda: self.service.close(drain=True, timeout=drain_timeout)
        )
        self._server.close()
        await self._server.wait_closed()

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, query, body = await self._read_request(reader)
            except _HTTPError as exc:
                await self._send_error(writer, exc)
                return
            except (asyncio.IncompleteReadError, ValueError, LimitOverrun):
                await self._send_error(
                    writer, _HTTPError(400, "bad_request", "malformed request")
                )
                return
            try:
                await self._route(writer, method, path, query, body)
            except _HTTPError as exc:
                await self._send_error(writer, exc)
            except (BrokenPipeError, ConnectionResetError):
                pass
            except Exception as exc:  # never kill the server on one request
                await self._send_error(
                    writer,
                    _HTTPError(500, "internal", f"{type(exc).__name__}: {exc}"),
                )
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (BrokenPipeError, ConnectionResetError, OSError):
                pass

    async def _read_request(self, reader) -> tuple[str, str, str, bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise _HTTPError(400, "bad_request", "empty request")
        parts = request_line.split()
        if len(parts) != 3:
            raise _HTTPError(400, "bad_request", "malformed request line")
        method, target, _version = parts
        headers = {}
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise _HTTPError(
                413, "over_budget", f"request body exceeds {MAX_BODY_BYTES} bytes"
            )
        body = await reader.readexactly(length) if length else b""
        path, _, query = target.partition("?")
        return method.upper(), path, query, body

    async def _route(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        query: str,
        body: bytes,
    ) -> None:
        if path == "/healthz" and method == "GET":
            await self._send_json(writer, 200, self.service.healthz())
        elif path == "/metrics" and method == "GET":
            await self._send_json(writer, 200, self.service.metrics_snapshot())
        elif path == "/jobs" and method == "POST":
            await self._submit(writer, body)
        elif path == "/jobs" and method == "GET":
            limit = _int_param(query, "limit")
            await self._send_json(
                writer, 200, {"jobs": self.service.jobs(limit=limit)}
            )
        elif path.startswith("/jobs/"):
            await self._job_routes(writer, method, path)
        elif path == "/shutdown" and method == "POST":
            await self._send_json(
                writer, 200, {"status": "draining", **self.service.healthz()}
            )
            self.request_shutdown()
        else:
            raise _HTTPError(404, "not_found", f"no route for {method} {path}")

    async def _submit(self, writer: asyncio.StreamWriter, body: bytes) -> None:
        try:
            payload = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, ValueError):
            raise _HTTPError(400, "bad_request", "body is not valid JSON") from None
        try:
            record = self.service.submit_payload(payload)
        except BadRequest as exc:
            raise _HTTPError(exc.status, exc.code, str(exc)) from None
        except AdmissionError as exc:
            raise _HTTPError(exc.status, exc.code, str(exc)) from None
        status = 200 if record.done else 202
        await self._send_json(writer, status, {"job": record.snapshot()})

    async def _job_routes(
        self, writer: asyncio.StreamWriter, method: str, path: str
    ) -> None:
        tail = path[len("/jobs/"):]
        job_id, _, rest = tail.partition("/")
        record = self.service.job(job_id)
        if record is None:
            raise _HTTPError(404, "not_found", f"unknown job {job_id!r}")
        if rest == "" and method == "GET":
            await self._send_json(writer, 200, {"job": record.snapshot()})
        elif rest == "stream" and method == "GET":
            await self._stream(writer, record)
        else:
            raise _HTTPError(404, "not_found", f"no route for {method} {path}")

    async def _stream(self, writer: asyncio.StreamWriter, record) -> None:
        """NDJSON progress: replayed history, then live events, then EOF."""
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()

        def push(event: dict) -> None:
            # Called under the service lock from worker callback threads
            # (or this thread during replay): trampoline onto the loop.
            loop.call_soon_threadsafe(queue.put_nowait, event)

        self.service.subscribe(record, push)
        writer.write(_head(200, "application/x-ndjson", None))
        try:
            await writer.drain()
            while True:
                event = await queue.get()
                writer.write(_json_bytes(event))
                await writer.drain()
                if event.get("event") == "job" and event.get("state") in (
                    "done",
                    "failed",
                ):
                    break
        finally:
            self.service.unsubscribe(record, push)

    async def _send_json(
        self, writer: asyncio.StreamWriter, status: int, payload: dict
    ) -> None:
        body = _json_bytes(payload)
        writer.write(_head(status, "application/json", len(body)) + body)
        await writer.drain()

    async def _send_error(self, writer, exc: _HTTPError) -> None:
        try:
            await self._send_json(
                writer,
                exc.status,
                {"error": {"code": exc.code, "message": str(exc)}},
            )
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass


def _int_param(query: str, name: str) -> Optional[int]:
    for pair in query.split("&"):
        key, _, value = pair.partition("=")
        if key == name and value:
            try:
                return int(value)
            except ValueError:
                raise _HTTPError(
                    400, "bad_request", f"{name} must be an integer"
                ) from None
    return None


try:  # asyncio renamed this across versions; normalize for _handle
    from asyncio import LimitOverrunError as LimitOverrun
except ImportError:  # pragma: no cover
    class LimitOverrun(Exception):
        ...


class BackgroundServer:
    """A :class:`SweepServer` on a daemon thread, for tests and benches.

    ::

        with BackgroundServer(service) as server:
            http.client.HTTPConnection(server.host, server.port)

    Exiting the context requests graceful shutdown and joins the thread;
    the service itself is drained by the server's shutdown path.
    """

    def __init__(
        self, service: SweepService, host: str = "127.0.0.1", port: int = 0
    ):
        self.service = service
        self.host = host
        self.port = port
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[SweepServer] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )

    def _run(self) -> None:
        async def main() -> None:
            self._server = SweepServer(self.service, self.host, self.port)
            try:
                self.host, self.port = await self._server.start()
            except BaseException as exc:
                self._startup_error = exc
                self._started.set()
                raise
            self._loop = asyncio.get_running_loop()
            self._started.set()
            await self._server.serve_until_shutdown()

        try:
            asyncio.run(main())
        except BaseException as exc:  # surface late failures on join
            if self._startup_error is None:
                self._startup_error = exc

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "BackgroundServer":
        self._thread.start()
        self._started.wait(timeout=10)
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        if not self._started.is_set():
            raise RuntimeError("server did not start within 10s")
        return self

    def shutdown(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self._server is not None:
            try:
                self._loop.call_soon_threadsafe(self._server.request_shutdown)
            except RuntimeError:  # loop already closed
                pass
        self._thread.join(timeout)

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
