"""The ``repro serve`` subcommand: simulation-as-a-service.

Examples::

    python -m repro serve                          # 127.0.0.1:8351, 2 workers
    python -m repro serve --port 0 --workers 4     # ephemeral port
    python -m repro serve --queue-depth 16 --max-cycles 100000000

Submit a job::

    curl -s localhost:8351/jobs -d '{
      "label": "weather-ll4",
      "config": {"n_procs": 16, "protocol": "limitless", "pointers": 4},
      "workload": {"name": "weather", "params": {"iterations": 2}}
    }'

Stream its progress::

    curl -sN localhost:8351/jobs/job-000001/stream
"""

from __future__ import annotations

import argparse
import asyncio

from ..sweep.cache import ResultCache, default_cache_dir
from .http import SweepServer
from .journal import JobJournal
from .service import SweepService

DESCRIPTION = (
    "Long-running HTTP/JSON job server over the sweep core: bounded "
    "worker pool, admission control, cache-hit short-circuiting, NDJSON "
    "progress streams, /metrics and /healthz."
)


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8351, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="simulation worker processes"
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=8,
        help="max jobs admitted but unfinished before 429 rejections",
    )
    parser.add_argument(
        "--max-points",
        type=int,
        default=64,
        help="per-job grid-point budget before 413 rejections",
    )
    parser.add_argument(
        "--max-cycles",
        type=int,
        default=None,
        metavar="N",
        help="per-point simulated-cycle budget (default: uncapped)",
    )
    parser.add_argument(
        "--point-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-point wall-clock budget enforced in the worker",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"cache location (default $REPRO_SWEEP_CACHE or {default_cache_dir()})",
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="append-only job journal; a restarted server restores "
        "finished jobs (ids, results, stream history) and resubmits "
        "interrupted ones (default: off)",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="max seconds to wait for in-flight jobs on shutdown",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro serve", description=DESCRIPTION)
    add_arguments(parser)
    return parser


def service_from_args(args: argparse.Namespace) -> SweepService:
    cache = ResultCache(args.cache_dir, enabled=not args.no_cache)
    journal = JobJournal(args.journal) if getattr(args, "journal", None) else None
    return SweepService(
        workers=args.workers,
        cache=cache,
        queue_depth=args.queue_depth,
        max_points=args.max_points,
        max_cycles=args.max_cycles,
        point_timeout=args.point_timeout,
        journal=journal,
    )


def run_from_args(args: argparse.Namespace) -> int:
    service = service_from_args(args)
    if service.journal is not None:
        recovered = service.recover()
        print(
            f"journal {service.journal.path}: {recovered['restored']} job(s) "
            f"restored, {recovered['resubmitted']} resubmitted",
            flush=True,
        )

    async def main() -> None:
        server = SweepServer(service, args.host, args.port)
        host, port = await server.start()
        # The smoke harness parses this line to find the ephemeral port.
        print(f"repro serve listening on http://{host}:{port}", flush=True)
        print(
            f"  workers={service.workers} queue_depth={service.queue_depth} "
            f"max_points={service.max_points} "
            f"cache={'off' if not service.cache.enabled else service.cache.directory}",
            flush=True,
        )
        await server.serve_until_shutdown(drain_timeout=args.drain_timeout)

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("interrupt: draining in-flight jobs", flush=True)
        service.close(drain=True, timeout=args.drain_timeout)
    return 0


def main(argv: list[str] | None = None) -> int:
    return run_from_args(build_parser().parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
