"""`SweepService`: the sweep core as a long-running library object.

This is the enabling refactor behind ``repro serve``: everything the
one-shot sweep CLI did with process-global state now lives on one
injectable object — a result cache (with its own source fingerprint), a
bounded multiprocessing worker pool, admission bookkeeping, and service
metrics.  Two services in one process share nothing; embedders construct,
use, and ``close()`` them like any other resource.

The design is LimitLESS's own thesis applied to serving: the common case
(a config someone already ran) is handled fast — a cache hit resolves at
submit time without ever touching the pool — while the rare case (a cold
config) traps to the full simulation path, budgeted and queued.  Identical
cold jobs submitted concurrently coalesce onto a single execution, so N
submissions of one config cost one simulation and return N identical
results.

Threading model: ``submit``/``close``/snapshots may be called from any
thread (the HTTP front calls them from the asyncio loop); point
completions arrive on the executor's callback thread.  All mutation
happens under one reentrant lock, and per-job progress events fan out to
subscribers registered via :meth:`JobRecord.subscribe` — subscribers must
be non-blocking (the HTTP layer just trampolines events onto the loop).

Worker death follows PR 4's poison/unwind pattern at pool granularity: a
dead worker process breaks the whole ``ProcessPoolExecutor``, every
in-flight point unwinds as a structured failure instead of hanging, the
broken pool is discarded, and the next cold dispatch builds a fresh one —
the service itself stays up.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Optional

from ..machine import AlewifeConfig, MachineStats
from ..sweep.cache import ResultCache
from ..sweep.runner import JobResult, ProgressTracker, _execute, _pool_context
from ..sweep.spec import Job, WorkloadSpec, job_key
from .journal import JobJournal
from .metrics import ServiceMetrics


class BadRequest(ValueError):
    """A malformed job payload (HTTP 400)."""

    status = 400
    code = "bad_request"


class AdmissionError(Exception):
    """A well-formed job the service refuses to admit right now.

    ``code`` is machine-readable (``queue_full`` / ``over_budget`` /
    ``shutting_down``); ``status`` is the HTTP status the front should
    map it to (429 / 413 / 503).
    """

    def __init__(self, code: str, message: str, status: int):
        super().__init__(message)
        self.code = code
        self.status = status


def _parse_point(entry: Any, index: int) -> "JobPoint":
    if not isinstance(entry, dict):
        raise BadRequest(f"points[{index}] must be an object")
    workload = entry.get("workload")
    if not isinstance(workload, dict) or "name" not in workload:
        raise BadRequest(
            f"points[{index}].workload must be {{'name': ..., 'params': {{...}}}}"
        )
    params = workload.get("params", {})
    if not isinstance(params, dict):
        raise BadRequest(f"points[{index}].workload.params must be an object")
    try:
        spec = WorkloadSpec(str(workload["name"]), dict(params))
        spec.build()  # workloads are dataclasses; building validates params
    except (ValueError, TypeError) as exc:
        raise BadRequest(f"points[{index}].workload: {exc}") from None
    config_dict = entry.get("config", {})
    if not isinstance(config_dict, dict):
        raise BadRequest(f"points[{index}].config must be an object")
    try:
        # AlewifeConfig validates itself (unknown fields -> TypeError,
        # unknown protocol / bad shapes -> ValueError).
        config = AlewifeConfig(**config_dict)
    except (TypeError, ValueError) as exc:
        raise BadRequest(f"points[{index}].config: {exc}") from None
    label = str(entry.get("label") or f"{spec.name}#{index}")
    return JobPoint(label=label, config=config, workload=spec)


@dataclass
class JobPoint:
    """One grid point of a submitted job (already validated)."""

    label: str
    config: AlewifeConfig
    workload: WorkloadSpec

    def as_job(self) -> Job:
        return Job(self.label, self.config, self.workload)


@dataclass
class JobRequest:
    """A validated job submission: one or more grid points plus options."""

    label: str
    points: list[JobPoint]
    timeout: Optional[float] = None  # per-point wall-clock budget, seconds

    @classmethod
    def from_payload(cls, payload: Any) -> "JobRequest":
        """Parse the POST /jobs JSON body; raises :class:`BadRequest`.

        Either ``{"points": [{config, workload, label?}, ...]}`` or the
        single-point shorthand ``{"config": ..., "workload": ...}``.
        """
        if not isinstance(payload, dict):
            raise BadRequest("job payload must be a JSON object")
        if "points" in payload:
            entries = payload["points"]
            if not isinstance(entries, list) or not entries:
                raise BadRequest("points must be a non-empty array")
        elif "workload" in payload:
            entries = [
                {
                    "config": payload.get("config", {}),
                    "workload": payload["workload"],
                    "label": payload.get("point_label"),
                }
            ]
        else:
            raise BadRequest("job payload needs 'points' or a 'workload'")
        points = [_parse_point(entry, i) for i, entry in enumerate(entries)]
        timeout = payload.get("timeout")
        if timeout is not None:
            try:
                timeout = float(timeout)
            except (TypeError, ValueError):
                raise BadRequest("timeout must be a number of seconds") from None
            if timeout <= 0:
                raise BadRequest("timeout must be positive")
        label = str(payload.get("label") or points[0].label)
        return cls(label=label, points=points, timeout=timeout)

    def to_payload(self) -> dict:
        """The inverse of :meth:`from_payload`: a re-parseable JSON body.

        The job journal persists submissions in this form so a restarted
        server can resubmit them through the normal validation path.
        """
        return {
            "label": self.label,
            "timeout": self.timeout,
            "points": [
                {
                    "label": p.label,
                    "config": asdict(p.config),
                    "workload": {"name": p.workload.name, "params": p.workload.params},
                }
                for p in self.points
            ],
        }


class JobRecord:
    """The service-side lifecycle of one submitted job.

    Everything external consumers need is JSON-shaped: ``snapshot()`` for
    the current state, ``events`` (via :meth:`subscribe`) for the NDJSON
    progress stream.  ``wait()`` blocks until the job finishes.
    """

    def __init__(self, job_id: str, request: JobRequest, keys: list[str]):
        self.id = job_id
        self.request = request
        self.keys = keys
        self.state = "queued"
        self.created_at = time.time()
        self.error: Optional[str] = None
        self.results: list[Optional[dict]] = [None] * len(request.points)
        self.cached_points = 0
        self.simulated_points = 0
        self.failed_points = 0
        self.service_seconds: Optional[float] = None
        self.tracker = ProgressTracker()
        self.events: list[dict] = []
        self._submitted_clock = time.perf_counter()
        self._pending = set(range(len(request.points)))
        self._counted_active = False
        self._done = threading.Event()
        self._subscribers: list[Callable[[dict], None]] = []
        #: persistence hook: the service points this at the job journal so
        #: every emitted event is logged before subscribers see it.
        self.on_event: Optional[Callable[[dict], None]] = None

    # -- queries -------------------------------------------------------

    @property
    def done(self) -> bool:
        return self._done.is_set()

    @property
    def warm(self) -> bool:
        """True when every point was satisfied from the result cache."""
        return self.cached_points == len(self.request.points)

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._done.wait(timeout)

    def snapshot(self) -> dict:
        elapsed = (
            self.service_seconds
            if self.service_seconds is not None
            else time.perf_counter() - self._submitted_clock
        )
        return {
            "id": self.id,
            "label": self.request.label,
            "state": self.state,
            "created_at": self.created_at,
            "points": len(self.request.points),
            "done_points": len(self.request.points) - len(self._pending),
            "cached_points": self.cached_points,
            "simulated_points": self.simulated_points,
            "failed_points": self.failed_points,
            "warm": self.warm,
            "service_seconds": round(elapsed, 6),
            "error": self.error,
            "results": list(self.results),
        }

    # -- event fan-out (all calls made under the service lock) ---------

    def subscribe(self, callback: Callable[[dict], None]) -> None:
        """Replay history to ``callback`` then deliver future events.

        Callbacks run under the service lock on whatever thread produced
        the event — they must not block (enqueue and return).
        """
        for event in self.events:
            callback(event)
        if not self.done:
            self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[dict], None]) -> None:
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    def _emit(self, event: dict) -> None:
        self.events.append(event)
        if self.on_event is not None:
            self.on_event(event)
        for callback in list(self._subscribers):
            callback(event)


class _Flight:
    """One in-pool execution shared by every waiter with the same key."""

    __slots__ = ("key", "label", "payload", "future", "waiters")

    def __init__(self, key: str, label: str, payload: tuple):
        self.key = key
        self.label = label
        self.payload = payload
        self.future = None
        self.waiters: list[tuple[JobRecord, int]] = []


def _default_executor_factory(workers: int) -> ProcessPoolExecutor:
    return ProcessPoolExecutor(max_workers=workers, mp_context=_pool_context())


class SweepService:
    """Admission-controlled simulation service over the sweep core.

    Parameters
    ----------
    workers:
        Worker processes in the simulation pool.
    cache:
        A :class:`ResultCache`; omitted means no caching (every submission
        is cold).  The cache's own :class:`SourceFingerprint` keys jobs.
    queue_depth:
        Maximum jobs admitted but not yet finished; beyond it submissions
        are rejected with ``queue_full`` (HTTP 429).
    max_points:
        Per-job grid-point budget; larger jobs are rejected with
        ``over_budget`` (HTTP 413).
    max_cycles:
        Per-point simulated-cycle budget: every point's
        ``config.max_cycles`` must be positive and no larger, else
        ``over_budget``.  ``None`` = uncapped.
    point_timeout:
        Service-wide per-point wall-clock cap in seconds (SIGALRM inside
        the worker); a job's own ``timeout`` may only tighten it.
    journal:
        A :class:`repro.serve.journal.JobJournal`; when present every
        submission and progress event is logged, and :meth:`recover`
        replays the log at boot — terminal jobs are restored verbatim
        (ids, results, stream history) and interrupted jobs resubmitted
        under their original ids.
    executor_factory / task:
        Injection seams for tests and embedders: the pool constructor
        (``workers -> Executor``) and the picklable per-point task
        (defaults to the sweep runner's ``_execute``).
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        cache: ResultCache | None = None,
        queue_depth: int = 8,
        max_points: int = 64,
        max_cycles: Optional[int] = None,
        point_timeout: Optional[float] = None,
        journal: JobJournal | None = None,
        executor_factory: Callable[[int], Any] | None = None,
        task: Callable[[tuple], tuple] | None = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if max_points < 1:
            raise ValueError("max_points must be >= 1")
        self.workers = workers
        self.cache = cache if cache is not None else ResultCache(enabled=False)
        self.queue_depth = queue_depth
        self.max_points = max_points
        self.max_cycles = max_cycles
        self.point_timeout = point_timeout
        self.journal = journal
        self.metrics = ServiceMetrics()
        self.pool_invocations = 0
        self.pool_rebuilds = 0
        self._busy = 0  # dispatched, not yet completed
        self._executor = None
        self._executor_factory = executor_factory or _default_executor_factory
        self._task = task or _execute
        self._lock = threading.RLock()
        self._jobs: dict[str, JobRecord] = {}
        self._order: list[str] = []
        self._inflight: dict[str, _Flight] = {}
        self._active = 0  # admitted jobs not yet finished
        self._draining = False
        self._closed = False
        self._seq = itertools.count(1)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, request: JobRequest) -> JobRecord:
        """Admit and start one job; returns its record immediately.

        A fully cache-satisfied job comes back already ``done`` (the warm
        path never touches the pool); otherwise the record completes
        asynchronously — ``wait()``/``subscribe()`` to follow it.

        Raises :class:`AdmissionError` (structured code + HTTP status)
        when the job cannot be admitted, :class:`BadRequest` never (the
        request is already validated).
        """
        with self._lock:
            self._admit(request)
            return self._start(request)

    def _start(self, request: JobRequest, job_id: Optional[str] = None) -> JobRecord:
        """Start an admitted job (caller holds the lock).

        ``job_id`` is only passed by :meth:`recover`, which resubmits
        interrupted jobs under their original identities.
        """
        fingerprint = self.cache.fingerprint.value()
        keys = [job_key(p.config, p.workload, fingerprint) for p in request.points]
        record = JobRecord(job_id or f"job-{next(self._seq):06d}", request, keys)
        if self.journal is not None:
            # Write-ahead: the submission is durable before any execution,
            # and every subsequent event lands in the journal before
            # subscribers see it.
            self.journal.record_submit(record.id, request.to_payload())
            journal, rid = self.journal, record.id
            record.on_event = lambda event: journal.record_event(rid, event)
        self._jobs[record.id] = record
        if record.id not in self._order:
            self._order.append(record.id)
        self.metrics.bump("jobs.submitted")
        record.state = "running"
        record._emit({"event": "job", "state": "queued", "job": record.snapshot()})

        to_dispatch: list[_Flight] = []
        for index, (point, key) in enumerate(zip(request.points, keys)):
            stats = self.cache.lookup(key)
            if stats is not None:
                self.metrics.bump("points.cache_hit")
                self._resolve_point(
                    record, index, stats, cached=True, wall=0.0, error=None
                )
                continue
            flight = self._inflight.get(key)
            if flight is None:
                flight = _Flight(key, point.label, self._payload(point, request))
                self._inflight[key] = flight
                to_dispatch.append(flight)
            flight.waiters.append((record, index))
        # A fully cache-satisfied job was already finalized by its last
        # _resolve_point; only jobs with pending points occupy a queue
        # slot.
        if record._pending:
            record._counted_active = True
            self._active += 1
        for flight in to_dispatch:
            self._dispatch(flight)
        return record

    def recover(self) -> dict:
        """Replay the job journal at boot; returns a summary dict.

        Jobs whose journaled history ends in a terminal ``job`` event are
        restored in place — same id, state, results and event history, so
        ``/jobs/<id>`` answers and a reconnecting ``/stream`` client
        replays everything it missed without re-simulating.  Jobs that
        were queued or running when the previous process died are
        resubmitted under their original ids; the result cache turns any
        point that already completed into an instant hit, so only the
        genuinely lost work re-executes.
        """
        summary = {"jobs": 0, "restored": 0, "resubmitted": 0}
        if self.journal is None:
            return summary
        journaled = self.journal.load()
        with self._lock:
            max_seq = 0
            for job_id in journaled:
                # ids are "job-NNNNNN"; keep the counter past every
                # recovered id so new submissions never collide.
                tail = job_id.rsplit("-", 1)[-1]
                if tail.isdigit():
                    max_seq = max(max_seq, int(tail))
            if max_seq:
                self._seq = itertools.count(max_seq + 1)
            for job_id, entry in journaled.items():
                if entry["payload"] is None or job_id in self._jobs:
                    continue
                try:
                    request = JobRequest.from_payload(entry["payload"])
                except BadRequest:
                    continue  # journaled by an incompatible version; skip
                summary["jobs"] += 1
                terminal = next(
                    (
                        e
                        for e in reversed(entry["events"])
                        if e.get("event") == "job"
                        and e.get("state") in ("done", "failed")
                    ),
                    None,
                )
                if terminal is not None:
                    self._restore(job_id, request, entry["events"], terminal["job"])
                    summary["restored"] += 1
                else:
                    self.metrics.bump("jobs.recovered")
                    self._start(request, job_id=job_id)
                    summary["resubmitted"] += 1
        return summary

    def _restore(
        self, job_id: str, request: JobRequest, events: list[dict], snap: dict
    ) -> None:
        """Rebuild one finished job verbatim from its journaled history."""
        keys = [
            (row or {}).get("key", "") for row in snap.get("results", [])
        ] or [""] * len(request.points)
        record = JobRecord(job_id, request, keys)
        record.events = list(events)
        record.state = snap["state"]
        record.error = snap.get("error")
        record.created_at = snap.get("created_at", record.created_at)
        record.results = list(snap.get("results", record.results))
        record.cached_points = snap.get("cached_points", 0)
        record.simulated_points = snap.get("simulated_points", 0)
        record.failed_points = snap.get("failed_points", 0)
        record.service_seconds = snap.get("service_seconds")
        record._pending = set()
        record._done.set()
        self._jobs[job_id] = record
        self._order.append(job_id)
        self.metrics.bump("jobs.restored")

    def submit_payload(self, payload: Any) -> JobRecord:
        """Parse a raw JSON payload and submit it (the HTTP front's path)."""
        return self.submit(JobRequest.from_payload(payload))

    def _admit(self, request: JobRequest) -> None:
        if self._draining or self._closed:
            self.metrics.bump("jobs.rejected.shutting_down")
            raise AdmissionError(
                "shutting_down", "service is draining; not accepting jobs", 503
            )
        if len(request.points) > self.max_points:
            self.metrics.bump("jobs.rejected.over_budget")
            raise AdmissionError(
                "over_budget",
                f"job has {len(request.points)} points; budget is "
                f"{self.max_points} per job",
                413,
            )
        if self.max_cycles is not None:
            for point in request.points:
                if not 0 < point.config.max_cycles <= self.max_cycles:
                    self.metrics.bump("jobs.rejected.over_budget")
                    raise AdmissionError(
                        "over_budget",
                        f"point {point.label!r} asks for "
                        f"{point.config.max_cycles} simulated cycles; the "
                        f"per-point budget is {self.max_cycles}",
                        413,
                    )
        if self._active >= self.queue_depth:
            self.metrics.bump("jobs.rejected.queue_full")
            raise AdmissionError(
                "queue_full",
                f"{self._active} jobs already admitted (queue depth "
                f"{self.queue_depth}); retry later",
                429,
            )

    def _payload(self, point: JobPoint, request: JobRequest) -> tuple:
        timeouts = [t for t in (request.timeout, self.point_timeout) if t]
        timeout = min(timeouts) if timeouts else None
        # Sharded configs fork their own workers inside the pool process;
        # pin them to in-process stepping so one point cannot oversubscribe
        # the whole machine (mirrors the sweep runner's core budgeting).
        shard_workers = 1 if point.config.shards > 1 else None
        return (0, point.as_job(), timeout, shard_workers)

    # ------------------------------------------------------------------
    # Execution plumbing
    # ------------------------------------------------------------------

    def _ensure_executor(self):
        if self._executor is None:
            self._executor = self._executor_factory(self.workers)
            self.pool_rebuilds += 1
        return self._executor

    def _dispatch(self, flight: _Flight) -> None:
        executor = self._ensure_executor()
        self.pool_invocations += 1
        self.metrics.bump("pool.invocations")
        self._busy += 1
        flight.future = executor.submit(self._task, flight.payload)
        flight.future.add_done_callback(
            lambda future, flight=flight: self._flight_done(flight, future)
        )

    def _flight_done(self, flight: _Flight, future) -> None:
        with self._lock:
            self._busy -= 1
            self._inflight.pop(flight.key, None)
            stats: Optional[MachineStats] = None
            wall = 0.0
            error: Optional[str] = None
            try:
                _, stats, wall, error = future.result()
            except BrokenProcessPool:
                error = (
                    "worker process died; pool poisoned and rebuilt "
                    "(resubmit the job)"
                )
                self._poison_pool()
            except CancelledError:
                error = "cancelled: service shut down before execution"
            except Exception as exc:  # worker-side pickling errors etc.
                error = f"{type(exc).__name__}: {exc}"
            if stats is not None:
                self.cache.store(
                    flight.key, stats, wall_seconds=wall, label=flight.label
                )
                self.metrics.bump("points.simulated")
                self.metrics.observe_backend(
                    stats.config.backend, stats.cycles, wall
                )
            else:
                self.metrics.bump("points.failed")
            for n, (record, index) in enumerate(flight.waiters):
                if n:
                    self.metrics.bump("points.coalesced")
                self._resolve_point(
                    record,
                    index,
                    stats,
                    cached=False,
                    wall=wall,
                    error=error,
                    coalesced=bool(n),
                )

    def _poison_pool(self) -> None:
        """Discard a broken executor; the next cold dispatch rebuilds."""
        self.metrics.bump("pool.broken")
        executor = self._executor
        self._executor = None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def _resolve_point(
        self,
        record: JobRecord,
        index: int,
        stats: Optional[MachineStats],
        *,
        cached: bool,
        wall: float,
        error: Optional[str],
        coalesced: bool = False,
    ) -> None:
        if index not in record._pending:
            return  # already resolved (shutdown race)
        record._pending.discard(index)
        point = record.request.points[index]
        if cached:
            record.cached_points += 1
        elif error is None:
            record.simulated_points += 1
        else:
            record.failed_points += 1
        result = JobResult(
            point.as_job(), stats, cached, wall, record.keys[index], error=error
        )
        row = {
            "label": point.label,
            "key": record.keys[index],
            "cached": cached,
            "coalesced": coalesced,
            "ok": error is None,
            "cycles": stats.cycles if stats is not None else None,
            "traps": stats.traps_taken if stats is not None else None,
            "packets": stats.network.packets if stats is not None else None,
            "utilization": (
                round(stats.utilization, 6) if stats is not None else None
            ),
            "wall_seconds": round(wall, 6),
            "error": error,
        }
        if stats is not None and stats.shard_meta:
            m = stats.shard_meta
            row["shards"] = {
                k: m[k] for k in ("shards", "workers", "windows", "handoffs")
            }
        record.results[index] = row
        total = len(record.request.points)
        event = record.tracker.record(result, total - len(record._pending), total)
        event.update({"job": record.id, "index": index, "coalesced": coalesced})
        record._emit(event)
        if not record._pending:
            self._finalize(record)

    def _finalize(self, record: JobRecord) -> None:
        if record.done:
            return
        record.service_seconds = time.perf_counter() - record._submitted_clock
        errors = [row["error"] for row in record.results if row and row["error"]]
        record.state = "failed" if errors else "done"
        record.error = errors[0] if errors else None
        self.metrics.bump("jobs.failed" if errors else "jobs.done")
        self.metrics.observe_job(record.service_seconds, warm=record.warm)
        if record._counted_active:
            self._active -= 1
            record._counted_active = False
        record._emit(
            {"event": "job", "state": record.state, "job": record.snapshot()}
        )
        record._done.set()
        record._subscribers.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def job(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self, limit: Optional[int] = None) -> list[dict]:
        """Most-recent-first job snapshots."""
        with self._lock:
            ids = self._order[::-1]
            if limit is not None:
                ids = ids[: max(0, limit)]
            return [self._jobs[i].snapshot() for i in ids]

    def subscribe(self, record: JobRecord, callback: Callable[[dict], None]) -> None:
        with self._lock:
            record.subscribe(callback)

    def unsubscribe(self, record: JobRecord, callback: Callable[[dict], None]) -> None:
        with self._lock:
            record.unsubscribe(callback)

    def healthz(self) -> dict:
        with self._lock:
            if self._closed:
                status = "closed"
            elif self._draining:
                status = "draining"
            else:
                status = "ok"
            return {
                "status": status,
                "uptime_seconds": round(self.metrics.uptime_seconds(), 3),
                "jobs_in_flight": self._active,
            }

    def metrics_snapshot(self) -> dict:
        """The ``/metrics`` payload: counters, latency, gauges."""
        with self._lock:
            busy = min(self._busy, self.workers)
            snapshot = self.metrics.snapshot()
            snapshot.update(
                {
                    # jobs pick their own backend per point; this is what a
                    # submission gets when it does not say.
                    "backend_default": (
                        AlewifeConfig.__dataclass_fields__["backend"].default
                    ),
                    "queue": {"depth": self._active, "limit": self.queue_depth},
                    "jobs": {"active": self._active, "total": len(self._jobs)},
                    "workers": {
                        "pool_size": self.workers,
                        "busy": busy,
                        "queued_points": max(0, self._busy - self.workers),
                        "utilization": round(busy / self.workers, 6),
                    },
                    "pool_invocations": self.pool_invocations,
                    "pool_rebuilds": self.pool_rebuilds,
                    "budgets": {
                        "queue_depth": self.queue_depth,
                        "max_points": self.max_points,
                        "max_cycles": self.max_cycles,
                        "point_timeout": self.point_timeout,
                    },
                    "cache": {
                        "enabled": self.cache.enabled,
                        "dir": str(self.cache.directory),
                        "hits": self.cache.hits,
                        "misses": self.cache.misses,
                        "stores": self.cache.stores,
                        "write_errors": self.cache.write_errors,
                    },
                    "journal": {
                        "enabled": self.journal is not None,
                        "path": (
                            str(self.journal.path) if self.journal else None
                        ),
                        "records_written": (
                            self.journal.records_written if self.journal else 0
                        ),
                    },
                }
            )
            return snapshot

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    def begin_drain(self) -> None:
        """Stop admitting jobs (503) while in-flight work continues."""
        with self._lock:
            self._draining = True

    def close(self, *, drain: bool = True, timeout: Optional[float] = None) -> bool:
        """Shut the service down; returns True when every job finished.

        ``drain=True`` waits (up to ``timeout`` seconds) for in-flight
        jobs; ``drain=False`` cancels whatever has not started and fails
        the rest as ``cancelled``.  Idempotent.
        """
        with self._lock:
            self._draining = True
            if self._closed:
                return self._active == 0
            records = [self._jobs[i] for i in self._order]
            executor = self._executor
        drained = True
        if drain:
            deadline = (
                time.perf_counter() + timeout if timeout is not None else None
            )
            for record in records:
                remaining = None
                if deadline is not None:
                    remaining = max(0.0, deadline - time.perf_counter())
                if not record.wait(remaining):
                    drained = False
        else:
            with self._lock:
                flights = list(self._inflight.values())
            for flight in flights:
                if flight.future is not None:
                    flight.future.cancel()
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=not drain)
        with self._lock:
            self._closed = True
            self._executor = None
            # Anything still unresolved (cancelled futures whose callbacks
            # ran, or a timed-out drain) is failed explicitly so waiters
            # never hang on a closed service.
            for record in records:
                if not record.done:
                    for index in sorted(record._pending):
                        self._resolve_point(
                            record,
                            index,
                            None,
                            cached=False,
                            wall=0.0,
                            error="cancelled: service closed",
                        )
            if not drain:
                drained = all(r.done for r in records)
            if self.journal is not None:
                self.journal.close()
        return drained

    def __enter__(self) -> "SweepService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close(drain=False)
