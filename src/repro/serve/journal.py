"""Append-only job journal: crash-safe state for ``repro serve``.

The service itself is in-memory — a restarted server forgets every job
it admitted, which breaks clients polling ``/jobs/<id>`` or re-attaching
to an NDJSON stream.  The journal closes that gap with one NDJSON file:
a ``submit`` record (the job's re-parseable request payload) written
before the job starts, and one ``event`` record per progress event the
job emits — the same events the live stream carries.

On boot, :meth:`repro.serve.service.SweepService.recover` replays the
journal: jobs whose last event is terminal are *restored* verbatim
(state, results, full event history — so a reconnecting stream replays
exactly what it missed), and jobs that were queued or running when the
process died are *resubmitted* under their original ids.  Resubmission
re-executes the request — the result cache makes any point that already
finished come back instantly, so only genuinely lost work is redone.

Writes flush eagerly; a torn final line (the crash landed mid-append)
is dropped on load, like the sweep manifest's.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

#: Journal record schema version.
JOURNAL_VERSION = 1


class JobJournal:
    """Thread-safe append-only NDJSON journal of job submissions and events."""

    def __init__(self, path: Path | str):
        self.path = Path(path)
        self.records_written = 0
        self._fh = None
        self._lock = threading.Lock()

    def _append(self, record: dict) -> None:
        record["v"] = JOURNAL_VERSION
        with self._lock:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fh = open(self.path, "a", encoding="utf-8")
            self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
            self._fh.flush()
            self.records_written += 1

    def record_submit(self, job_id: str, payload: dict) -> None:
        """Write-ahead: the job is admitted and about to start."""
        self._append(
            {"kind": "submit", "id": job_id, "t": time.time(), "payload": payload}
        )

    def record_event(self, job_id: str, event: dict) -> None:
        """One progress event (the NDJSON stream's own records)."""
        self._append({"kind": "event", "id": job_id, "event": event})

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def load(self) -> dict[str, dict]:
        """Replay the log into ``{job_id: {"payload": ..., "events": [...]}}``.

        Preserves submission order (dicts iterate in insertion order); a
        resubmitted job keeps its original position but its latest
        payload.  Returns ``{}`` when no journal exists yet.
        """
        jobs: dict[str, dict] = {}
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except OSError:
            return jobs
        for line in lines:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                break  # torn tail from a crash mid-append; ignore the rest
            job_id = record.get("id")
            if not job_id:
                continue
            if record.get("kind") == "submit":
                entry = jobs.setdefault(job_id, {"payload": None, "events": []})
                entry["payload"] = record.get("payload")
                # A resubmission starts the job's history over: the old
                # events describe an execution that never finished.
                entry["events"] = []
            elif record.get("kind") == "event" and job_id in jobs:
                jobs[job_id]["events"].append(record.get("event"))
        return jobs
