"""Simulation-as-a-service: an async job server over the sweep core.

:class:`SweepService` is the embeddable library object — admission
control, a bounded multiprocessing pool, cache-hit short-circuiting,
structured progress events, and service metrics with no process-global
state.  :class:`SweepServer` puts it behind a stdlib-only asyncio
HTTP/JSON front (NDJSON progress streams, ``/metrics``, ``/healthz``);
:class:`BackgroundServer` runs that front on a daemon thread for tests
and benchmarks.  See ``repro serve --help`` for the CLI and
``docs/SERVICE.md`` for the API.
"""

from .http import BackgroundServer, SweepServer
from .journal import JobJournal
from .metrics import LatencyWindow, ServiceMetrics
from .service import (
    AdmissionError,
    BadRequest,
    JobPoint,
    JobRecord,
    JobRequest,
    SweepService,
)

__all__ = [
    "AdmissionError",
    "BackgroundServer",
    "BadRequest",
    "JobJournal",
    "JobPoint",
    "JobRecord",
    "JobRequest",
    "LatencyWindow",
    "ServiceMetrics",
    "SweepServer",
    "SweepService",
]
