"""Service observability: counters, latency percentiles, utilization.

Built on :class:`repro.stats.counters.Counters` — the same named-counter
bag every simulator component reports through — so the ``/metrics``
endpoint speaks the repo's one counter vocabulary.  Latency percentiles
come from a bounded ring of recent observations (a sliding window, not a
lossy sketch: service latencies arrive at human rates, so keeping the
last few thousand exactly is cheaper than approximating them).
"""

from __future__ import annotations

import threading
import time

from ..stats.counters import Counters


class LatencyWindow:
    """Sliding window of the most recent latency observations (seconds).

    Percentiles are computed over the window by nearest-rank on a sorted
    copy; with the default capacity of 2048 that is microseconds of work
    per scrape.  Thread-safe: workers observe from pool callback threads
    while the HTTP loop scrapes.
    """

    def __init__(self, capacity: int = 2048):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.count = 0  # total ever observed, not just retained
        self._ring: list[float] = []
        self._next = 0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        seconds = max(0.0, float(seconds))
        with self._lock:
            self.count += 1
            if len(self._ring) < self.capacity:
                self._ring.append(seconds)
            else:
                self._ring[self._next] = seconds
                self._next = (self._next + 1) % self.capacity

    def percentile(self, p: float) -> float | None:
        """Nearest-rank percentile over the window; None when empty."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], not {p}")
        with self._lock:
            if not self._ring:
                return None
            ordered = sorted(self._ring)
        rank = max(1, round(p / 100.0 * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]

    def snapshot(self) -> dict:
        """``{count, p50_ms, p95_ms, max_ms}`` (None values when empty)."""
        with self._lock:
            retained = list(self._ring)
            count = self.count
        if not retained:
            return {"count": count, "p50_ms": None, "p95_ms": None, "max_ms": None}
        ordered = sorted(retained)

        def rank_ms(p: float) -> float:
            rank = max(1, round(p / 100.0 * len(ordered)))
            return round(ordered[min(rank, len(ordered)) - 1] * 1e3, 3)

        return {
            "count": count,
            "p50_ms": rank_ms(50),
            "p95_ms": rank_ms(95),
            "max_ms": round(ordered[-1] * 1e3, 3),
        }


class ServiceMetrics:
    """The serve layer's counter bag plus derived service statistics.

    Counter names live under the ``serve.`` prefix (``serve.jobs.done``,
    ``serve.points.cache_hit``, ...); latency is split into a *warm*
    window (jobs fully satisfied by the result cache — the LimitLESS
    "common case fast" path) and a *cold* window (jobs that reached the
    worker pool).
    """

    def __init__(self) -> None:
        self.counters = Counters()
        self.warm_latency = LatencyWindow()
        self.cold_latency = LatencyWindow()
        self.all_latency = LatencyWindow()
        self.started_at = time.time()
        self._start_clock = time.perf_counter()
        #: per-backend simulated work, keyed by the config's backend name.
        #: Mutated only under the service lock (point completions).
        self._backend_work: dict[str, dict] = {}

    def observe_backend(self, backend: str, cycles: int, seconds: float) -> None:
        """Account one cold (pool-executed) point to its backend.

        Cache hits are deliberately excluded: they cost no simulation, so
        folding them in would inflate the reported throughput.
        """
        entry = self._backend_work.setdefault(
            backend, {"points": 0, "cycles": 0, "wall_seconds": 0.0}
        )
        entry["points"] += 1
        entry["cycles"] += cycles
        entry["wall_seconds"] += seconds

    def backend_snapshot(self) -> dict:
        """Per-backend throughput: simulated cycles per wall second.

        ``MachineStats`` does not carry kernel event counts across the
        pool boundary, so the service-level throughput unit is simulated
        cycles — comparable across backends because equivalent runs are
        cycle-identical by construction.
        """
        out: dict[str, dict] = {}
        for name, entry in sorted(self._backend_work.items()):
            wall = entry["wall_seconds"]
            out[name] = {
                "points": entry["points"],
                "cycles": entry["cycles"],
                "wall_seconds": round(wall, 6),
                "cycles_per_sec": (
                    round(entry["cycles"] / wall, 3) if wall > 0 else None
                ),
            }
        return out

    def bump(self, name: str, amount: int = 1) -> None:
        self.counters.bump(f"serve.{name}", amount)

    def get(self, name: str) -> int:
        return self.counters.get(f"serve.{name}")

    def observe_job(self, seconds: float, *, warm: bool) -> None:
        self.all_latency.observe(seconds)
        (self.warm_latency if warm else self.cold_latency).observe(seconds)

    def hit_ratio(self) -> float:
        hits = self.get("points.cache_hit")
        misses = self.get("points.simulated") + self.get("points.failed")
        total = hits + misses
        return hits / total if total else 0.0

    def uptime_seconds(self) -> float:
        return time.perf_counter() - self._start_clock

    def snapshot(self) -> dict:
        """The ``/metrics`` payload (everything JSON-serializable)."""
        return {
            "uptime_seconds": round(self.uptime_seconds(), 3),
            "started_at": self.started_at,
            "counters": self.counters.as_dict(),
            "backends": self.backend_snapshot(),
            "cache_hit_ratio": round(self.hit_ratio(), 6),
            "latency": {
                "all": self.all_latency.snapshot(),
                "warm": self.warm_latency.snapshot(),
                "cold": self.cold_latency.snapshot(),
            },
        }
