"""§6 memory-transaction profiling through the trap handler.

"A number of locations can be placed in the Trap-Always directory mode, so
that they are handled entirely in software.  This scheme permits complete
profiling of memory transactions to these locations without degrading
performance of non-profiled locations."  The handler can also "record the
worker-set of each variable that overflows its hardware directory" and feed
it back to the programmer or compiler.

This is the *simulated-machine* side of the profiling layer; the host-side
(wall-clock, allocation) instrumentation lives in
:mod:`repro.profiling.harness` and both are exposed by ``repro profile``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..coherence.states import MetaState
from ..network.packet import Op


@dataclass
class TransactionRecord:
    """One profiled protocol packet."""

    cycle: int
    opcode: str
    src: int
    block: int


@dataclass
class MemoryProfiler:
    """Collects every software-handled transaction for selected blocks."""

    records: list[TransactionRecord] = field(default_factory=list)
    per_block: Counter = field(default_factory=Counter)
    readers: dict[int, set[int]] = field(default_factory=dict)

    def observe(self, sim, packet) -> None:
        self.records.append(
            TransactionRecord(sim.now, str(packet.opcode), packet.src, packet.address)
        )
        self.per_block[packet.address] += 1
        if packet.opcode is Op.RREQ:
            self.readers.setdefault(packet.address, set()).add(packet.src)

    def worker_set(self, block: int) -> set[int]:
        return self.readers.get(block, set())


def profile_blocks(machine, addresses) -> MemoryProfiler:
    """Place ``addresses`` in Trap-Always mode and return the profiler.

    Requires a software-extended protocol (``limitless`` or
    ``trap_always``); call before ``machine.run``.
    """
    profiler = MemoryProfiler()
    blocks = {machine.space.block_of(a) for a in addresses}
    for block in blocks:
        home = machine.space.home_of(block)
        node = machine.nodes[home]
        if node.software is None:
            raise ValueError(
                "profiling needs a software-extended protocol "
                "(limitless or trap_always)"
            )
        entry = node.directory_controller.directory.entry(block)
        entry.meta = MetaState.TRAP_ALWAYS
        previous = node.software.profile_hook

        def hook(packet, _prev=previous, _node=node):
            if _prev is not None:
                _prev(packet)
            if packet.address in blocks:
                profiler.observe(_node.directory_controller.sim, packet)

        node.software.profile_hook = hook
    return profiler


def overflow_worker_sets(machine) -> dict[int, int]:
    """Peak worker-set per block that ever overflowed into software.

    This is the §6 feedback loop: the report a programmer or compiler
    would use "to recognize and minimize the use of such variables".
    """
    result: dict[int, int] = {}
    for node in machine.nodes:
        if node.software is None:
            continue
        for block, vector in node.software.vectors.items():
            result[block] = max(result.get(block, 0), len(vector))
        for entry in node.directory_controller.directory.entries():
            if entry.peak_sharers > machine.config.pointers:
                result[entry.block] = max(
                    result.get(entry.block, 0), entry.peak_sharers
                )
    return result
