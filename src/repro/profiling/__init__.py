"""One profiling layer: host-side (cProfile/tracemalloc) and simulated
(§6 trap-handler memory profiling), both behind ``repro profile``."""

from .harness import ProfileReport, folded_stacks, hot_functions, profile_run
from .memory import (
    MemoryProfiler,
    TransactionRecord,
    overflow_worker_sets,
    profile_blocks,
)

__all__ = [
    "MemoryProfiler",
    "ProfileReport",
    "TransactionRecord",
    "folded_stacks",
    "hot_functions",
    "overflow_worker_sets",
    "profile_blocks",
    "profile_run",
]
