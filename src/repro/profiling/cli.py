"""The ``repro profile`` subcommand: one profiling layer for everything.

Examples::

    python -m repro profile --workload weather --protocol limitless
    python -m repro profile --workload hotspot --procs 16 --sort tottime
    python -m repro profile --folded /tmp/stacks.folded   # flamegraph input
    python -m repro profile --worker-sets                 # §6 feedback
"""

from __future__ import annotations

import argparse
import json

from ..machine import AlewifeConfig

DESCRIPTION = (
    "Run one experiment under cProfile + tracemalloc and report hot "
    "functions, allocation sites, simulated-cycle attribution per machine "
    "component, and packet-pool recycling; optionally dump folded stacks "
    "for a flamegraph and the paper's §6 overflow worker-set feedback."
)


def add_arguments(parser: argparse.ArgumentParser) -> None:
    from ..cli import WORKLOADS
    from ..coherence.registry import protocol_names

    parser.add_argument("--protocol", default="limitless", choices=protocol_names())
    parser.add_argument("--workload", default="weather", choices=sorted(WORKLOADS))
    parser.add_argument("--procs", type=int, default=64)
    parser.add_argument("--pointers", type=int, default=4)
    parser.add_argument("--ts", type=int, default=50)
    parser.add_argument("--iterations", type=int, default=5)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--topology",
        default="mesh",
        choices=["mesh", "torus", "omega", "crossbar", "ideal"],
    )
    parser.add_argument("--memory-model", default="sc", choices=["sc", "wo"])
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="profile the in-process windowed shard driver at K shards "
        "(default 1 = serial machine)",
    )
    parser.add_argument(
        "--fabric",
        default="auto",
        choices=["auto", "atomic", "staged"],
        help="network arbitration model (default auto: staged iff sharded)",
    )
    parser.add_argument(
        "--backend",
        default="reference",
        help="simulation backend to profile ('reference', 'soa', or "
        "'native'; see docs/BACKENDS.md)",
    )
    parser.add_argument(
        "--no-pool",
        action="store_true",
        help="disable the packet pool (profile the allocation baseline)",
    )
    parser.add_argument(
        "--top", type=int, default=15, help="hot functions to show (default: 15)"
    )
    parser.add_argument(
        "--sort",
        default="cumulative",
        choices=["cumulative", "tottime"],
        help="hot-function ranking (default: cumulative)",
    )
    parser.add_argument(
        "--alloc-top",
        type=int,
        default=10,
        metavar="N",
        help="tracemalloc allocation sites to show; 0 disables tracemalloc "
        "(default: 10)",
    )
    parser.add_argument(
        "--folded",
        default=None,
        metavar="FILE",
        help="write flamegraph-format folded stacks to FILE",
    )
    parser.add_argument(
        "--worker-sets",
        action="store_true",
        help="report peak worker-sets of blocks that overflowed into "
        "software (limitless/trap_always only)",
    )
    parser.add_argument(
        "--trap-address",
        type=lambda s: int(s, 0),
        nargs="+",
        default=None,
        metavar="ADDR",
        help="place these addresses in Trap-Always mode and profile every "
        "transaction to them through the software handler (§6)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="also write the report as JSON to FILE",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro profile", description=DESCRIPTION)
    add_arguments(parser)
    return parser


def run_from_args(args: argparse.Namespace) -> int:
    from ..cli import WORKLOADS
    from .harness import profile_run

    config = AlewifeConfig(
        n_procs=args.procs,
        protocol=args.protocol,
        pointers=args.pointers,
        ts=args.ts,
        topology=args.topology,
        memory_model=args.memory_model,
        seed=args.seed,
        packet_pool=not args.no_pool,
        shards=args.shards,
        fabric=args.fabric,
        backend=args.backend,
    )
    workload = WORKLOADS[args.workload](args)
    report = profile_run(
        config,
        workload,
        top=args.top,
        sort=args.sort,
        alloc_top=args.alloc_top,
        folded=bool(args.folded),
        worker_sets=args.worker_sets,
        trap_addresses=args.trap_address,
    )
    print(report.render())
    if args.folded:
        with open(args.folded, "w") as fh:
            fh.write("\n".join(report.folded) + "\n")
        print(f"\nwrote {len(report.folded)} folded stacks to {args.folded}")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2)
        print(f"wrote {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    return run_from_args(build_parser().parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
