"""Host-side profiling harness behind ``repro profile``.

Runs one experiment under :mod:`cProfile` (where does the *wall clock* go?)
and optionally :mod:`tracemalloc` (where do the *allocations* come from?),
then attributes the *simulated* cycles to machine components from the run's
own counters.  The three views together answer the zero-allocation
questions: which Python frames dominate an event, which call sites still
allocate, and whether the simulated machine is processor-, trap- or
network-bound.

The cProfile data can also be dumped as folded stacks (one
``frame;frame;frame count`` line per hot function, dominant-caller chain)
for any flamegraph renderer.
"""

from __future__ import annotations

import cProfile
import os
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..backend import get_backend
from ..machine import AlewifeConfig, AlewifeMachine

if TYPE_CHECKING:  # pragma: no cover
    from ..machine import MachineStats
    from ..workloads.base import Workload

#: (file, line, name) triple as cProfile keys functions.
FuncKey = tuple

# ----------------------------------------------------------------------
# cProfile helpers
# ----------------------------------------------------------------------


def _func_label(func: FuncKey) -> str:
    filename, line, name = func
    if filename == "~":  # C builtins have no source location
        return name
    return f"{os.path.basename(filename)}:{line}:{name}"


def hot_functions(raw: dict, *, top: int, sort: str = "cumulative") -> list[dict]:
    """Top functions from a cProfile stats dict, as plain records."""
    key = (lambda item: item[1][3]) if sort == "cumulative" else (
        lambda item: item[1][2]
    )
    rows = []
    for func, (cc, nc, tt, ct, _callers) in sorted(
        raw.items(), key=key, reverse=True
    )[:top]:
        rows.append(
            {
                "function": _func_label(func),
                "calls": nc,
                "tottime": round(tt, 4),
                "cumtime": round(ct, 4),
            }
        )
    return rows


def native_component(raw: dict) -> Optional[dict]:
    """One merged row for every compiled ``repro._native`` frame.

    cProfile records the extension's exported builtins (``Core.run``,
    ``Pool.protocol``, ...) as location-less C entries, and it cannot see
    the vectorcall kernel objects (StepKernel, NetSend, RxChain,
    TableDispatch) at all — their time is charged to the nearest profiled
    frame, which for a native run is ``Core.run``'s own time.  Summing
    the builtins' tottime therefore *is* the time spent inside the
    extension, and reporting it as one ``backend.native`` component keeps
    compiled time visible in the profile instead of scattering or
    vanishing.  Returns ``None`` when no extension frame ran.
    """
    calls = 0
    tottime = 0.0
    found = False
    for (filename, _line, name), (_cc, nc, tt, _ct, _callers) in raw.items():
        if filename == "~" and "repro._native" in name:
            found = True
            calls += nc
            tottime += tt
    if not found:
        return None
    return {
        "function": "backend.native (compiled kernels)",
        "calls": calls,
        "tottime": round(tottime, 4),
        "cumtime": round(tottime, 4),
    }


def folded_stacks(raw: dict) -> list[str]:
    """Approximate folded stacks (flamegraph input) from cProfile data.

    cProfile keeps a caller *graph*, not full stacks, so each function is
    attributed one stack: its dominant-caller chain (walk up through the
    caller contributing the most cumulative time).  Weights are the
    function's own time in microseconds — the flamegraph's leaf widths are
    exact, the paths are the most likely ones.
    """
    lines: list[str] = []
    for func, (_cc, _nc, tt, _ct, callers) in raw.items():
        if tt <= 0:
            continue
        stack = [func]
        seen = {func}
        up = callers
        while up:
            caller = max(up, key=lambda k: up[k][3])
            if caller in seen:
                break
            stack.append(caller)
            seen.add(caller)
            up = raw.get(caller, (0, 0, 0.0, 0.0, {}))[4]
        lines.append(
            ";".join(_func_label(f) for f in reversed(stack))
            + f" {max(1, int(tt * 1_000_000))}"
        )
    lines.sort()
    return lines


def _allocation_sites(snapshot, *, top: int) -> list[dict]:
    rows = []
    for stat in snapshot.statistics("lineno")[:top]:
        frame = stat.traceback[0]
        rows.append(
            {
                "site": f"{os.path.basename(frame.filename)}:{frame.lineno}",
                "size_kib": round(stat.size / 1024, 1),
                "count": stat.count,
            }
        )
    return rows


# ----------------------------------------------------------------------
# The profiled run
# ----------------------------------------------------------------------


@dataclass
class ProfileReport:
    """Everything one profiled run learned, renderable or JSON-able."""

    stats: "MachineStats"
    wall_seconds: float
    events_executed: int
    hot: list[dict]
    allocations: list[dict]
    attribution: dict[str, int]
    pool: dict[str, int]
    folded: list[str] = field(default_factory=list)
    worker_sets: dict[int, int] | None = None
    #: which simulation backend executed the run — throughput numbers are
    #: only comparable within one backend
    backend: str = "reference"
    #: merged cProfile row for the compiled extension (None when no
    #: ``repro._native`` frame ran, i.e. every non-native run)
    native: Optional[dict] = None
    #: the backend bundle's status note (e.g. the native backend's
    #: compiled/fallback state) — surfaced so a profile of the soa
    #: fallback can never be mistaken for a compiled measurement
    backend_notes: Optional[str] = None

    @property
    def events_per_sec(self) -> float:
        return self.events_executed / self.wall_seconds if self.wall_seconds else 0.0

    def to_dict(self) -> dict:
        return {
            "label": self.stats.label,
            "backend": self.backend,
            "cycles": self.stats.cycles,
            "wall_seconds": round(self.wall_seconds, 4),
            "events_executed": self.events_executed,
            "events_per_sec": round(self.events_per_sec),
            "backend_notes": self.backend_notes,
            "hot_functions": self.hot,
            "backend_native": self.native,
            "allocation_sites": self.allocations,
            "cycle_attribution": self.attribution,
            "packet_pool": self.pool,
            "worker_sets": self.worker_sets,
            "shard_meta": self.stats.shard_meta,
        }

    def render(self) -> str:
        lines = [
            f"{self.stats.label}: {self.stats.cycles:,} simulated cycles in "
            f"{self.wall_seconds:.3f}s wall "
            f"({self.events_executed:,} events, {self.events_per_sec:,.0f}/s, "
            f"{self.backend} backend)",
        ]
        if self.backend_notes:
            lines.append(f"backend: {self.backend_notes}")
        if self.native is not None:
            lines.append(
                f"compiled component backend.native: "
                f"{self.native['tottime']:.3f}s across "
                f"{self.native['calls']:,} extension calls"
            )
        lines += ["", "simulated-cycle attribution:"]
        budget = max(1, self.attribution.get("cycle_budget", 1))
        for name, value in self.attribution.items():
            if name in ("simulated_cycles", "cycle_budget"):
                continue
            share = (
                f" ({value / budget:6.1%} of cycle budget)"
                if name.endswith("_cycles")
                else ""
            )
            lines.append(f"  {name:28s} {value:>14,}{share}")
        lines.append("")
        lines.append("packet pool: " + ", ".join(f"{k}={v:,}" for k, v in self.pool.items()))
        if self.hot:
            lines.append("")
            lines.append(
                f"{'calls':>10}  {'tottime':>8}  {'cumtime':>8}  hot function"
            )
            for row in self.hot:
                lines.append(
                    f"{row['calls']:>10,}  {row['tottime']:>8.3f}  "
                    f"{row['cumtime']:>8.3f}  {row['function']}"
                )
        if self.allocations:
            lines.append("")
            lines.append(f"{'KiB':>10}  {'blocks':>10}  allocation site")
            for row in self.allocations:
                lines.append(
                    f"{row['size_kib']:>10,.1f}  {row['count']:>10,}  {row['site']}"
                )
        if self.stats.shard_meta:
            m = self.stats.shard_meta
            lines.append("")
            lines.append(
                f"sharding: {m['shards']} shards x {m['workers']} worker(s), "
                f"{m['windows']:,} windows, {m['handoffs']:,} handoffs, "
                f"{m['bytes']:,} bytes, {m['flushes']:,} flushes"
            )
            for i, s in enumerate(m.get("per_shard", [])):
                lines.append(
                    f"  shard {i}: {s['windows']:,} windows, "
                    f"{s['handoffs_out']:,} out / {s['handoffs_in']:,} in, "
                    f"{s['events']:,} events"
                )
        if self.worker_sets is not None:
            lines.append("")
            if self.worker_sets:
                lines.append("overflowed worker-sets (block -> peak sharers):")
                for block, peak in sorted(
                    self.worker_sets.items(), key=lambda kv: -kv[1]
                )[:16]:
                    lines.append(f"  {block:#010x}  {peak}")
            else:
                lines.append("overflowed worker-sets: none")
        return "\n".join(lines)


def profile_run(
    config: AlewifeConfig,
    workload: "Workload",
    *,
    top: int = 15,
    sort: str = "cumulative",
    alloc_top: int = 10,
    folded: bool = False,
    worker_sets: bool = False,
    trap_addresses: Optional[list[int]] = None,
) -> ProfileReport:
    """Run ``workload`` on a fresh machine under the profilers.

    ``trap_addresses`` additionally places those addresses in Trap-Always
    mode and attaches the §6 :class:`~repro.profiling.memory.MemoryProfiler`
    (software-extended protocols only).  Audit is skipped: the audit walk
    is post-run host code that would pollute the profile.

    ``config.shards > 1`` profiles the in-process windowed shard driver
    instead of the serial machine — same frames, plus the window loop and
    fabric bound computation, so `repro profile --shards K` answers where
    the sharded hot path spends its time.
    """
    if config.shards > 1:
        return _profile_sharded(
            config,
            workload,
            top=top,
            sort=sort,
            alloc_top=alloc_top,
            folded=folded,
            worker_sets=worker_sets,
            trap_addresses=trap_addresses,
        )
    machine = AlewifeMachine(config)
    memory_profiler = None
    if trap_addresses:
        from .memory import profile_blocks

        memory_profiler = profile_blocks(machine, trap_addresses)

    if alloc_top > 0:
        tracemalloc.start()
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    stats = machine.run(workload, audit=False)
    profiler.disable()
    wall = time.perf_counter() - start
    if alloc_top > 0:
        snapshot = tracemalloc.take_snapshot()
        tracemalloc.stop()
        allocations = _allocation_sites(snapshot, top=alloc_top)
    else:
        allocations = []

    profiler.create_stats()
    raw = profiler.stats

    counters = stats.counters
    link_busy = getattr(machine.network, "link_busy_cycles", None) or {}
    attribution = {
        "simulated_cycles": stats.cycles,
        # every *_cycles row below is summed across components, so shares
        # are of this machine-wide budget (cycles x processors)
        "cycle_budget": stats.cycles * config.n_procs,
        "cpu_busy_cycles": sum(
            node.processor.busy_cycles for node in machine.nodes
        ),
        "cpu_think_cycles": counters.get("cpu.think_cycles"),
        "trap_cycles": stats.trap_cycles,
        "remote_stalls": counters.get("cpu.remote_stalls"),
        "local_stalls": counters.get("cpu.local_stalls"),
        "network_contention_cycles": stats.network.contention_cycles,
        "link_busy_cycles": sum(link_busy.values()),
        "protocol_packets": stats.network.packets,
        "traps_taken": stats.traps_taken,
    }
    pool = machine.pool
    pool_stats = {
        "enabled": int(pool.enabled),
        "allocated": pool.allocated,
        "recycled": pool.recycled,
        "free": len(pool),
    }

    report = ProfileReport(
        stats=stats,
        wall_seconds=wall,
        events_executed=machine.sim.events_executed,
        hot=hot_functions(raw, top=top, sort=sort),
        allocations=allocations,
        attribution=attribution,
        pool=pool_stats,
        folded=folded_stacks(raw) if folded else [],
        worker_sets=overflow_report(machine) if worker_sets else None,
        backend=config.backend,
        native=native_component(raw),
        backend_notes=get_backend(config.backend).notes,
    )
    if memory_profiler is not None:
        report.worker_sets = report.worker_sets or {}
        for block, readers in memory_profiler.readers.items():
            report.worker_sets[block] = max(
                report.worker_sets.get(block, 0), len(readers)
            )
    return report


def _profile_sharded(
    config: AlewifeConfig,
    workload: "Workload",
    *,
    top: int,
    sort: str,
    alloc_top: int,
    folded: bool,
    worker_sets: bool,
    trap_addresses: Optional[list[int]],
) -> ProfileReport:
    """Profile the in-process shard driver (``--shards K``).

    Shard machines live inside the driver, so the host-side hooks that
    need the machine object (worker-set walks, Trap-Always profiling,
    per-link busy cycles, pool introspection) are unavailable; cycle
    attribution keeps every row derivable from the run's own stats.
    """
    if worker_sets or trap_addresses:
        raise ValueError(
            "--worker-sets/--trap-address need the serial machine; "
            "profile them with --shards 1"
        )
    from ..machine import run_experiment

    if alloc_top > 0:
        tracemalloc.start()
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    stats = run_experiment(config, workload, shard_workers=1)
    profiler.disable()
    wall = time.perf_counter() - start
    if alloc_top > 0:
        snapshot = tracemalloc.take_snapshot()
        tracemalloc.stop()
        allocations = _allocation_sites(snapshot, top=alloc_top)
    else:
        allocations = []
    profiler.create_stats()
    raw = profiler.stats

    counters = stats.counters
    meta = stats.shard_meta or {}
    attribution = {
        "simulated_cycles": stats.cycles,
        "cycle_budget": stats.cycles * config.n_procs,
        "cpu_busy_cycles": round(
            stats.utilization * stats.cycles * config.n_procs
        ),
        "cpu_think_cycles": counters.get("cpu.think_cycles"),
        "trap_cycles": stats.trap_cycles,
        "remote_stalls": counters.get("cpu.remote_stalls"),
        "local_stalls": counters.get("cpu.local_stalls"),
        "network_contention_cycles": stats.network.contention_cycles,
        "protocol_packets": stats.network.packets,
        "traps_taken": stats.traps_taken,
        "shard_windows": meta.get("windows", 0),
        "shard_handoffs": meta.get("handoffs", 0),
    }
    events = sum(m.get("events", 0) for m in meta.get("per_shard", []))
    return ProfileReport(
        stats=stats,
        wall_seconds=wall,
        events_executed=events,
        hot=hot_functions(raw, top=top, sort=sort),
        allocations=allocations,
        attribution=attribution,
        pool={"enabled": int(config.packet_pool)},
        folded=folded_stacks(raw) if folded else [],
        backend=config.backend,
        native=native_component(raw),
        backend_notes=get_backend(config.backend).notes,
    )


def overflow_report(machine) -> dict[int, int]:
    from .memory import overflow_worker_sets

    return overflow_worker_sets(machine)
