"""Direct-mapped cache array (Alewife: 64 KB, 16-byte lines).

The array stores block contents and their coherence state.  Indexing is the
classic direct-mapped scheme: block number modulo the number of lines, so
distinct blocks can conflict and evict each other — the Dir_iNB thrashing
results depend on caches that really replace lines.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mem.address import AddressSpace
from ..mem.memory import BlockData
from .states import CacheState


@dataclass(slots=True)
class CacheLine:
    """One resident block."""

    block: int
    state: CacheState
    data: BlockData
    written: bool = False

    @property
    def valid(self) -> bool:
        return self.state is not CacheState.INVALID


class CacheArray:
    """Direct-mapped tag/data array."""

    def __init__(self, space: AddressSpace, n_lines: int) -> None:
        if n_lines < 1 or (n_lines & (n_lines - 1)):
            raise ValueError("cache line count must be a power of two")
        self.space = space
        self.n_lines = n_lines
        self._lines: dict[int, CacheLine] = {}
        # Direct-mapped indexing as shift+mask (both sizes are powers of
        # two), precomputed because lookup sits on the per-access hot path.
        self._block_shift = space.block_bytes.bit_length() - 1
        self._index_mask = n_lines - 1

    @property
    def capacity_bytes(self) -> int:
        return self.n_lines * self.space.block_bytes

    def index_of(self, block: int) -> int:
        return (block >> self._block_shift) & self._index_mask

    def lookup(self, block: int) -> CacheLine | None:
        """The resident line for ``block`` or None on tag mismatch/invalid."""
        line = self._lines.get((block >> self._block_shift) & self._index_mask)
        if (
            line is not None
            and line.block == block
            and line.state is not CacheState.INVALID
        ):
            return line
        return None

    def resident(self, index: int) -> CacheLine | None:
        line = self._lines.get(index)
        return line if line is not None and line.valid else None

    def install(
        self, block: int, state: CacheState, data: BlockData
    ) -> CacheLine | None:
        """Install a fill; returns the evicted victim line, if any."""
        index = self.index_of(block)
        victim = self.resident(index)
        if victim is not None and victim.block == block:
            victim = None  # refilling the same block is not an eviction
        self._lines[index] = CacheLine(block, state, data)
        return victim

    def invalidate(self, block: int) -> CacheLine | None:
        """Drop the block if resident; returns the dropped line."""
        line = self.lookup(block)
        if line is not None:
            line.state = CacheState.INVALID
            return line
        return None

    def valid_lines(self) -> list[CacheLine]:
        return [line for line in self._lines.values() if line.valid]
