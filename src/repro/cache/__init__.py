"""Per-node direct-mapped cache and cache-side protocol engine."""

from .cache import CacheArray, CacheLine
from .controller import CacheController, Mshr
from .states import CacheState

__all__ = ["CacheArray", "CacheController", "CacheLine", "CacheState", "Mshr"]
