"""Cache-side block states (re-exported from the coherence package)."""

from ..coherence.states import CacheState

__all__ = ["CacheState"]
