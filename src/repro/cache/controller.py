"""Cache-side coherence controller.

Services processor loads, stores, and atomic read-modify-writes against the
cache array; on a miss (or a write to a read-only copy) it opens a
transaction with the block's home directory (RREQ/WREQ), retries on BUSY
with exponential backoff, answers invalidations (UPDATE with data when the
copy is dirty-exclusive, ACKC otherwise — including for blocks it silently
replaced), and writes back replaced read-write lines with REPM.

Fault tolerance (``fault_tolerant=True``) adds the recovery half of the
protocol, designed around the fabric's per-(src, dst) FIFO guarantee:

* outstanding requests carry an *epoch* and a timeout; an un-answered
  RREQ/WREQ is retransmitted with seeded exponential backoff, and any
  reply/BUSY bumps the epoch so stale timers die silently;
* duplicate or superseded data replies (a retransmission raced the
  original, or a read fill arrived for what is now an upgrade miss) are
  discarded instead of being fatal — FIFO guarantees the genuine reply is
  ordered behind them on the home→cache channel;
* dirty data leaving the cache (REPM on eviction, UPDATE answering an
  invalidation) is held in a write-back buffer until the home directory
  acknowledges it with DACK; the buffered copy is retransmitted on
  timeout, re-answers any INV that arrives meanwhile (echoing the new
  transaction id), and blocks re-requesting the same block — a refill
  granted from not-yet-written-back memory would resurrect stale data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..mem.address import AddressSpace
from ..network.interface import NetworkInterface
from ..network.packet import DISABLED_POOL, N_OPS, Op, Packet, PacketPool
from ..sim.component import Component
from ..sim.kernel import Simulator
from ..stats.counters import Counters, Histogram, counter_slot
from .cache import CacheArray, CacheLine
from .states import CacheState

Callback = Callable[[Optional[int]], None]

#: access kinds the processor can issue
KINDS = ("load", "store", "rmw")

#: counter names per access kind, prebuilt so the per-access hot path does
#: not format a string for every hit and miss
_HIT_SLOT = {kind: counter_slot(f"cache.hits.{kind}") for kind in KINDS}
_MISS_SLOT = {kind: counter_slot(f"cache.misses.{kind}") for kind in KINDS}
_LOCAL_REQ_SLOT = counter_slot("cache.local_requests")
_REMOTE_REQ_SLOT = counter_slot("cache.remote_requests")


@dataclass
class _Waiter:
    kind: str
    addr: int
    payload: object  # store value or rmw function
    callback: Callback
    issued_at: int


@dataclass
class Mshr:
    """An open miss transaction for one block."""

    block: int
    need_write: bool
    opened_at: int
    waiters: list[_Waiter] = field(default_factory=list)
    retries: int = 0
    #: bumped on every (re)send and every reply; a pending timeout timer
    #: whose epoch no longer matches is stale and does nothing
    epoch: int = 0
    #: request timeouts taken so far (drives retransmission backoff)
    timeouts: int = 0
    #: True while the request is held because the block's dirty data sits
    #: un-acknowledged in the write-back buffer (see _WbEntry)
    wb_blocked: bool = False


@dataclass
class _WbEntry:
    """Dirty data in flight to home, held until the directory's DACK.

    Created when a READ_WRITE copy leaves the cache (REPM eviction or
    UPDATE invalidation answer) under ``fault_tolerant``; the buffered
    words are immutable for the entry's lifetime, so any DACK for the
    block acknowledges exactly this datum.
    """

    data: object  # BlockData
    opcode: Op  # Op.REPM | Op.UPDATE
    txn: Optional[int]
    epoch: int = 0
    retries: int = 0


class CacheController(Component):
    """One node's cache plus its protocol engine."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        space: AddressSpace,
        array: CacheArray,
        nic: NetworkInterface,
        *,
        hit_latency: int = 1,
        retry_base: int = 12,
        retry_cap: int = 400,
        rng=None,
        counters: Counters | None = None,
        fault_tolerant: bool = False,
        request_timeout: int = 0,
        pool: PacketPool | None = None,
    ) -> None:
        super().__init__(sim, f"cache{node_id}")
        self.node_id = node_id
        self.space = space
        self.array = array
        self.nic = nic
        self.hit_latency = hit_latency
        self.retry_base = retry_base
        self.retry_cap = retry_cap
        self._rng = rng
        self.counters = counters if counters is not None else Counters()
        # Direct view of the counter bag: a dict item-add beats a method
        # call on the per-access hot path.
        self._slots = self.counters.slot_view()
        self._mshrs: dict[int, Mshr] = {}
        #: survive dropped/duplicated/delayed packets (see module docstring)
        self.fault_tolerant = fault_tolerant
        #: cycles before an outstanding request or write-back is resent;
        #: 0 disables timers (the model checker drives retransmission as
        #: explicit transitions instead)
        self.request_timeout = request_timeout
        self._wb_buffer: dict[int, _WbEntry] = {}
        self.miss_latency_total = 0
        self.miss_latency_count = 0
        #: miss latencies binned to 8-cycle buckets (distribution reporting)
        self.latency_hist = Histogram()
        #: blocks using update-mode coherence (§6 extension): stores apply
        #: to the local read-only copy and write through to the home, which
        #: pushes the new data to the other sharers
        self.update_blocks: set[int] = set()
        #: allocates outgoing protocol packets (disabled pool = plain news)
        self.pool = pool if pool is not None else DISABLED_POOL
        #: per-opcode receive dispatch, indexed by interned Op value; the
        #: cache only ever sees memory→cache opcodes, so the cache→memory
        #: rows hold the loud-failure handler.
        rx: list[Callable[[Packet], None]] = [self._rx_unexpected] * N_OPS
        rx[Op.RDATA] = self._rdata
        rx[Op.WDATA] = self._wdata
        rx[Op.INV] = self._invalidate
        rx[Op.BUSY] = self._busy
        rx[Op.UPDATE_DATA] = self._absorb_update
        rx[Op.DACK] = self._dack
        self._rx = rx
        nic.set_cache_handler(self.receive)

    # ------------------------------------------------------------------
    # Processor interface
    # ------------------------------------------------------------------

    def access(self, kind: str, addr: int, payload, callback: Callback) -> None:
        """Issue one memory operation; ``callback(value)`` fires when done.

        * ``load``: payload ignored; callback receives the word value.
        * ``store``: payload is the value to write; callback receives None.
        * ``rmw``: payload maps old word -> new word; callback receives the
          old value (an atomic fetch-and-op on an exclusive copy).
        """
        if kind not in KINDS:
            raise ValueError(f"unknown access kind {kind!r}")
        block = self.space.block_of(addr)
        line = self.array.lookup(block)
        self._access(kind, addr, payload, callback, block, line)

    def hit(self, kind: str, line, addr: int, payload, callback: Callback) -> None:
        """Complete an access the caller already tag-checked as a hit.

        The processor's issue path performs the lookup for its stall
        accounting and calls this directly, skipping the miss/update-mode
        triage of :meth:`_access`.  Safe because update-mode blocks never
        become exclusive, so an update-mode store can never tag-check as
        a hit and always takes the full path.
        """
        self._slots[_HIT_SLOT[kind]] += 1
        # _apply, inlined: this is the per-access steady state for every
        # workload with cache locality.
        word = self.space.word_in_block(addr)
        words = line.data.words
        if kind == "load":
            result = words[word]
        elif kind == "store":
            words[word] = payload
            line.written = True
            result = None
        else:
            result = words[word]
            words[word] = payload(result)
            line.written = True
        sim = self.sim
        sim.post(sim.now + self.hit_latency, callback, result)

    def _access(
        self, kind: str, addr: int, payload, callback: Callback, block: int, line
    ) -> None:
        """``access`` with the block/line tag check already performed.

        The processor's issue path does the same lookup to decide its stall
        accounting and calls this directly so each access costs one tag
        check; the state cannot change in between (same event, synchronous).
        """
        if block in self.update_blocks and kind == "rmw":
            # Update-mode blocks never become exclusive, so an atomic
            # would retry its read fill forever; forbid it loudly.
            raise ValueError(
                "atomic operations are not supported on update-mode blocks"
            )
        if block in self.update_blocks and kind == "store":
            if line is not None:
                self._write_through(line, addr, payload)
                self.schedule(self.hit_latency, callback, None)
                return
            # No copy yet: fetch read-only first, then write through.
            self.counters.bump("cache.misses.store")
            self._enqueue_miss(kind, addr, payload, callback, block)
            return
        if line is not None and self._is_hit(kind, line):
            self._slots[_HIT_SLOT[kind]] += 1
            # Commit the operation at tag-check time; only the processor's
            # completion is delayed.  Applying later would open an atomicity
            # window where an INV ships the line away *before* the write or
            # read-modify-write lands, losing the update.
            result = self._apply(kind, line, addr, payload)
            self.schedule(self.hit_latency, callback, result)
            return
        self._slots[_MISS_SLOT[kind]] += 1
        if line is not None and kind in ("store", "rmw"):
            self.counters.bump("cache.upgrades")
        self._enqueue_miss(kind, addr, payload, callback, block)

    @staticmethod
    def _is_hit(kind: str, line: CacheLine) -> bool:
        if kind == "load":
            return line.state in (CacheState.READ_ONLY, CacheState.READ_WRITE)
        return line.state is CacheState.READ_WRITE

    def _apply(self, kind: str, line: CacheLine, addr: int, payload) -> int | None:
        word = self.space.word_in_block(addr)
        if kind == "load":
            return line.data.words[word]
        if kind == "store":
            line.data.words[word] = payload
            line.written = True
            return None
        old = line.data.words[word]
        line.data.words[word] = payload(old)
        line.written = True
        return old

    # ------------------------------------------------------------------
    # Miss handling
    # ------------------------------------------------------------------

    def _enqueue_miss(
        self, kind: str, addr: int, payload, callback: Callback, block: int
    ) -> None:
        waiter = _Waiter(kind, addr, payload, callback, self.now)
        need_write = kind in ("store", "rmw") and block not in self.update_blocks
        mshr = self._mshrs.get(block)
        if mshr is not None:
            mshr.waiters.append(waiter)
            if need_write and not mshr.need_write:
                # A writer joined a read transaction: it will re-issue as an
                # upgrade after the read data arrives.
                self.counters.bump("cache.read_write_merge")
            return
        mshr = Mshr(block, need_write, self.now, [waiter])
        self._mshrs[block] = mshr
        self._send_request(mshr)

    def _send_request(self, mshr: Mshr) -> None:
        if mshr.block in self._wb_buffer:
            # Our dirty copy of this block has not been acknowledged by
            # home yet; a request now could be granted from stale memory.
            # Hold the request — the DACK releases it.
            mshr.wb_blocked = True
            self.counters.bump("cache.wb_held_requests")
            return
        mshr.wb_blocked = False
        home = self.space.home_of(mshr.block)
        opcode = Op.WREQ if mshr.need_write else Op.RREQ
        if home == self.node_id:
            self._slots[_LOCAL_REQ_SLOT] += 1
        else:
            self._slots[_REMOTE_REQ_SLOT] += 1
        self.nic.send(self.pool.protocol(self.node_id, home, opcode, mshr.block))
        self._arm_request_timer(mshr)

    # ------------------------------------------------------------------
    # Timeout and retransmission (fault tolerance)
    # ------------------------------------------------------------------

    def _retx_delay(self, attempts: int) -> int:
        delay = self.request_timeout * (2 ** min(attempts, 4))
        if self._rng is not None:
            # A dedicated substream: fault-free runs never draw from it,
            # so arming retransmission does not perturb "cache.retry".
            delay += self._rng.randint("cache.retx", 0, self.retry_base)
        return delay

    def _arm_request_timer(self, mshr: Mshr) -> None:
        if not self.request_timeout:
            return
        mshr.epoch += 1
        epoch = mshr.epoch
        self.schedule(
            self._retx_delay(mshr.timeouts),
            lambda: self._request_timer_fired(mshr, epoch),
        )

    def _request_timer_fired(self, mshr: Mshr, epoch: int) -> None:
        if (
            self._mshrs.get(mshr.block) is not mshr
            or mshr.epoch != epoch
            or mshr.wb_blocked
        ):
            return
        mshr.timeouts += 1
        self.counters.bump("cache.request_retx")
        self._send_request(mshr)

    def retransmit_request(self, block: int) -> bool:
        """Resend the outstanding request for ``block`` (no timer).

        The model checker's fault transitions call this directly; the
        runtime path goes through the timeout timer instead.
        """
        mshr = self._mshrs.get(block)
        if mshr is None or mshr.wb_blocked:
            return False
        mshr.timeouts += 1
        self.counters.bump("cache.request_retx")
        self._send_request(mshr)
        return True

    # ------------------------------------------------------------------
    # Network interface
    # ------------------------------------------------------------------

    def receive(self, packet: Packet) -> None:
        self._rx[packet.opcode](packet)

    def _rx_unexpected(self, packet: Packet) -> None:  # pragma: no cover
        raise RuntimeError(f"{self.name}: unexpected packet {packet}")

    def _rdata(self, packet: Packet) -> None:
        self._fill(packet, CacheState.READ_ONLY)

    def _wdata(self, packet: Packet) -> None:
        self._fill(packet, CacheState.READ_WRITE)

    def _fill(self, packet: Packet, state: CacheState) -> None:
        block = packet.address
        mshr = self._mshrs.get(block)
        if mshr is None:
            if self.fault_tolerant:
                # A duplicate of a fill we already consumed, or a reply to
                # a retransmitted request whose original got through.  The
                # copy it grants is FIFO-ordered before anything else home
                # sends us, so discarding is safe.
                self.counters.bump("cache.stray_fills")
                self.counters.bump(f"cache.stray_fills.{packet.opcode}")
                return
            # A data reply for a transaction we no longer track would break
            # the directory's view of our copy; fail loudly.
            raise RuntimeError(f"{self.name}: fill without MSHR: {packet}")
        if self.fault_tolerant and mshr.wb_blocked:
            # The request for this miss has not even been sent yet (it is
            # held until home DACKs our buffered write-back), so this fill
            # is a duplicate answering an older, superseded transaction.
            # The genuine reply can only follow the released request.
            self.counters.bump("cache.stray_fills")
            self.counters.bump(f"cache.stray_fills.{packet.opcode}")
            return
        if self.fault_tolerant and mshr.need_write != (state is CacheState.READ_WRITE):
            # A read fill for what is now an upgrade miss (the waiters of
            # an earlier read fill re-issued as writers), or a write grant
            # for a re-opened read miss.  The reply matching the current
            # request is FIFO-ordered behind this stale one; drop it.
            self.counters.bump("cache.stray_fills")
            self.counters.bump(f"cache.stray_fills.{packet.opcode}")
            return
        del self._mshrs[block]
        victim = self.array.install(block, state, packet.data.copy())
        if victim is not None:
            self._evict(victim)
        latency = self.now - mshr.opened_at
        self.miss_latency_total += latency
        self.miss_latency_count += 1
        self.latency_hist.add((latency // 8) * 8)
        self.counters.bump("cache.fills")
        for waiter in mshr.waiters:
            # Replay through the front door: hits complete, and a write
            # that only got read permission re-opens an upgrade miss.
            self.access(waiter.kind, waiter.addr, waiter.payload, waiter.callback)

    def _evict(self, victim: CacheLine) -> None:
        home = self.space.home_of(victim.block)
        if victim.state is CacheState.READ_WRITE:
            # Replace-modified: the only copy travels home with the data.
            self.counters.bump("cache.evict_rw")
            if self.fault_tolerant:
                self._wb_buffer[victim.block] = _WbEntry(
                    victim.data.copy(), Op.REPM, None
                )
                self._send_writeback(victim.block)
                victim.state = CacheState.INVALID
                return
            self.nic.send(
                self.pool.protocol(
                    self.node_id, home, Op.REPM, victim.block,
                    data=victim.data.copy(),
                )
            )
        else:
            # Clean read-only copies are dropped silently; the directory
            # pointer goes stale and is resolved by a benign ACKC later.
            self.counters.bump("cache.evict_ro")
        victim.state = CacheState.INVALID

    def _invalidate(self, packet: Packet) -> None:
        block = packet.address
        txn = packet.meta.get("txn")
        line = self.array.lookup(block)
        self.counters.bump("cache.inv_received")
        if line is not None and line.state is CacheState.READ_WRITE:
            # Dirty-exclusive copy: answer with the data (UPDATE).
            line.state = CacheState.INVALID
            if self.fault_tolerant:
                self._wb_buffer[block] = _WbEntry(line.data.copy(), Op.UPDATE, txn)
                self._send_writeback(block)
                return
            self.nic.send(
                self.pool.protocol(
                    self.node_id,
                    packet.src,
                    Op.UPDATE,
                    block,
                    data=line.data.copy(),
                    txn=txn,
                )
            )
            return
        wb = self._wb_buffer.get(block)
        if wb is not None:
            # Home is invalidating a copy whose dirty data is still in our
            # write-back buffer — the earlier UPDATE/REPM (or its DACK) was
            # lost.  Re-answer from the buffer, echoing the new transaction
            # id so the directory's acknowledgment counter matches.
            self.counters.bump("cache.wb_reanswers")
            wb.opcode = Op.UPDATE
            wb.txn = txn
            self._send_writeback(block)
            return
        if line is not None:
            line.state = CacheState.INVALID
        self.nic.send(
            self.pool.protocol(self.node_id, packet.src, Op.ACKC, block, txn=txn)
        )

    def _busy(self, packet: Packet) -> None:
        block = packet.address
        mshr = self._mshrs.get(block)
        if mshr is None:
            self.counters.bump("cache.busy_stray")
            return
        mshr.retries += 1
        # The directory answered, so the request was not lost: kill any
        # pending retransmission timer (the backoff retry below resends
        # and re-arms) by advancing the epoch.
        mshr.epoch += 1
        self.counters.bump("cache.busy_retries")
        delay = min(self.retry_cap, self.retry_base * (2 ** min(mshr.retries - 1, 5)))
        if self._rng is not None:
            delay += self._rng.randint("cache.retry", 0, self.retry_base)
        self.schedule(delay, lambda: self._retry(mshr))

    def _retry(self, mshr: Mshr) -> None:
        if self._mshrs.get(mshr.block) is mshr:
            self._send_request(mshr)

    # ------------------------------------------------------------------
    # Write-back buffer (fault tolerance)
    # ------------------------------------------------------------------

    def _send_writeback(self, block: int) -> None:
        entry = self._wb_buffer[block]
        home = self.space.home_of(block)
        if entry.txn is None:
            packet = self.pool.protocol(
                self.node_id, home, entry.opcode, block, data=entry.data.copy()
            )
        else:
            packet = self.pool.protocol(
                self.node_id, home, entry.opcode, block, data=entry.data.copy(),
                txn=entry.txn,
            )
        self.nic.send(packet)
        if not self.request_timeout:
            return
        entry.epoch += 1
        epoch = entry.epoch
        self.schedule(
            self._retx_delay(entry.retries),
            lambda: self._writeback_timer_fired(block, entry, epoch),
        )

    def _writeback_timer_fired(self, block: int, entry: _WbEntry, epoch: int) -> None:
        if self._wb_buffer.get(block) is not entry or entry.epoch != epoch:
            return
        entry.retries += 1
        self.counters.bump("cache.writeback_retx")
        self._send_writeback(block)

    def retransmit_writeback(self, block: int) -> bool:
        """Resend the buffered write-back for ``block`` (no timer).

        Model-checker entry point, mirroring :meth:`retransmit_request`.
        """
        if block not in self._wb_buffer:
            return False
        self._wb_buffer[block].retries += 1
        self.counters.bump("cache.writeback_retx")
        self._send_writeback(block)
        return True

    def _dack(self, packet: Packet) -> None:
        """Home acknowledged our write-back: retire the buffered data."""
        block = packet.address
        entry = self._wb_buffer.pop(block, None)
        if entry is None:
            self.counters.bump("cache.stray_dacks")
            return
        self.counters.bump("cache.dacks")
        mshr = self._mshrs.get(block)
        if mshr is not None and mshr.wb_blocked:
            # The held re-request can go out now that memory is current.
            self._send_request(mshr)

    def _write_through(self, line: CacheLine, addr: int, value: int) -> None:
        """Update-mode store: mutate the local copy and push it home."""
        word = self.space.word_in_block(addr)
        line.data.words[word] = value
        home = self.space.home_of(line.block)
        self.counters.bump("cache.write_throughs")
        self.nic.send(
            self.pool.protocol(
                self.node_id, home, Op.UPDATE, line.block, data=line.data.copy()
            )
        )

    def _absorb_update(self, packet: Packet) -> None:
        """Update-mode coherence (§6 extension): replace our copy's data.

        Pushes are fire-and-forget: update-mode objects are weakly ordered
        (see :mod:`repro.extensions.update`), and acknowledging every push
        would bury the home node's trap engine under ack traps.
        """
        line = self.array.lookup(packet.address)
        if line is not None and line.state is CacheState.READ_ONLY:
            line.data = packet.data.copy()
            self.counters.bump("cache.updates_absorbed")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def idle(self) -> bool:
        return not self._mshrs and not self._wb_buffer

    def mean_miss_latency(self) -> float:
        if not self.miss_latency_count:
            return 0.0
        return self.miss_latency_total / self.miss_latency_count
