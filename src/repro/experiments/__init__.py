"""Experiment machinery: parameter sweeps and the canonical figures."""

from .figures import ALL_FIGURES, figure7, figure8, figure9, figure10
from .sweep import (
    SweepPoint,
    SweepResult,
    pointer_points,
    run_sweep,
    scheme_points,
    ts_points,
)

__all__ = [
    "ALL_FIGURES",
    "SweepPoint",
    "SweepResult",
    "figure10",
    "figure7",
    "figure8",
    "figure9",
    "pointer_points",
    "run_sweep",
    "scheme_points",
    "ts_points",
]
