"""Canonical definitions of the paper's figures, as library API.

Each function reproduces one figure of §5 at a caller-chosen scale and
returns a :class:`~repro.experiments.sweep.SweepResult`; the benchmark
suite and ``benchmarks/run_figures.py`` both scale these down/up rather
than duplicating scheme lists.
"""

from __future__ import annotations

from ..machine import AlewifeConfig
from ..workloads import MultigridWorkload, WeatherWorkload
from .sweep import SweepPoint, SweepResult, run_sweep


def _base(n_procs: int, **overrides) -> AlewifeConfig:
    return AlewifeConfig(n_procs=n_procs, **overrides)


def figure7(n_procs: int = 64, *, levels=(2, 2, 2), progress=None) -> SweepResult:
    """Static Multigrid: all schemes approximately equal."""
    points = [
        SweepPoint("Dir4NB", dict(protocol="limited", pointers=4)),
        SweepPoint("LimitLESS4 Ts=100", dict(protocol="limitless", pointers=4, ts=100)),
        SweepPoint("LimitLESS4 Ts=50", dict(protocol="limitless", pointers=4, ts=50)),
        SweepPoint("Full-Map", dict(protocol="fullmap")),
    ]
    return run_sweep(
        f"Figure 7: Static Multigrid, {n_procs} Processors",
        _base(n_procs),
        points,
        lambda: MultigridWorkload(levels=levels, points_per_proc=48),
        progress=progress,
    )


def figure8(
    n_procs: int = 64, *, iterations: int = 5, optimized: bool = False, progress=None
) -> SweepResult:
    """Weather under limited directories: the hot-spot thrash."""
    points = [
        SweepPoint("Dir1NB", dict(protocol="limited", pointers=1)),
        SweepPoint("Dir2NB", dict(protocol="limited", pointers=2)),
        SweepPoint("Dir4NB", dict(protocol="limited", pointers=4)),
        SweepPoint("Full-Map", dict(protocol="fullmap")),
    ]
    tag = "optimized" if optimized else "unoptimized"
    return run_sweep(
        f"Figure 8: Weather ({tag}), {n_procs} Processors",
        _base(n_procs),
        points,
        lambda: WeatherWorkload(iterations=iterations, optimized=optimized),
        progress=progress,
    )


def figure9(n_procs: int = 64, *, iterations: int = 5, progress=None) -> SweepResult:
    """Weather under LimitLESS across the Ts sweep."""
    points = [SweepPoint("Dir4NB", dict(protocol="limited", pointers=4))]
    for ts in (150, 100, 50, 25):
        points.append(
            SweepPoint(
                f"LimitLESS4 Ts={ts}",
                dict(protocol="limitless", pointers=4, ts=ts),
            )
        )
    points.append(SweepPoint("Full-Map", dict(protocol="fullmap")))
    return run_sweep(
        f"Figure 9: Weather, {n_procs} Processors, Ts sweep",
        _base(n_procs),
        points,
        lambda: WeatherWorkload(iterations=iterations),
        progress=progress,
    )


def figure10(n_procs: int = 64, *, iterations: int = 5, progress=None) -> SweepResult:
    """Weather under LimitLESS with 1, 2, 4 hardware pointers."""
    points = [SweepPoint("Dir4NB", dict(protocol="limited", pointers=4))]
    for p in (1, 2, 4):
        points.append(
            SweepPoint(
                f"LimitLESS{p}", dict(protocol="limitless", pointers=p, ts=50)
            )
        )
    points.append(SweepPoint("Full-Map", dict(protocol="fullmap")))
    return run_sweep(
        f"Figure 10: Weather, {n_procs} Processors, pointer sweep",
        _base(n_procs),
        points,
        lambda: WeatherWorkload(iterations=iterations),
        progress=progress,
    )


ALL_FIGURES = {
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
}
