"""Parameter sweeps over machine configurations.

The evaluation's figures are all sweeps (over schemes, over Ts, over
pointer counts); this module provides the generic machinery so users can
define their own, with results as structured rows ready for tabulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from ..machine import AlewifeConfig, MachineStats, run_experiment
from ..stats.report import bar_chart, format_table
from ..workloads.base import Workload


@dataclass
class SweepPoint:
    """One configuration in a sweep."""

    label: str
    overrides: dict[str, Any]


@dataclass
class SweepResult:
    """Results of one sweep: ordered (point, stats) pairs."""

    title: str
    rows: list[tuple[SweepPoint, MachineStats]] = field(default_factory=list)

    def cycles(self, label: str) -> int:
        for point, stats in self.rows:
            if point.label == label:
                return stats.cycles
        raise KeyError(label)

    def stats(self, label: str) -> MachineStats:
        for point, stats in self.rows:
            if point.label == label:
                return stats
        raise KeyError(label)

    def labels(self) -> list[str]:
        return [point.label for point, _ in self.rows]

    def ratios(self, baseline: str) -> dict[str, float]:
        """Execution-time ratios relative to ``baseline``."""
        base = self.cycles(baseline)
        return {
            point.label: stats.cycles / base for point, stats in self.rows
        }

    def table(self) -> str:
        base = min(stats.cycles for _, stats in self.rows)
        return format_table(
            ["point", "cycles", "ratio", "traps", "evictions"],
            [
                (
                    point.label,
                    f"{stats.cycles:,}",
                    f"{stats.cycles / base:.2f}x",
                    stats.traps_taken,
                    stats.counters.get("dir.pointer_evictions"),
                )
                for point, stats in self.rows
            ],
        )

    def chart(self) -> str:
        return bar_chart(
            self.title,
            [(point.label, stats.mcycles()) for point, stats in self.rows],
        )

    def to_dict(self) -> dict:
        """A JSON-serializable record of the sweep (for archiving runs)."""
        return {
            "title": self.title,
            "rows": [
                {
                    "label": point.label,
                    "overrides": point.overrides,
                    "cycles": stats.cycles,
                    "utilization": round(stats.utilization, 4),
                    "traps": stats.traps_taken,
                    "packets": stats.network.packets,
                    "counters": stats.counters.as_dict(),
                    "config": {
                        "n_procs": stats.config.n_procs,
                        "protocol": stats.config.protocol,
                        "pointers": stats.config.pointers,
                        "ts": stats.config.ts,
                        "seed": stats.config.seed,
                    },
                }
                for point, stats in self.rows
            ],
        }

    def save_json(self, path) -> None:
        """Write the sweep record to ``path``."""
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps(self.to_dict(), indent=2))


def run_sweep(
    title: str,
    base_config: AlewifeConfig,
    points: Iterable[SweepPoint],
    workload_factory: Callable[[], Workload],
    *,
    progress: Callable[[str, MachineStats], None] | None = None,
) -> SweepResult:
    """Run ``workload_factory()`` under each configuration point.

    A fresh workload instance per point keeps generator state from leaking
    between runs; the base config's seed keeps points comparable.
    """
    result = SweepResult(title)
    for point in points:
        config = base_config.with_(**point.overrides)
        stats = run_experiment(config, workload_factory())
        result.rows.append((point, stats))
        if progress is not None:
            progress(point.label, stats)
    return result


def scheme_points(
    schemes: dict[str, dict[str, Any]] | None = None,
) -> list[SweepPoint]:
    """The paper's standard scheme list as sweep points."""
    if schemes is None:
        schemes = {
            "Dir1NB": dict(protocol="limited", pointers=1),
            "Dir2NB": dict(protocol="limited", pointers=2),
            "Dir4NB": dict(protocol="limited", pointers=4),
            "LimitLESS4 Ts=50": dict(protocol="limitless", pointers=4, ts=50),
            "Full-Map": dict(protocol="fullmap"),
        }
    return [SweepPoint(label, overrides) for label, overrides in schemes.items()]


def ts_points(ts_values: Iterable[int] = (25, 50, 100, 150)) -> list[SweepPoint]:
    """Figure 9's Ts sweep."""
    return [
        SweepPoint(f"LimitLESS4 Ts={ts}", dict(protocol="limitless", pointers=4, ts=ts))
        for ts in ts_values
    ]


def pointer_points(pointers: Iterable[int] = (1, 2, 4)) -> list[SweepPoint]:
    """Figure 10's pointer sweep."""
    return [
        SweepPoint(f"LimitLESS{p}", dict(protocol="limitless", pointers=p, ts=50))
        for p in pointers
    ]
