"""Analytical models (§3.1 latency model, §1 memory-overhead model)."""

from .analytical import (
    DirectoryOverhead,
    chained_write_latency,
    directory_overhead,
    fanout_write_latency,
    limitless_remote_latency,
    overflow_fraction_for_slowdown,
    slowdown_vs_fullmap,
    software_only_viability,
)

__all__ = [
    "DirectoryOverhead",
    "chained_write_latency",
    "directory_overhead",
    "fanout_write_latency",
    "limitless_remote_latency",
    "overflow_fraction_for_slowdown",
    "slowdown_vs_fullmap",
    "software_only_viability",
]
