"""Analytical models from the paper.

§3.1's latency model: with hardware protocol latency ``Th`` and software
emulation latency ``Ts``, the LimitLESS average remote access latency is
``Th + m * Ts`` where ``m`` is the fraction of remote accesses that
overflow the hardware pointer array.  The worked example: Th = 35 cycles
(measured for Weather on a 64-node Alewife), Ts = 100, m = 3 % gives a 10 %
slowdown over full-map.

§1's memory-overhead argument: full-map directories grow as O(N^2) with
machine size (N pointers for each of O(N) memory blocks), limited/LimitLESS
directories as O(N), and chained directories as O(N) with the forward
pointers living in the caches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def limitless_remote_latency(th: float, ts: float, m: float) -> float:
    """Average remote latency of LimitLESS: ``Th + m * Ts`` (§3.1)."""
    if not 0.0 <= m <= 1.0:
        raise ValueError("m is a fraction of accesses, 0..1")
    if th < 0 or ts < 0:
        raise ValueError("latencies must be non-negative")
    return th + m * ts


def slowdown_vs_fullmap(th: float, ts: float, m: float) -> float:
    """Fractional slowdown of LimitLESS over full-map (0.10 == 10 %)."""
    if th <= 0:
        raise ValueError("Th must be positive")
    return limitless_remote_latency(th, ts, m) / th - 1.0


def overflow_fraction_for_slowdown(th: float, ts: float, slowdown: float) -> float:
    """The m at which LimitLESS is ``slowdown`` slower than full-map."""
    if ts <= 0:
        raise ValueError("Ts must be positive")
    return slowdown * th / ts


def software_only_viability(th: float, ts: float) -> float:
    """Slowdown of all-software coherence (m = 1): the §3.1 migration-path
    observation that Th >> Ts makes interrupt-driven coherence viable."""
    return slowdown_vs_fullmap(th, ts, 1.0)


@dataclass(frozen=True)
class DirectoryOverhead:
    """Directory memory for one machine configuration, in bits."""

    scheme: str
    n_processors: int
    total_memory_bytes: int
    block_bytes: int
    pointers: int
    directory_bits: int

    @property
    def blocks(self) -> int:
        return self.total_memory_bytes // self.block_bytes

    @property
    def overhead_ratio(self) -> float:
        """Directory bits per bit of main memory."""
        return self.directory_bits / (self.total_memory_bytes * 8)


def _pointer_bits(n_processors: int) -> int:
    return max(1, math.ceil(math.log2(max(2, n_processors))))


#: base protocol state bits per entry (Table 1: 4 states -> 2 bits)
STATE_BITS = 2
#: LimitLESS meta-state bits per entry (Table 4: "the two bits required")
META_BITS = 2
#: the Local Bit (§4.3)
LOCAL_BITS = 1


def directory_overhead(
    scheme: str,
    n_processors: int,
    *,
    memory_per_node_bytes: int = 1 << 22,
    block_bytes: int = 16,
    pointers: int = 4,
) -> DirectoryOverhead:
    """Directory size for ``scheme`` on an N-node machine.

    Schemes: ``fullmap`` (N presence bits/entry), ``limited``/``limitless``
    (p pointers of log2 N bits, LimitLESS adds meta bits + local bit),
    ``chained`` (one head pointer per entry + one forward pointer per
    *cache line*, charged to directory memory here).
    """
    total_memory = memory_per_node_bytes * n_processors
    blocks = total_memory // block_bytes
    ptr = _pointer_bits(n_processors)
    if scheme == "fullmap":
        per_entry = STATE_BITS + n_processors
        bits = blocks * per_entry
        p = n_processors
    elif scheme == "limited":
        per_entry = STATE_BITS + pointers * ptr
        bits = blocks * per_entry
        p = pointers
    elif scheme == "limitless":
        per_entry = STATE_BITS + META_BITS + LOCAL_BITS + pointers * ptr
        bits = blocks * per_entry
        p = pointers
    elif scheme == "chained":
        per_entry = STATE_BITS + ptr
        # forward pointers: one per cache line, ~one cache's worth per node
        cache_lines_per_node = (1 << 16) // block_bytes
        bits = blocks * per_entry + n_processors * cache_lines_per_node * ptr
        p = 1
    else:
        raise ValueError(f"unknown scheme {scheme!r}")
    return DirectoryOverhead(
        scheme, n_processors, total_memory, block_bytes, p, bits
    )


def chained_write_latency(worker_set: int, round_trip: float) -> float:
    """Invalidate latency of a chained directory: sequential walk (§1).

    One network round trip per chain element versus a single fan-out for
    full-map/LimitLESS.
    """
    if worker_set < 0:
        raise ValueError("worker set must be non-negative")
    return worker_set * round_trip


def fanout_write_latency(worker_set: int, round_trip: float) -> float:
    """Invalidate latency with parallel fan-out: one round trip total."""
    return round_trip if worker_set else 0.0
