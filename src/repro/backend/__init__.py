"""Swappable simulation backends.

The pure-Python object model (``reference``) is the golden semantics of
the reproduction: every protocol decision, cycle count, and counter in
this repo is defined by what that code does.  A *backend* swaps the data
layout and inner loops underneath that semantics without changing a
single observable number: ``soa`` stores cache-line tags/state/data and
directory entries in flat structure-of-arrays storage (stdlib
:mod:`array` slabs viewed through :class:`memoryview`), executes events
through a 64-cycle batching ring extending the PR 4 same-cycle lane,
and fuses the processor's hit path onto the arrays.

Equivalence is *bit-identical*: the SoA components present the exact
reference object protocol (``CacheLine``-shaped views, ``set``-shaped
pointer views), allocate the same event sequence numbers, and produce
byte-equal :class:`~repro.machine.machine.MachineStats` and checkpoint
state digests.  ``tests/backend`` pins this as a golden tier.

``numpy`` is optional and auto-detected (never required, never
installed): when present it accelerates only cold bulk scans of the SoA
state arrays; the event-driven scalar hot path uses stdlib ``array``
either way because per-element access is what it does.  Set
``REPRO_NO_NUMPY=1`` to force the pure-stdlib path; benchmark and
profile reports record which was active.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Optional

from ..sim.kernel import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache.cache import CacheArray
    from ..mem.address import AddressSpace


def _detect_numpy() -> bool:
    if os.environ.get("REPRO_NO_NUMPY"):
        return False
    try:  # pragma: no cover - depends on environment
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - depends on environment
        return False
    return True


#: True when numpy is importable and not disabled via REPRO_NO_NUMPY.
HAS_NUMPY = _detect_numpy()


@dataclass(frozen=True)
class Backend:
    """Factory bundle for the swappable machine components.

    ``processor_class`` and ``wormhole_class`` are drop-in subclasses of
    the reference classes (the cache/directory controllers themselves are
    shared — they operate through the view protocol the factories
    return).  ``make_directory`` returning ``None`` keeps the
    controller's own reference :class:`~repro.coherence.entry.Directory`.
    """

    name: str
    make_simulator: Callable[..., Simulator]
    make_cache_array: Callable[["AddressSpace", int], "CacheArray"]
    make_directory: Callable[[int], object | None]
    processor_class: type
    wormhole_class: type
    #: packet-pool factory (``PacketPool``-shaped); ``None`` keeps the
    #: reference pool.
    make_pool: Optional[Callable[..., object]] = None
    #: post-build hook: called with the fully wired machine so a backend
    #: can splice in per-node fast paths (the native receive chains).
    finalize: Optional[Callable[[object], None]] = None
    #: human-readable status — fallbacks record *why* here, and run/
    #: profile/bench surfaces report it as ``backend_notes``.
    notes: Optional[str] = field(default=None, compare=False)


def _reference_backend() -> Backend:
    from ..cache.cache import CacheArray
    from ..network.fabric import WormholeNetwork
    from ..proc.processor import Processor

    return Backend(
        name="reference",
        make_simulator=lambda *, max_cycles=None: Simulator(max_cycles=max_cycles),
        make_cache_array=CacheArray,
        make_directory=lambda node_id: None,
        processor_class=Processor,
        wormhole_class=WormholeNetwork,
    )


def _soa_backend() -> Backend:
    from .batchsim import BatchSimulator
    from .fastpath import SoaProcessor, SoaWormholeNetwork
    from .soa import SoaCacheArray, SoaDirectory

    return Backend(
        name="soa",
        make_simulator=lambda *, max_cycles=None: BatchSimulator(
            max_cycles=max_cycles
        ),
        make_cache_array=SoaCacheArray,
        make_directory=SoaDirectory,
        processor_class=SoaProcessor,
        wormhole_class=SoaWormholeNetwork,
    )


def _native_backend() -> Backend:
    from . import native

    ok, reason = native.load_status()
    if not ok:
        # Graceful degradation: the run proceeds on the soa components,
        # and the reason is visible wherever backend_notes surface.
        return replace(
            _soa_backend(),
            name="native",
            notes=f"native extension unavailable ({reason}); "
            "running soa fallback",
        )
    from .soa import SoaCacheArray, SoaDirectory

    return Backend(
        name="native",
        make_simulator=lambda *, max_cycles=None: native.NativeSimulator(
            max_cycles=max_cycles
        ),
        make_cache_array=SoaCacheArray,
        make_directory=SoaDirectory,
        processor_class=native.NativeProcessor,
        wormhole_class=native.NativeWormholeNetwork,
        make_pool=native.NativePacketPool,
        finalize=native.finalize,
        notes="compiled kernels active",
    )


_FACTORIES: dict[str, Callable[[], Backend]] = {
    "reference": _reference_backend,
    "soa": _soa_backend,
    "native": _native_backend,
}

_INSTANCES: dict[str, Backend] = {}


def backend_names() -> tuple[str, ...]:
    """Every selectable backend name (stable order: reference first)."""
    return tuple(_FACTORIES)


def get_backend(name: str) -> Backend:
    """The backend registered under ``name`` (built once, then cached)."""
    backend = _INSTANCES.get(name)
    if backend is None:
        factory = _FACTORIES.get(name)
        if factory is None:
            raise ValueError(
                f"unknown backend {name!r}; choose from {backend_names()}"
            )
        backend = factory()
        _INSTANCES[name] = backend
    return backend


def equivalence_fingerprint(stats) -> str:
    """Backend-comparable digest of one run's :class:`MachineStats`.

    Hashes the canonical JSON of ``stats.to_dict()`` minus the two keys
    that legitimately differ between otherwise bit-identical runs:
    ``config`` (it records which backend was *asked for*) and
    ``shard_meta`` (driver bookkeeping — window/handoff counts are
    execution artifacts, not simulation results).  Two runs of the same
    (config-sans-backend, workload) agree on this digest iff every cycle
    count, counter, histogram, and network statistic matches.
    """
    import hashlib
    import json

    record = stats.to_dict()
    record.pop("config", None)
    record.pop("shard_meta", None)
    blob = json.dumps(record, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()


__all__ = [
    "Backend",
    "HAS_NUMPY",
    "backend_names",
    "equivalence_fingerprint",
    "get_backend",
]
