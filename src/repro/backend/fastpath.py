"""Fused hot paths for the SoA backend.

Two drop-in subclasses that shorten the per-event call chains without
changing a single observable number:

* :class:`SoaProcessor` fuses the cache hit path into the instruction
  step: the tag check, word read/write, and counter bump run directly
  against the :class:`~repro.backend.soa.SoaCacheArray` columns instead
  of materializing a line view and calling through
  ``CacheController.hit``.  The completion event carries the identical
  ``(time, seq)`` key the reference path's event would, so sequence
  numbers, counters, and cycle accounting are bit-equal; the callback
  differs (``_step`` with the result pre-staged in ``resume_value``
  instead of the ``mem_done`` partial), which is unobservable — a
  blocked context's only wake-up is this event.  Hit and think
  completions are also ring-inserted directly (the body of
  ``BatchSimulator.post`` inlined): ``_step`` only ever executes as an
  event, so the simulator is always mid-run and short delays always
  take the ring.  Fusion applies under the default ``memory_model="sc"``
  on a :class:`~repro.backend.batchsim.BatchSimulator`; any other
  pairing delegates to the reference step unchanged.
* :class:`SoaWormholeNetwork` posts the destination handler as the
  delivery event directly when no fault injector is installed, skipping
  the ``_deliver`` trampoline (one call frame per packet).  Routing,
  link reservation, and stats are the reference code verbatim; with
  faults enabled every packet takes the reference injector path.
  ``in_flight`` stays 0 on the direct path — there is no decrement hook
  without the trampoline — which the quiescence audit (which requires 0)
  accepts; only failure-path diagnostics lose the live count.
"""

from __future__ import annotations

from ..cache.controller import _HIT_SLOT
from ..network.fabric import OP_NAMES, WormholeNetwork
from ..network.packet import Op, Packet
from ..proc import ops
from ..proc.processor import _THINK_SLOT, Context, ContextState, Processor
from .batchsim import _MASK, _RING, BatchSimulator
from .soa import SoaCacheArray

_RW = 2  # int(CacheState.READ_WRITE): the only state a store/rmw hits

# Hot-loop constants: one global load instead of a module-attribute
# chain per comparison.
_DONE = ContextState.DONE
_RUNNING = ContextState.RUNNING
_BLOCKED = ContextState.BLOCKED
_THINK = ops.THINK
_LOAD = ops.LOAD
_STORE = ops.STORE
_RMW = ops.RMW


class SoaProcessor(Processor):
    """Processor with the cache hit path fused onto the SoA columns."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        backing = self.cache.array
        self._fused = (
            self.memory_model == "sc"
            and isinstance(backing, SoaCacheArray)
            and isinstance(self.sim, BatchSimulator)
            and self.cache.hit_latency < _RING
        )
        if self._fused:
            # One attribute load + tuple unpack per issued op instead of
            # eleven attribute lookups.
            self._hot = (
                backing._tags,
                backing._states,
                backing._written,
                backing._slab,
                backing._words_per_block,
                backing._block_shift,
                backing._index_mask,
                ~(self.space.block_bytes - 1),  # block mask
                self.space.block_bytes - 1,  # low mask
                self.cache.hit_latency,
                self.cache._slots,  # the cells the reference ``hit`` bumps
                _HIT_SLOT["load"],
                _HIT_SLOT["store"],
                _HIT_SLOT["rmw"],
            )
            #: cached bound method: posting ``self._step`` would allocate
            #: a fresh bound-method object per event
            self._step_fn = self._step

    def _step(self, ctx: Context) -> None:
        if not self._fused:
            Processor._step(self, ctx)
            return
        if ctx.state is _DONE:  # pragma: no cover - safety net
            return
        sim = self.sim
        now = sim.now
        if now < self.trap_free_at:
            sim.post(self.trap_free_at, self._step_fn, ctx)
            return
        ctx.state = _RUNNING
        if ctx.pending_op is not None:
            op, ctx.pending_op, ctx.pending_needs = ctx.pending_op, None, None
        elif ctx.burst_ops is not None:
            ctx.resume_value = None
            burst = ctx.burst_ops
            pos = ctx.burst_pos
            op = burst[pos]
            pos += 1
            if pos == len(burst):
                ctx.burst_ops = None
                ctx.burst_pos = 0
            else:
                ctx.burst_pos = pos
            ctx.ops_executed += 1
        else:
            value, ctx.resume_value = ctx.resume_value, None
            try:
                if ctx.started:
                    op = ctx.gen.send(value)
                else:
                    ctx.started = True
                    op = next(ctx.gen)
            except StopIteration:
                if ctx.outstanding_stores:
                    self._park(ctx, ("__retire__",), "all")
                    return
                self._retire(ctx)
                return
            ctx.ops_executed += 1
        ctx.last_op = op
        kind = op[0]
        if kind == _THINK:
            cycles = op[1]
            self.busy_cycles += cycles
            self._slots[_THINK_SLOT] += cycles
            if cycles < _RING:
                # sim.post inlined: _step always runs as an event, so the
                # simulator is mid-run and a short delay takes the ring.
                seq = sim._seq
                sim._seq = seq + 1
                slot = (now + cycles) & _MASK
                sim._ring[slot].append((seq, self._step_fn, ctx, None))
                sim._ring_mask |= 1 << slot
                sim._live += 1
            else:
                sim.post(now + cycles, self._step_fn, ctx)
            return
        if kind == _LOAD:
            addr = op[1]
            (
                tags,
                states,
                _written,
                slab,
                wpb,
                shift,
                imask,
                block_mask,
                low_mask,
                latency,
                cache_slots,
                hit_load,
                _hs,
                _hr,
            ) = self._hot
            block = addr & block_mask
            # No pending_store_blocks check: only the wo store buffer
            # populates it, and fusion requires memory_model == "sc".
            index = (block >> shift) & imask
            if tags[index] == block and states[index]:
                # Loads hit on any valid copy; this is the reference
                # _issue -> cache.hit chain flattened to array ops.  The
                # completion event posts _step directly with the result
                # pre-staged in resume_value: nothing can touch the
                # blocked context in between (its only wake-up is this
                # event), so skipping the mem_done trampoline changes no
                # observable state and saves two frames per hit.
                ctx.state = _BLOCKED
                self.busy_cycles += latency
                cache_slots[hit_load] += 1
                ctx.resume_value = slab[index * wpb + ((addr & low_mask) >> 2)]
                seq = sim._seq
                sim._seq = seq + 1
                slot = (now + latency) & _MASK
                sim._ring[slot].append((seq, self._step_fn, ctx, None))
                sim._ring_mask |= 1 << slot
                sim._live += 1
                return
            self._issue(ctx, "load", addr, None, block)
            return
        if kind == _STORE:
            addr = op[1]
            (
                tags,
                states,
                written,
                slab,
                wpb,
                shift,
                imask,
                block_mask,
                low_mask,
                latency,
                cache_slots,
                _hl,
                hit_store,
                _hr,
            ) = self._hot
            block = addr & block_mask
            index = (block >> shift) & imask
            if tags[index] == block and states[index] == _RW:
                # Stores hit only on an exclusive copy, so update-mode
                # blocks (never exclusive) always take the full path.
                ctx.state = _BLOCKED
                self.busy_cycles += latency
                cache_slots[hit_store] += 1
                slab[index * wpb + ((addr & low_mask) >> 2)] = op[2]
                written[index] = 1
                ctx.resume_value = None
                seq = sim._seq
                sim._seq = seq + 1
                slot = (now + latency) & _MASK
                sim._ring[slot].append((seq, self._step_fn, ctx, None))
                sim._ring_mask |= 1 << slot
                sim._live += 1
                return
            self._issue(ctx, "store", addr, op[2], block)
            return
        if kind == _RMW:
            if ctx.outstanding_stores:
                self._park(ctx, op, "all")
                return
            addr = op[1]
            (
                tags,
                states,
                written,
                slab,
                wpb,
                shift,
                imask,
                block_mask,
                low_mask,
                latency,
                cache_slots,
                _hl,
                _hs,
                hit_rmw,
            ) = self._hot
            block = addr & block_mask
            index = (block >> shift) & imask
            if tags[index] == block and states[index] == _RW:
                ctx.state = _BLOCKED
                self.busy_cycles += latency
                cache_slots[hit_rmw] += 1
                word_index = index * wpb + ((addr & low_mask) >> 2)
                result = slab[word_index]
                slab[word_index] = op[2](result)
                written[index] = 1
                ctx.resume_value = result
                seq = sim._seq
                sim._seq = seq + 1
                slot = (now + latency) & _MASK
                sim._ring[slot].append((seq, self._step_fn, ctx, None))
                sim._ring_mask |= 1 << slot
                sim._live += 1
                return
            self._issue(ctx, "rmw", addr, op[2], block)
            return
        self._execute_op(ctx, op)


class SoaWormholeNetwork(WormholeNetwork):
    """Wormhole mesh delivering straight to the destination handler."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._batch_sim = isinstance(self.sim, BatchSimulator)

    def send(self, packet: Packet) -> None:
        sim = self.sim
        now = sim.now
        packet.sent_at = now
        src = packet.src
        dst = packet.dst
        data = packet.data
        words = 2 + len(packet.meta) + (len(data.words) if data is not None else 0)
        if src == dst:
            stats = self.stats
            stats.packets += 1
            stats.words += words
            stats.total_latency += 2
            per_opcode = stats.per_opcode
            opcode = packet.opcode
            key = OP_NAMES[opcode] if opcode.__class__ is Op else opcode
            per_opcode[key] = per_opcode.get(key, 0) + 1
            if self.fault_injector is not None:
                self.fault_injector.admit(now + 2, packet)
                return
            if self._batch_sim and sim._running:
                # Local delivery is always 2 cycles out — well inside the
                # ring; this branch dominates hot-spot traffic.
                seq = sim._seq
                sim._seq = seq + 1
                slot = (now + 2) & _MASK
                sim._ring[slot].append((seq, self._handlers[dst], packet, None))
                sim._ring_mask |= 1 << slot
                sim._live += 1
                return
            sim.post(now + 2, self._handlers[dst], packet)
            return
        path = self._route_cache.get((src, dst))
        if path is None:
            path = self._intern_route(src, dst)
        serialization = words * self.cycles_per_word
        head = now + self.injection_latency
        waited = 0
        link_free_at = self._link_free_at
        link_busy = self._link_busy
        hop_latency = self.hop_latency
        for link in path:
            start = link_free_at[link]
            if start < head:
                start = head
            else:
                waited += start - head
            link_free_at[link] = start + serialization
            link_busy[link] += serialization
            head = start + hop_latency
        arrival = head + serialization
        stats = self.stats
        stats.packets += 1
        stats.words += words
        stats.hops += len(path)
        stats.total_latency += arrival - now
        stats.contention_cycles += waited
        per_opcode = stats.per_opcode
        opcode = packet.opcode
        key = OP_NAMES[opcode] if opcode.__class__ is Op else opcode
        per_opcode[key] = per_opcode.get(key, 0) + 1
        if self.fault_injector is not None:
            self.fault_injector.admit(arrival, packet)
            return
        if self._batch_sim and sim._running and arrival - now < _RING:
            # BatchSimulator.post inlined for the dominant short-future
            # delivery (one call frame per packet).
            seq = sim._seq
            sim._seq = seq + 1
            slot = arrival & _MASK
            sim._ring[slot].append((seq, self._handlers[dst], packet, None))
            sim._ring_mask |= 1 << slot
            sim._live += 1
            return
        sim.post(arrival, self._handlers[dst], packet)
