"""Batched event execution: a 64-cycle scheduling ring over the kernel.

The reference kernel's same-cycle fast lane (PR 4) removes heap traffic
only for events scheduled *for* the current cycle.  Steady-state machine
traffic is overwhelmingly short-future — hit completions at ``now+1``,
directory occupancy a few cycles out, hop-latency deliveries — so the
:class:`BatchSimulator` generalizes the lane to a ring of 64 per-cycle
deques: any event scheduled while running for a time within the next 64
cycles bypasses the heap entirely, and a whole cycle's slot drains in one
tight batch loop once the heap provably holds nothing at that cycle.

Exactness argument (the goldens pin it, this explains why it holds):

* Sequence numbers are allocated by the same unconditional counter, so
  every event carries the identical ``(time, seq)`` key it would under
  the reference kernel.
* For any time ``t``, every heap entry at ``t`` has a smaller seq than
  every ring entry at ``t``: a ring entry exists only if it was appended
  while running with ``t < now + 64``; any later schedule targeting ``t``
  also satisfies that bound (``now`` is monotone), hence also lands in
  the ring, behind it.  Front events have negative seqs and stay in the
  heap.  So merging "heap first iff its head is at ``now`` with a
  smaller seq" — the lane's own rule — preserves exact order.
* While a slot drains, the heap cannot gain events at ``now``
  (same-cycle schedules land in the ring; ``post_front`` at ``now``
  raises while running), so the batch loop needs no per-event heap
  check.
* The ring is spilled back into the heap (original seqs) whenever a run
  returns, so between runs — where checkpoints digest kernel state and
  the shard driver inspects ``next_event_time`` — the simulator is
  indistinguishable from the reference kernel.
"""

from __future__ import annotations

import heapq
from collections import deque
from heapq import heappush as _heappush
from typing import Any, Callable

from ..sim.kernel import Event, SimulationError, Simulator, _NO_ARG

_RING = 64
_MASK = _RING - 1
_ALL = (1 << _RING) - 1


class BatchSimulator(Simulator):
    """Kernel with a 64-cycle batching ring replacing the same-cycle lane."""

    def __init__(self, *, max_cycles: int | None = None) -> None:
        super().__init__(max_cycles=max_cycles)
        self._ring: list[deque] = [deque() for _ in range(_RING)]
        #: bitmask of non-empty ring slots (bit i = slot i)
        self._ring_mask = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def call_at(
        self, time: int, callback: Callable[..., None], arg: Any = _NO_ARG
    ) -> Event:
        time = int(time)
        now = self.now
        if time < now:
            raise SimulationError(
                f"cannot schedule event at {time}, now is {self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback, arg, self)
        if self._running and time - now < _RING:
            slot = time & _MASK
            self._ring[slot].append((seq, callback, arg, event))
            self._ring_mask |= 1 << slot
        else:
            _heappush(self._queue, (time, seq, callback, arg, event))
        self._live += 1
        return event

    def post(
        self, time: int, callback: Callable[..., None], arg: Any = _NO_ARG
    ) -> None:
        now = self.now
        if time < now:
            raise SimulationError(
                f"cannot schedule event at {time}, now is {self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        if self._running and time - now < _RING:
            slot = time & _MASK
            self._ring[slot].append((seq, callback, arg, None))
            self._ring_mask |= 1 << slot
        else:
            _heappush(self._queue, (time, seq, callback, arg, None))
        self._live += 1

    # post_front stays heap-resident (negative seqs order ahead of any
    # ring entry at the same time through the merge rule) and call_after/
    # post_after delegate to the overrides above.

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _flush_ring(self) -> None:
        """Spill ring entries back into the heap (original seqs).

        Runs whenever a run loop returns, so outside :meth:`run`/
        :meth:`run_until` the queue layout — and therefore ``step``,
        ``next_event_time``, and checkpoint state — matches the
        reference kernel exactly.  All ring times lie in
        ``[now, now + 64)``; the slot index recovers the absolute time.
        """
        mask = self._ring_mask
        if not mask:
            return
        now = self.now
        queue = self._queue
        push = _heappush
        while mask:
            low = mask & -mask
            slot_idx = low.bit_length() - 1
            mask ^= low
            time = now + ((slot_idx - now) & _MASK)
            slot = self._ring[slot_idx]
            while slot:
                seq, callback, arg, event = slot.popleft()
                push(queue, (time, seq, callback, arg, event))
        self._ring_mask = 0

    def _next_ring_time(self) -> int | None:
        """Earliest time of a *live* ring entry strictly after ``now``.

        Pops cancelled slot heads on the way (mirroring what
        ``next_event_time`` does for the heap) so time never advances to
        a cycle where nothing will execute.
        """
        while True:
            mask = self._ring_mask
            if not mask:
                return None
            start = (self.now + 1) & _MASK
            rot = ((mask >> start) | (mask << (_RING - start))) & _ALL
            dist = (rot & -rot).bit_length() - 1
            slot_idx = (start + dist) & _MASK
            slot = self._ring[slot_idx]
            while slot:
                head_event = slot[0][3]
                if head_event is not None and head_event.cancelled:
                    slot.popleft()
                    continue
                return self.now + 1 + dist
            self._ring_mask &= ~(1 << slot_idx)

    def run(self, until: int | None = None) -> int:
        limit = self.max_cycles if until is None else until
        queue = self._queue
        ring = self._ring
        pop = heapq.heappop
        no_arg = _NO_ARG
        self._running = True
        try:
            while True:
                slot = ring[self.now & _MASK]
                if slot:
                    if queue and queue[0][0] == self.now:
                        # Rare: pre-run or front events share this cycle;
                        # interleave by seq exactly like the lane does.
                        if queue[0][1] < slot[0][0]:
                            _t, _s, callback, arg, event = pop(queue)
                        else:
                            _s, callback, arg, event = slot.popleft()
                            if not slot:
                                self._ring_mask &= ~(1 << (self.now & _MASK))
                        if event is not None:
                            if event.cancelled:
                                continue
                            event._done = True
                    else:
                        # Batch drain: nothing in the heap is at ``now``
                        # and nothing can arrive there while we run.  The
                        # executed/live counters are settled once per
                        # batch: nothing reads them mid-cycle (the shard
                        # bound, checkpoints, and reports all run between
                        # windows), and cancel()'s own decrement commutes.
                        ran = 0
                        while slot:
                            # Bulk-copy the slot and dispatch with a for
                            # loop: one C-level copy replaces a popleft
                            # call per event.  Same-cycle appends land in
                            # the (now empty) deque and drain next pass;
                            # cancellation is still read at dispatch
                            # time, exactly like the popleft form.
                            it = iter(list(slot))
                            slot.clear()
                            try:
                                for _s, callback, arg, event in it:
                                    if event is not None:
                                        if event.cancelled:
                                            continue
                                        event._done = True
                                    ran += 1
                                    if arg is no_arg:
                                        callback()
                                    else:
                                        callback(arg)
                            except BaseException:
                                # Put the undispatched tail back so the
                                # finally-flush preserves it, matching
                                # what the popleft form leaves behind.
                                slot.extendleft(reversed(list(it)))
                                raise
                        self.events_executed += ran
                        self._live -= ran
                        self._ring_mask &= ~(1 << (self.now & _MASK))
                        continue
                else:
                    t_ring = self._next_ring_time()
                    if queue and (t_ring is None or queue[0][0] <= t_ring):
                        if limit is not None and queue[0][0] > limit:
                            self.now = limit
                            break
                        time, _s, callback, arg, event = pop(queue)
                        if event is not None:
                            if event.cancelled:
                                continue
                            event._done = True
                        self.now = time
                    elif t_ring is not None:
                        if limit is not None and t_ring > limit:
                            self.now = limit
                            break
                        self.now = t_ring
                        continue
                    else:
                        break
                self.events_executed += 1
                self._live -= 1
                if arg is no_arg:
                    callback()
                else:
                    callback(arg)
        finally:
            self._running = False
            if self._ring_mask:
                self._flush_ring()
        return self.now

    def run_until(self, limit: int) -> int:
        limit = int(limit)
        if limit < self.now:
            raise SimulationError(
                f"cannot run window to {limit}, now is {self.now}"
            )
        queue = self._queue
        ring = self._ring
        # The ring is empty between runs (flushed on every return), so
        # the reference fast exit applies unchanged.
        if not queue or queue[0][0] >= limit:
            self.now = limit
            return limit
        pop = heapq.heappop
        no_arg = _NO_ARG
        self._running = True
        try:
            while True:
                slot = ring[self.now & _MASK]
                if slot:
                    if queue and queue[0][0] == self.now:
                        if queue[0][1] < slot[0][0]:
                            _t, _s, callback, arg, event = pop(queue)
                        else:
                            _s, callback, arg, event = slot.popleft()
                            if not slot:
                                self._ring_mask &= ~(1 << (self.now & _MASK))
                        if event is not None:
                            if event.cancelled:
                                continue
                            event._done = True
                    else:
                        ran = 0
                        while slot:
                            # Bulk-copy the slot and dispatch with a for
                            # loop: one C-level copy replaces a popleft
                            # call per event.  Same-cycle appends land in
                            # the (now empty) deque and drain next pass;
                            # cancellation is still read at dispatch
                            # time, exactly like the popleft form.
                            it = iter(list(slot))
                            slot.clear()
                            try:
                                for _s, callback, arg, event in it:
                                    if event is not None:
                                        if event.cancelled:
                                            continue
                                        event._done = True
                                    ran += 1
                                    if arg is no_arg:
                                        callback()
                                    else:
                                        callback(arg)
                            except BaseException:
                                # Put the undispatched tail back so the
                                # finally-flush preserves it, matching
                                # what the popleft form leaves behind.
                                slot.extendleft(reversed(list(it)))
                                raise
                        self.events_executed += ran
                        self._live -= ran
                        self._ring_mask &= ~(1 << (self.now & _MASK))
                        continue
                else:
                    t_ring = self._next_ring_time()
                    if queue and (t_ring is None or queue[0][0] <= t_ring):
                        if queue[0][0] >= limit:
                            break
                        time, _s, callback, arg, event = pop(queue)
                        if event is not None:
                            if event.cancelled:
                                continue
                            event._done = True
                        self.now = time
                    elif t_ring is not None:
                        if t_ring >= limit:
                            break
                        self.now = t_ring
                        continue
                    else:
                        break
                self.events_executed += 1
                self._live -= 1
                if arg is no_arg:
                    callback()
                else:
                    callback(arg)
        finally:
            self._running = False
            if self._ring_mask:
                self._flush_ring()
        self.now = limit
        return self.now

    def next_event_time(self) -> int | None:
        # Outside a run the ring is always empty (flushed on return);
        # guard anyway so callbacks that peek mid-run stay exact.
        if self._ring_mask:
            slot = self._ring[self.now & _MASK]
            for entry in slot:
                event = entry[3]
                if event is None or not event.cancelled:
                    return self.now  # heap times are never earlier
            t_ring = self._next_ring_time()
            heap_next = super().next_event_time()
            if t_ring is None:
                return heap_next
            if heap_next is None:
                return t_ring
            return min(t_ring, heap_next)
        return super().next_event_time()
