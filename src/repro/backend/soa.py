"""Structure-of-arrays cache and directory storage.

The reference data model is one Python object per cache line and per
directory entry.  This module stores the same state in flat parallel
arrays — tag/state/written columns plus one contiguous word slab for the
cache, dense per-entry columns plus integer pointer bitmasks for the
directory — and presents it back to the (unchanged) controllers through
thin view objects that speak the exact reference protocol:

* :class:`SoaCacheLine` is shaped like :class:`~repro.cache.cache.CacheLine`
  (``block``/``state``/``data``/``written``/``valid``); its ``data.words``
  is a live ``memoryview`` slice of the word slab, so the controllers'
  ``line.data.words[word] = value`` hits the slab directly.
* :class:`SoaDirectoryEntry` is shaped like
  :class:`~repro.coherence.entry.DirectoryEntry`; its ``sharers`` and
  ``ack_waiting`` are :class:`PointerSet` views over per-entry integer
  bitmasks, and every set-algebra result handed back to protocol code
  (``sharers - {requester}``, ``vector | sharers``) is a plain ``set``.

Bit-identicality notes (the equivalence goldens pin these):

* ``state`` getters return the canonical enum members, so the
  controllers' identity compares (``line.state is CacheState.READ_WRITE``)
  and truthiness tests (``if entry.meta:``) behave exactly as on the
  reference objects.
* ``install`` materializes the victim into a detached plain
  :class:`CacheLine` *before* overwriting the slot — the reference
  ``_evict`` reads (and invalidates) the victim after the new line has
  replaced it, which only works if the victim's state is its own.
* ``valid_lines`` materializes plain lines with plain ``list`` words so
  checkpoint digests serialize byte-identically to the reference.
* Word values live in ``array('q')`` slabs: stores are limited to the
  signed 64-bit range (the workloads use small ints; out-of-range raises
  ``OverflowError`` loudly rather than wrapping).

``numpy``, when available, accelerates only the cold bulk scan in
``valid_lines`` (audit/checkpoint time); the event-driven hot path is
per-element either way and uses the stdlib ``array`` module.
"""

from __future__ import annotations

from array import array
from collections import deque
from collections.abc import MutableSet
from typing import TYPE_CHECKING, Iterable, Iterator

from ..cache.cache import CacheLine
from ..coherence.states import CacheState, DirState, MetaState
from ..mem.memory import BlockData
from . import HAS_NUMPY

if HAS_NUMPY:  # pragma: no cover - depends on environment
    import numpy as _np
else:  # pragma: no cover - depends on environment
    _np = None

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..mem.address import AddressSpace
    from ..network.packet import Packet

# Value -> member tables (IntEnum definition order is value order here).
_CACHE_STATES = tuple(CacheState)
_DIR_STATES = tuple(DirState)
_META_STATES = tuple(MetaState)


# ----------------------------------------------------------------------
# Cache side
# ----------------------------------------------------------------------


class SlabBlockData:
    """``BlockData``-shaped view over one block's slice of the word slab.

    ``words`` is a live ``memoryview('q')`` slice: integer indexing and
    assignment go straight to the slab.  ``copy()`` detaches into a real
    :class:`BlockData` (what every outgoing packet carries), so slab
    views never escape into the network or the digests.
    """

    __slots__ = ("words",)

    def __init__(self, words: memoryview) -> None:
        self.words = words

    def copy(self) -> BlockData:
        clone = BlockData(0)
        clone.words = list(self.words)
        return clone

    def __eq__(self, other: object) -> bool:
        words = getattr(other, "words", None)
        if words is None:
            return NotImplemented
        return list(self.words) == list(words)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SlabBlockData({list(self.words)})"


class SoaCacheLine:
    """``CacheLine``-shaped view of one slot of a :class:`SoaCacheArray`."""

    __slots__ = ("_array", "_index")

    def __init__(self, backing: "SoaCacheArray", index: int) -> None:
        self._array = backing
        self._index = index

    @property
    def block(self) -> int:
        return self._array._tags[self._index]

    @property
    def state(self) -> CacheState:
        return _CACHE_STATES[self._array._states[self._index]]

    @state.setter
    def state(self, value: CacheState) -> None:
        self._array._states[self._index] = value

    @property
    def written(self) -> bool:
        return bool(self._array._written[self._index])

    @written.setter
    def written(self, value: bool) -> None:
        self._array._written[self._index] = 1 if value else 0

    @property
    def data(self) -> SlabBlockData:
        return self._array._data_view(self._index)

    @data.setter
    def data(self, value) -> None:
        # Update-mode absorb does ``line.data = packet.data.copy()``:
        # land the words in the slab, keeping the live view current.
        backing = self._array
        base = self._index * backing._words_per_block
        slab = backing._slab
        for offset, word in enumerate(value.words):
            slab[base + offset] = word

    @property
    def valid(self) -> bool:
        return bool(self._array._states[self._index])


class SoaCacheArray:
    """Direct-mapped tag/data array over flat parallel columns.

    Drop-in for :class:`~repro.cache.cache.CacheArray`: same indexing
    math, same install/invalidate victim semantics, view objects instead
    of per-line instances.
    """

    def __init__(self, space: "AddressSpace", n_lines: int) -> None:
        if n_lines < 1 or (n_lines & (n_lines - 1)):
            raise ValueError("cache line count must be a power of two")
        self.space = space
        self.n_lines = n_lines
        self._block_shift = space.block_bytes.bit_length() - 1
        self._index_mask = n_lines - 1
        self._words_per_block = space.words_per_block
        # Tags are a plain list (fastest per-element indexing; holds the
        # -1 empty sentinel and arbitrary block addresses); the state and
        # written flags are bytearrays, which index as fast as lists but
        # also expose the buffer protocol for the bulk occupancy scan.
        self._tags: list[int] = [-1] * n_lines
        self._states = bytearray(n_lines)
        self._written = bytearray(n_lines)
        self._slab = array("q", bytes(8 * n_lines * self._words_per_block))
        self._slab_view = memoryview(self._slab)
        self._views: list[SoaCacheLine | None] = [None] * n_lines
        self._datas: list[SlabBlockData | None] = [None] * n_lines

    @property
    def capacity_bytes(self) -> int:
        return self.n_lines * self.space.block_bytes

    def index_of(self, block: int) -> int:
        return (block >> self._block_shift) & self._index_mask

    def _view(self, index: int) -> SoaCacheLine:
        view = self._views[index]
        if view is None:
            view = SoaCacheLine(self, index)
            self._views[index] = view
        return view

    def _data_view(self, index: int) -> SlabBlockData:
        data = self._datas[index]
        if data is None:
            w = self._words_per_block
            data = SlabBlockData(self._slab_view[index * w : (index + 1) * w])
            self._datas[index] = data
        return data

    def _materialize(self, index: int) -> CacheLine:
        """A detached plain line snapshotting slot ``index``."""
        w = self._words_per_block
        data = BlockData(0)
        data.words = list(self._slab_view[index * w : (index + 1) * w])
        return CacheLine(
            self._tags[index],
            _CACHE_STATES[self._states[index]],
            data,
            bool(self._written[index]),
        )

    def lookup(self, block: int) -> SoaCacheLine | None:
        """The resident line for ``block`` or None on tag mismatch/invalid."""
        index = (block >> self._block_shift) & self._index_mask
        if self._tags[index] == block and self._states[index]:
            return self._view(index)
        return None

    def resident(self, index: int) -> SoaCacheLine | None:
        if self._states[index]:
            return self._view(index)
        return None

    def install(
        self, block: int, state: CacheState, data: BlockData
    ) -> CacheLine | None:
        """Install a fill; returns the evicted victim line, if any.

        The victim is a *detached* snapshot taken before the slot is
        overwritten: the caller's ``_evict`` sends its data home and then
        invalidates it, and neither action may touch the new resident.
        """
        index = (block >> self._block_shift) & self._index_mask
        victim = None
        if self._states[index] and self._tags[index] != block:
            victim = self._materialize(index)
        self._tags[index] = block
        self._states[index] = state
        self._written[index] = 0
        base = index * self._words_per_block
        slab = self._slab
        for offset, word in enumerate(data.words):
            slab[base + offset] = word
        return victim

    def invalidate(self, block: int) -> SoaCacheLine | None:
        """Drop the block if resident; returns the dropped line."""
        line = self.lookup(block)
        if line is not None:
            self._states[line._index] = 0
            return line
        return None

    def valid_lines(self) -> list[CacheLine]:
        """Detached plain lines (plain ``list`` words) for every valid slot.

        Materialized so audit holdings and checkpoint digests serialize
        exactly like the reference objects.  The occupancy scan is the
        one place numpy helps this layout: a bulk nonzero over the state
        column instead of a Python loop over every slot.
        """
        if _np is not None:
            indices = _np.frombuffer(self._states, dtype=_np.int8).nonzero()[0]
            return [self._materialize(int(i)) for i in indices]
        states = self._states
        return [
            self._materialize(i) for i in range(self.n_lines) if states[i]
        ]


# ----------------------------------------------------------------------
# Directory side
# ----------------------------------------------------------------------


class PointerSet(MutableSet):
    """``set``-shaped view over one entry's pointer bitmask.

    Membership, add, and discard are single bit operations on an integer
    held in the directory's column list.  Every derived collection the
    :class:`~collections.abc.Set` mixins build (``- {home}``, ``| other``)
    detaches into a plain ``set`` via ``_from_iterable``, which is what
    the protocol code expects to receive.
    """

    __slots__ = ("_column", "_index")

    def __init__(self, column: list[int], index: int) -> None:
        self._column = column
        self._index = index

    @classmethod
    def _from_iterable(cls, iterable: Iterable[int]) -> set:
        return set(iterable)

    def __contains__(self, node: object) -> bool:
        return (
            isinstance(node, int)
            and node >= 0
            and (self._column[self._index] >> node) & 1 == 1
        )

    def __iter__(self) -> Iterator[int]:
        bits = self._column[self._index]
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low

    def __len__(self) -> int:
        return self._column[self._index].bit_count()

    def add(self, node: int) -> None:
        self._column[self._index] |= 1 << node

    def discard(self, node: int) -> None:
        self._column[self._index] &= ~(1 << node)

    def clear(self) -> None:
        self._column[self._index] = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PointerSet({set(self)})"


def _bits_of(nodes: Iterable[int]) -> int:
    bits = 0
    for node in nodes:
        bits |= 1 << node
    return bits


class SoaDirectoryEntry:
    """``DirectoryEntry``-shaped view of one row of a :class:`SoaDirectory`.

    Every method replicates :class:`~repro.coherence.entry.DirectoryEntry`
    behavior exactly, computing over the row's bitmasks instead of sets.
    """

    __slots__ = ("_dir", "_index", "_sharers", "_acks")

    def __init__(self, directory: "SoaDirectory", index: int) -> None:
        self._dir = directory
        self._index = index
        self._sharers = PointerSet(directory._sharers, index)
        self._acks = PointerSet(directory._acks, index)

    # -- plain columns --------------------------------------------------

    @property
    def block(self) -> int:
        return self._dir._blocks[self._index]

    @property
    def home(self) -> int:
        return self._dir.home

    @property
    def state(self) -> DirState:
        return _DIR_STATES[self._dir._state[self._index]]

    @state.setter
    def state(self, value: DirState) -> None:
        self._dir._state[self._index] = value

    @property
    def meta(self) -> MetaState:
        return _META_STATES[self._dir._meta[self._index]]

    @meta.setter
    def meta(self, value: MetaState) -> None:
        self._dir._meta[self._index] = value

    @property
    def trap_mode(self) -> MetaState | None:
        raw = self._dir._trap[self._index]
        return None if raw < 0 else _META_STATES[raw]

    @trap_mode.setter
    def trap_mode(self, value: MetaState | None) -> None:
        self._dir._trap[self._index] = -1 if value is None else value

    @property
    def local_bit(self) -> bool:
        return bool(self._dir._local[self._index])

    @local_bit.setter
    def local_bit(self, value: bool) -> None:
        self._dir._local[self._index] = 1 if value else 0

    @property
    def requester(self) -> int | None:
        raw = self._dir._requester[self._index]
        return None if raw < 0 else raw

    @requester.setter
    def requester(self, value: int | None) -> None:
        self._dir._requester[self._index] = -1 if value is None else value

    @property
    def txn(self) -> int:
        return self._dir._txn[self._index]

    @txn.setter
    def txn(self, value: int) -> None:
        self._dir._txn[self._index] = value

    @property
    def peak_sharers(self) -> int:
        return self._dir._peak[self._index]

    @peak_sharers.setter
    def peak_sharers(self, value: int) -> None:
        self._dir._peak[self._index] = value

    @property
    def pending(self) -> deque:
        found = self._dir._pending[self._index]
        if found is None:
            found = deque()
            self._dir._pending[self._index] = found
        return found

    @pending.setter
    def pending(self, value) -> None:
        self._dir._pending[self._index] = deque(value)

    # -- pointer sets ---------------------------------------------------

    @property
    def sharers(self) -> PointerSet:
        return self._sharers

    @sharers.setter
    def sharers(self, value: Iterable[int]) -> None:
        # Compute before assigning: ``entry.sharers |= x`` hands the
        # mutated live view back through this setter.
        self._dir._sharers[self._index] = _bits_of(value)

    @property
    def ack_waiting(self) -> PointerSet:
        return self._acks

    @ack_waiting.setter
    def ack_waiting(self, value: Iterable[int]) -> None:
        self._dir._acks[self._index] = _bits_of(value)

    # -- pointer accounting (reference semantics, bitwise) --------------

    def pointers_used(self) -> int:
        bits = self._dir._sharers[self._index] & ~(1 << self._dir.home)
        return bits.bit_count()

    def all_copy_holders(self) -> set[int]:
        holders = set(self._sharers)
        if self._dir._local[self._index]:
            holders.add(self._dir.home)
        return holders

    def add_sharer(self, node: int) -> None:
        directory = self._dir
        index = self._index
        if node == directory.home:
            directory._local[index] = 1
        else:
            directory._sharers[index] |= 1 << node
        bits = directory._sharers[index]
        if directory._local[index]:
            bits |= 1 << directory.home
        count = bits.bit_count()
        if count > directory._peak[index]:
            directory._peak[index] = count

    def drop_sharer(self, node: int) -> None:
        if node == self._dir.home:
            self._dir._local[self._index] = 0
        else:
            self._dir._sharers[self._index] &= ~(1 << node)

    def clear_sharers(self) -> None:
        self._dir._sharers[self._index] = 0
        self._dir._local[self._index] = 0

    def holds(self, node: int) -> bool:
        if node == self._dir.home:
            return bool(self._dir._local[self._index])
        return (self._dir._sharers[self._index] >> node) & 1 == 1

    # -- transactions ---------------------------------------------------

    def begin_transaction(self, requester: int, targets: Iterable[int]) -> int:
        directory = self._dir
        index = self._index
        directory._txn[index] += 1
        directory._requester[index] = requester
        directory._acks[index] = _bits_of(targets)
        return directory._txn[index]

    def ack_from(self, node: int, txn: int | None) -> bool:
        directory = self._dir
        index = self._index
        if not (directory._acks[index] >> node) & 1:
            return False
        if txn is not None and txn != directory._txn[index]:
            return False
        directory._acks[index] &= ~(1 << node)
        return True

    @property
    def acks_outstanding(self) -> int:
        return self._dir._acks[self._index].bit_count()

    def idle(self) -> bool:
        directory = self._dir
        index = self._index
        pending = directory._pending[index]
        return (
            directory._state[index] <= 1  # READ_ONLY or READ_WRITE
            and directory._meta[index] != MetaState.TRANS_IN_PROGRESS
            and not pending
            and not directory._acks[index]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SoaDirectoryEntry(block={self.block:#x}, state={self.state}, "
            f"sharers={set(self._sharers)}, local_bit={self.local_bit}, "
            f"meta={self.meta})"
        )


class SoaDirectory:
    """All directory entries homed at one node, stored as columns.

    Drop-in for :class:`~repro.coherence.entry.Directory`: first-touch
    allocation, insertion-ordered ``entries()``, the same row defaults as
    the reference dataclass.
    """

    def __init__(self, home: int) -> None:
        self.home = home
        self._rows: dict[int, int] = {}
        self._blocks: list[int] = []
        self._state = array("b")
        self._meta = array("b")
        self._trap = array("b")
        self._local = array("b")
        self._requester = array("q")
        self._txn = array("q")
        self._peak = array("q")
        self._sharers: list[int] = []
        self._acks: list[int] = []
        self._pending: list[deque | None] = []
        self._entry_views: list[SoaDirectoryEntry] = []

    def entry(self, block: int) -> SoaDirectoryEntry:
        index = self._rows.get(block)
        if index is None:
            index = len(self._blocks)
            self._rows[block] = index
            self._blocks.append(block)
            self._state.append(DirState.READ_ONLY)
            self._meta.append(MetaState.NORMAL)
            self._trap.append(-1)
            self._local.append(0)
            self._requester.append(-1)
            self._txn.append(0)
            self._peak.append(0)
            self._sharers.append(0)
            self._acks.append(0)
            self._pending.append(None)
            self._entry_views.append(SoaDirectoryEntry(self, index))
        return self._entry_views[index]

    def entries(self) -> list[SoaDirectoryEntry]:
        return list(self._entry_views)

    def __len__(self) -> int:
        return len(self._blocks)
