/* Compiled hot-path kernels for the ``native`` backend.
 *
 * This module is the "generated-C kernel" rung named in ROADMAP.md: the
 * measured hot paths of the ``soa`` backend — the 64-cycle batched
 * scheduling ring, the fused SoA cache-hit issue path, packet-pool
 * acquire/release, NIC direction dispatch, the directory's
 * per-(state, opcode) table lookup, and wormhole route stepping — are
 * re-expressed as CPython C-API code operating on the *same Python data
 * structures* the pure-Python backends use.  That choice is what makes
 * bit-identity tractable: the heap is the same list of
 * ``(time, seq, callback, arg, event)`` tuples, the ring slots are
 * Python lists the pure-Python code can still append to, counters are
 * the same live slot lists, and every settle point (per-batch counter
 * updates, exception tail restoration, ring flush on return) mirrors
 * ``repro/backend/batchsim.py`` statement for statement.
 *
 * Nothing here is imported directly by repro code; ``repro.backend.native``
 * wraps it behind ``setup()`` (which hands over the Python-side classes
 * and constants and resolves slot offsets) and falls back to the ``soa``
 * backend when the extension is missing.
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>

#define RING 64
#define RING_MASK 63

/* ------------------------------------------------------------------ */
/* Module-wide cached objects, filled in by setup().                  */
/* ------------------------------------------------------------------ */

typedef struct {
    Py_ssize_t state, gen, started, resume_value, ops_executed, last_op;
    Py_ssize_t outstanding_stores, pending_op, pending_needs;
    Py_ssize_t burst_ops, burst_pos;
} CtxOffsets;

typedef struct {
    Py_ssize_t cancelled, done;
} EvOffsets;

typedef struct {
    Py_ssize_t src, dst, opcode, address, data, meta, sent_at, crc, free;
} PktOffsets;

typedef struct {
    Py_ssize_t packets, words, hops, total_latency, contention, per_opcode;
} StatOffsets;

static PyObject *g_sim_error;       /* SimulationError */
static PyObject *g_event_type;      /* kernel.Event */
static PyObject *g_no_arg;          /* kernel._NO_ARG sentinel */
static PyObject *g_ctx_done, *g_ctx_running, *g_ctx_blocked;
static PyObject *g_op_think, *g_op_load, *g_op_store, *g_op_rmw;
static PyObject *g_op_type;         /* packet.Op (IntEnum class) */
static PyObject *g_op_names;        /* packet.OP_NAMES tuple */
static PyObject *g_protocol_packet; /* packet.protocol_packet */
static PyObject *g_op_by_name;      /* packet.OP_BY_NAME dict */
static PyObject *g_retire_op;       /* ("__retire__",) */
static PyObject *g_str_all;         /* "all" */
static PyObject *g_str_load, *g_str_store, *g_str_rmw;
static char g_data_bearing[64];
static long g_last_c2m = 4;
static CtxOffsets g_ctx;
static EvOffsets g_ev;
static PktOffsets g_pkt;
static StatOffsets g_stat;
static int g_ready = 0;

static PyObject *s_max_cycles, *s_busy_cycles, *s_trap_free_at;
static PyObject *s_crc_enabled, *s_packets_received, *s_fault_injector;
static PyObject *s_admit, *s_words, *s_send;

/* Resolve the offset of one __slots__ member descriptor. */
static Py_ssize_t
slot_offset(PyObject *cls, const char *name)
{
    PyObject *descr = PyObject_GetAttrString(cls, name);
    Py_ssize_t off;
    if (descr == NULL)
        return -1;
    if (Py_TYPE(descr) != &PyMemberDescr_Type) {
        Py_DECREF(descr);
        PyErr_Format(PyExc_TypeError, "%s is not a slot member", name);
        return -1;
    }
    off = ((PyMemberDescrObject *)descr)->d_member->offset;
    Py_DECREF(descr);
    return off;
}

#define SLOT_GET(obj, off) (*(PyObject **)((char *)(obj) + (off)))

/* Replace slot contents, stealing ``value``. */
static inline void
slot_set(PyObject *obj, Py_ssize_t off, PyObject *value)
{
    PyObject **cell = (PyObject **)((char *)obj + off);
    PyObject *old = *cell;
    *cell = value;
    Py_XDECREF(old);
}

static inline void
slot_set_incref(PyObject *obj, Py_ssize_t off, PyObject *value)
{
    Py_INCREF(value);
    slot_set(obj, off, value);
}

/* entry[i] as long long (entries are heap/ring tuples of PyLongs) */
static inline long long
tuple_ll(PyObject *tup, Py_ssize_t i)
{
    return PyLong_AsLongLong(PyTuple_GET_ITEM(tup, i));
}

/* list[i] += delta for a list of ints (counter slot views) */
static int
list_add_ll(PyObject *list, Py_ssize_t i, long long delta)
{
    long long v = PyLong_AsLongLong(PyList_GET_ITEM(list, i));
    PyObject *obj;
    if (v == -1 && PyErr_Occurred())
        return -1;
    obj = PyLong_FromLongLong(v + delta);
    if (obj == NULL)
        return -1;
    return PyList_SetItem(list, i, obj); /* steals */
}

/* obj.__dict__[key] += delta for plain int attributes */
static int
dict_add_ll(PyObject *dict, PyObject *key, long long delta)
{
    PyObject *cur = PyDict_GetItemWithError(dict, key);
    long long v;
    PyObject *obj;
    if (cur == NULL) {
        if (!PyErr_Occurred())
            PyErr_SetObject(PyExc_AttributeError, key);
        return -1;
    }
    v = PyLong_AsLongLong(cur);
    if (v == -1 && PyErr_Occurred())
        return -1;
    obj = PyLong_FromLongLong(v + delta);
    if (obj == NULL)
        return -1;
    if (PyDict_SetItem(dict, key, obj) < 0) {
        Py_DECREF(obj);
        return -1;
    }
    Py_DECREF(obj);
    return 0;
}

static long long
dict_get_ll(PyObject *dict, PyObject *key, int *err)
{
    PyObject *cur = PyDict_GetItemWithError(dict, key);
    long long v;
    if (cur == NULL) {
        if (!PyErr_Occurred())
            PyErr_SetObject(PyExc_AttributeError, key);
        *err = 1;
        return 0;
    }
    v = PyLong_AsLongLong(cur);
    if (v == -1 && PyErr_Occurred()) {
        *err = 1;
        return 0;
    }
    return v;
}

/* slot-stored NetworkStats int += delta */
static int
stat_add_ll(PyObject *stats, Py_ssize_t off, long long delta)
{
    long long v = PyLong_AsLongLong(SLOT_GET(stats, off));
    PyObject *obj;
    if (v == -1 && PyErr_Occurred())
        return -1;
    obj = PyLong_FromLongLong(v + delta);
    if (obj == NULL)
        return -1;
    slot_set(stats, off, obj);
    return 0;
}

/* ------------------------------------------------------------------ */
/* Heap of (time, seq, callback, arg, event) tuples on a PyList.      */
/* Pop order matches heapq because (time, seq) keys are unique.       */
/* ------------------------------------------------------------------ */

static inline int
entry_lt(PyObject *a, PyObject *b)
{
    long long ta = tuple_ll(a, 0), tb = tuple_ll(b, 0);
    if (ta != tb)
        return ta < tb;
    return tuple_ll(a, 1) < tuple_ll(b, 1);
}

/* Push ``entry`` (new strong reference is taken). */
static int
heap_push(PyObject *queue, PyObject *entry)
{
    Py_ssize_t pos, parent;
    PyObject **items;
    if (PyList_Append(queue, entry) < 0)
        return -1;
    items = ((PyListObject *)queue)->ob_item;
    pos = PyList_GET_SIZE(queue) - 1;
    while (pos > 0) {
        parent = (pos - 1) >> 1;
        if (entry_lt(items[pos], items[parent])) {
            PyObject *tmp = items[pos];
            items[pos] = items[parent];
            items[parent] = tmp;
            pos = parent;
        }
        else
            break;
    }
    return 0;
}

/* Pop the smallest entry; returns a new reference or NULL if empty. */
static PyObject *
heap_pop(PyObject *queue)
{
    Py_ssize_t n = PyList_GET_SIZE(queue);
    PyObject **items = ((PyListObject *)queue)->ob_item;
    PyObject *smallest, *last;
    Py_ssize_t pos, child;
    if (n == 0)
        return NULL;
    smallest = items[0];
    Py_INCREF(smallest);
    last = items[n - 1];
    Py_INCREF(last);
    if (PyList_SetSlice(queue, n - 1, n, NULL) < 0) {
        Py_DECREF(smallest);
        Py_DECREF(last);
        return NULL;
    }
    n -= 1;
    if (n == 0) {
        Py_DECREF(last);
        return smallest;
    }
    items = ((PyListObject *)queue)->ob_item;
    /* sift ``last`` down from the root */
    Py_DECREF(items[0]);
    items[0] = last;
    pos = 0;
    for (;;) {
        child = 2 * pos + 1;
        if (child >= n)
            break;
        if (child + 1 < n && entry_lt(items[child + 1], items[child]))
            child += 1;
        if (entry_lt(items[child], items[pos])) {
            PyObject *tmp = items[pos];
            items[pos] = items[child];
            items[child] = tmp;
            pos = child;
        }
        else
            break;
    }
    return smallest;
}

/* ------------------------------------------------------------------ */
/* Core: the batched-ring event kernel state                          */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    long long now, seq, front_seq, live, executed;
    unsigned long long ring_mask;
    int running;
    PyObject *queue;        /* list of heap tuples */
    PyObject *ring;         /* list of RING lists (Python-visible) */
    PyObject *slots[RING];  /* borrowed from ring for fast access */
    PyObject *sim;          /* owning NativeSimulator (GC-managed cycle) */
} CoreObject;

static PyTypeObject Core_Type;

static PyObject *
Core_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    CoreObject *self = (CoreObject *)type->tp_alloc(type, 0);
    int i;
    if (self == NULL)
        return NULL;
    self->now = 0;
    self->seq = 0;
    self->front_seq = -1;
    self->live = 0;
    self->executed = 0;
    self->ring_mask = 0;
    self->running = 0;
    self->sim = NULL;
    self->queue = PyList_New(0);
    self->ring = PyList_New(RING);
    if (self->queue == NULL || self->ring == NULL) {
        Py_DECREF(self);
        return NULL;
    }
    for (i = 0; i < RING; i++) {
        PyObject *slot = PyList_New(0);
        if (slot == NULL) {
            Py_DECREF(self);
            return NULL;
        }
        PyList_SET_ITEM(self->ring, i, slot); /* steals */
        self->slots[i] = slot;                /* borrowed */
    }
    return (PyObject *)self;
}

static int
Core_traverse(CoreObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->queue);
    Py_VISIT(self->ring);
    Py_VISIT(self->sim);
    return 0;
}

static int
Core_clear(CoreObject *self)
{
    Py_CLEAR(self->queue);
    Py_CLEAR(self->ring);
    Py_CLEAR(self->sim);
    return 0;
}

static void
Core_dealloc(CoreObject *self)
{
    PyObject_GC_UnTrack(self);
    Core_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
Core_bind(CoreObject *self, PyObject *sim)
{
    Py_INCREF(sim);
    Py_XSETREF(self->sim, sim);
    Py_RETURN_NONE;
}

/* -- scheduling ----------------------------------------------------- */

static PyObject *
sched_error(long long time, long long now)
{
    PyErr_Format(g_sim_error,
                 "cannot schedule event at %lld, now is %lld", time, now);
    return NULL;
}

/* Append a no-handle entry to the ring (caller guarantees mid-run and
 * time - now < RING).  Mirrors the inlined BatchSimulator.post body. */
static int
core_ring_post(CoreObject *core, long long time, PyObject *cb, PyObject *arg)
{
    long long seq = core->seq;
    int slot = (int)(time & RING_MASK);
    PyObject *entry, *seq_obj;
    core->seq = seq + 1;
    seq_obj = PyLong_FromLongLong(seq);
    if (seq_obj == NULL)
        return -1;
    entry = PyTuple_New(4);
    if (entry == NULL) {
        Py_DECREF(seq_obj);
        return -1;
    }
    PyTuple_SET_ITEM(entry, 0, seq_obj);
    Py_INCREF(cb);
    PyTuple_SET_ITEM(entry, 1, cb);
    Py_INCREF(arg);
    PyTuple_SET_ITEM(entry, 2, arg);
    Py_INCREF(Py_None);
    PyTuple_SET_ITEM(entry, 3, Py_None);
    if (PyList_Append(core->slots[slot], entry) < 0) {
        Py_DECREF(entry);
        return -1;
    }
    Py_DECREF(entry);
    core->ring_mask |= 1ULL << slot;
    core->live += 1;
    return 0;
}

/* The full BatchSimulator.post: ring when mid-run and near, else heap. */
static int
core_post_impl(CoreObject *core, long long time, PyObject *time_obj,
               PyObject *cb, PyObject *arg)
{
    long long seq;
    PyObject *entry, *seq_obj, *t_obj = time_obj;
    if (time < core->now) {
        sched_error(time, core->now);
        return -1;
    }
    if (core->running && time - core->now < RING)
        return core_ring_post(core, time, cb, arg);
    seq = core->seq;
    core->seq = seq + 1;
    seq_obj = PyLong_FromLongLong(seq);
    if (seq_obj == NULL)
        return -1;
    if (t_obj == NULL) {
        t_obj = PyLong_FromLongLong(time);
        if (t_obj == NULL) {
            Py_DECREF(seq_obj);
            return -1;
        }
    }
    else
        Py_INCREF(t_obj);
    entry = PyTuple_New(5);
    if (entry == NULL) {
        Py_DECREF(seq_obj);
        Py_DECREF(t_obj);
        return -1;
    }
    PyTuple_SET_ITEM(entry, 0, t_obj);
    PyTuple_SET_ITEM(entry, 1, seq_obj);
    Py_INCREF(cb);
    PyTuple_SET_ITEM(entry, 2, cb);
    Py_INCREF(arg);
    PyTuple_SET_ITEM(entry, 3, arg);
    Py_INCREF(Py_None);
    PyTuple_SET_ITEM(entry, 4, Py_None);
    if (heap_push(core->queue, entry) < 0) {
        Py_DECREF(entry);
        return -1;
    }
    Py_DECREF(entry);
    core->live += 1;
    return 0;
}

static int
parse_time_cb_arg(PyObject *const *args, Py_ssize_t nargs, PyObject *kwnames,
                  PyObject **time_obj, PyObject **cb, PyObject **arg)
{
    Py_ssize_t nkw = kwnames ? PyTuple_GET_SIZE(kwnames) : 0;
    *arg = g_no_arg;
    if (nargs < 2 || nargs > 3 || nkw > 1) {
        PyErr_SetString(PyExc_TypeError,
                        "expected (time, callback, arg=...)");
        return -1;
    }
    *time_obj = args[0];
    *cb = args[1];
    if (nargs == 3)
        *arg = args[2];
    if (nkw == 1) {
        PyObject *name = PyTuple_GET_ITEM(kwnames, 0);
        if (PyUnicode_CompareWithASCIIString(name, "arg") != 0) {
            PyErr_SetString(PyExc_TypeError, "unexpected keyword");
            return -1;
        }
        if (nargs == 3) {
            PyErr_SetString(PyExc_TypeError, "duplicate arg");
            return -1;
        }
        *arg = args[nargs];
    }
    return 0;
}

static PyObject *
Core_post(CoreObject *self, PyObject *const *args, Py_ssize_t nargs,
          PyObject *kwnames)
{
    PyObject *time_obj, *cb, *arg;
    long long time;
    if (parse_time_cb_arg(args, nargs, kwnames, &time_obj, &cb, &arg) < 0)
        return NULL;
    time = PyLong_AsLongLong(time_obj);
    if (time == -1 && PyErr_Occurred())
        return NULL;
    if (core_post_impl(self, time, time_obj, cb, arg) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
Core_post_after(CoreObject *self, PyObject *const *args, Py_ssize_t nargs,
                PyObject *kwnames)
{
    PyObject *time_obj, *cb, *arg;
    long long delay;
    if (parse_time_cb_arg(args, nargs, kwnames, &time_obj, &cb, &arg) < 0)
        return NULL;
    delay = PyLong_AsLongLong(time_obj);
    if (delay == -1 && PyErr_Occurred())
        return NULL;
    if (delay < 0)
        return PyErr_Format(g_sim_error, "negative delay %lld", delay);
    if (core_post_impl(self, self->now + delay, NULL, cb, arg) < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* call_at: like post but allocates an Event cancel handle. */
static PyObject *
core_call_at_impl(CoreObject *core, long long time, PyObject *cb,
                  PyObject *arg)
{
    long long seq;
    PyObject *event, *entry, *seq_obj, *t_obj;
    int in_ring;
    if (time < core->now)
        return sched_error(time, core->now);
    seq = core->seq;
    core->seq = seq + 1;
    seq_obj = PyLong_FromLongLong(seq);
    t_obj = PyLong_FromLongLong(time);
    if (seq_obj == NULL || t_obj == NULL) {
        Py_XDECREF(seq_obj);
        Py_XDECREF(t_obj);
        return NULL;
    }
    event = PyObject_CallFunctionObjArgs(g_event_type, t_obj, seq_obj, cb,
                                         arg, core->sim, NULL);
    if (event == NULL) {
        Py_DECREF(seq_obj);
        Py_DECREF(t_obj);
        return NULL;
    }
    in_ring = core->running && time - core->now < RING;
    entry = PyTuple_New(in_ring ? 4 : 5);
    if (entry == NULL) {
        Py_DECREF(seq_obj);
        Py_DECREF(t_obj);
        Py_DECREF(event);
        return NULL;
    }
    if (in_ring) {
        PyTuple_SET_ITEM(entry, 0, seq_obj);
        Py_INCREF(cb);
        PyTuple_SET_ITEM(entry, 1, cb);
        Py_INCREF(arg);
        PyTuple_SET_ITEM(entry, 2, arg);
        Py_INCREF(event);
        PyTuple_SET_ITEM(entry, 3, event);
        Py_DECREF(t_obj);
        if (PyList_Append(core->slots[time & RING_MASK], entry) < 0)
            goto fail;
        core->ring_mask |= 1ULL << (time & RING_MASK);
    }
    else {
        PyTuple_SET_ITEM(entry, 0, t_obj);
        PyTuple_SET_ITEM(entry, 1, seq_obj);
        Py_INCREF(cb);
        PyTuple_SET_ITEM(entry, 2, cb);
        Py_INCREF(arg);
        PyTuple_SET_ITEM(entry, 3, arg);
        Py_INCREF(event);
        PyTuple_SET_ITEM(entry, 4, event);
        if (heap_push(core->queue, entry) < 0)
            goto fail;
    }
    Py_DECREF(entry);
    core->live += 1;
    return event;
fail:
    Py_DECREF(entry);
    Py_DECREF(event);
    return NULL;
}

static PyObject *
Core_call_at(CoreObject *self, PyObject *const *args, Py_ssize_t nargs,
             PyObject *kwnames)
{
    PyObject *time_obj, *cb, *arg;
    long long time;
    if (parse_time_cb_arg(args, nargs, kwnames, &time_obj, &cb, &arg) < 0)
        return NULL;
    time = PyLong_AsLongLong(time_obj);
    if (time == -1 && PyErr_Occurred()) {
        /* Match ``int(time)`` in the Python kernel for e.g. floats. */
        PyErr_Clear();
        time_obj = PyNumber_Long(time_obj);
        if (time_obj == NULL)
            return NULL;
        time = PyLong_AsLongLong(time_obj);
        Py_DECREF(time_obj);
        if (time == -1 && PyErr_Occurred())
            return NULL;
    }
    return core_call_at_impl(self, time, cb, arg);
}

static PyObject *
Core_call_after(CoreObject *self, PyObject *const *args, Py_ssize_t nargs,
                PyObject *kwnames)
{
    PyObject *time_obj, *cb, *arg;
    long long delay;
    if (parse_time_cb_arg(args, nargs, kwnames, &time_obj, &cb, &arg) < 0)
        return NULL;
    delay = PyLong_AsLongLong(time_obj);
    if (delay == -1 && PyErr_Occurred())
        return NULL;
    if (delay < 0)
        return PyErr_Format(g_sim_error, "negative delay %lld", delay);
    return core_call_at_impl(self, self->now + delay, cb, arg);
}

static PyObject *
Core_post_front(CoreObject *self, PyObject *const *args, Py_ssize_t nargs,
                PyObject *kwnames)
{
    PyObject *time_obj, *cb, *arg, *entry, *seq_obj, *t_obj;
    long long time, seq;
    if (parse_time_cb_arg(args, nargs, kwnames, &time_obj, &cb, &arg) < 0)
        return NULL;
    time = PyLong_AsLongLong(time_obj);
    if (time == -1 && PyErr_Occurred())
        return NULL;
    if (time < self->now || (time == self->now && self->running)) {
        PyErr_Format(g_sim_error,
                     "cannot front-schedule event at %lld, now is %lld",
                     time, self->now);
        return NULL;
    }
    seq = self->front_seq;
    self->front_seq = seq - 1;
    seq_obj = PyLong_FromLongLong(seq);
    t_obj = PyLong_FromLongLong(time);
    if (seq_obj == NULL || t_obj == NULL) {
        Py_XDECREF(seq_obj);
        Py_XDECREF(t_obj);
        return NULL;
    }
    entry = PyTuple_New(5);
    if (entry == NULL) {
        Py_DECREF(seq_obj);
        Py_DECREF(t_obj);
        return NULL;
    }
    PyTuple_SET_ITEM(entry, 0, t_obj);
    PyTuple_SET_ITEM(entry, 1, seq_obj);
    Py_INCREF(cb);
    PyTuple_SET_ITEM(entry, 2, cb);
    Py_INCREF(arg);
    PyTuple_SET_ITEM(entry, 3, arg);
    Py_INCREF(Py_None);
    PyTuple_SET_ITEM(entry, 4, Py_None);
    if (heap_push(self->queue, entry) < 0) {
        Py_DECREF(entry);
        return NULL;
    }
    Py_DECREF(entry);
    self->live += 1;
    Py_RETURN_NONE;
}

/* -- execution ------------------------------------------------------ */

static inline int
event_cancelled(PyObject *ev)
{
    return SLOT_GET(ev, g_ev.cancelled) == Py_True;
}

/* Spill ring entries back into the heap with their original seqs. */
static int
core_flush_ring(CoreObject *core)
{
    unsigned long long mask = core->ring_mask;
    long long now = core->now;
    while (mask) {
        int slot_idx = __builtin_ctzll(mask);
        long long time;
        PyObject *slot, *t_obj;
        Py_ssize_t i, n;
        mask &= mask - 1;
        time = now + (((long long)slot_idx - now) & RING_MASK);
        t_obj = PyLong_FromLongLong(time);
        if (t_obj == NULL)
            return -1;
        slot = core->slots[slot_idx];
        n = PyList_GET_SIZE(slot);
        for (i = 0; i < n; i++) {
            PyObject *e = PyList_GET_ITEM(slot, i);
            PyObject *entry = PyTuple_New(5);
            if (entry == NULL) {
                Py_DECREF(t_obj);
                return -1;
            }
            Py_INCREF(t_obj);
            PyTuple_SET_ITEM(entry, 0, t_obj);
            Py_INCREF(PyTuple_GET_ITEM(e, 0));
            PyTuple_SET_ITEM(entry, 1, PyTuple_GET_ITEM(e, 0));
            Py_INCREF(PyTuple_GET_ITEM(e, 1));
            PyTuple_SET_ITEM(entry, 2, PyTuple_GET_ITEM(e, 1));
            Py_INCREF(PyTuple_GET_ITEM(e, 2));
            PyTuple_SET_ITEM(entry, 3, PyTuple_GET_ITEM(e, 2));
            Py_INCREF(PyTuple_GET_ITEM(e, 3));
            PyTuple_SET_ITEM(entry, 4, PyTuple_GET_ITEM(e, 3));
            if (heap_push(core->queue, entry) < 0) {
                Py_DECREF(entry);
                Py_DECREF(t_obj);
                return -1;
            }
            Py_DECREF(entry);
        }
        Py_DECREF(t_obj);
        if (PyList_SetSlice(slot, 0, n, NULL) < 0)
            return -1;
    }
    core->ring_mask = 0;
    return 0;
}

/* Earliest live ring time strictly after now; pops cancelled heads.
 * Returns 1 with *out set, 0 when no live ring entry, -1 on error. */
static int
core_next_ring_time(CoreObject *core, long long *out)
{
    for (;;) {
        unsigned long long mask = core->ring_mask, rot;
        int start, dist, slot_idx;
        PyObject *slot;
        if (!mask)
            return 0;
        start = (int)((core->now + 1) & RING_MASK);
        rot = start ? ((mask >> start) | (mask << (RING - start))) : mask;
        dist = __builtin_ctzll(rot);
        slot_idx = (start + dist) & RING_MASK;
        slot = core->slots[slot_idx];
        while (PyList_GET_SIZE(slot)) {
            PyObject *head_ev =
                PyTuple_GET_ITEM(PyList_GET_ITEM(slot, 0), 3);
            if (head_ev != Py_None && event_cancelled(head_ev)) {
                if (PySequence_DelItem(slot, 0) < 0)
                    return -1;
                continue;
            }
            *out = core->now + 1 + dist;
            return 1;
        }
        core->ring_mask &= ~(1ULL << slot_idx);
    }
}

/* Invoke one entry's callback.  Returns 0 / -1. */
static inline int
invoke(PyObject *cb, PyObject *arg)
{
    PyObject *res = (arg == g_no_arg) ? PyObject_CallNoArgs(cb)
                                      : PyObject_CallOneArg(cb, arg);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;
}

/* The run loop shared by run() and run_until().
 *
 * until_mode=1 replicates BatchSimulator.run_until (strict limit,
 * break at >= limit); until_mode=0 replicates run() (has_limit
 * optional, events AT the limit still execute, now clamps to limit).
 * Counter settle points, exception tail restoration, and the
 * finally-flush mirror the Python code exactly.
 */
static int
core_run_loop(CoreObject *core, int until_mode, int has_limit,
              long long limit)
{
    PyObject *queue = core->queue;
    core->running = 1;
    for (;;) {
        PyObject *slot = core->slots[core->now & RING_MASK];
        PyObject *cb, *arg, *ev, *entry;
        if (PyList_GET_SIZE(slot)) {
            Py_ssize_t qn = PyList_GET_SIZE(queue);
            if (qn && tuple_ll(PyList_GET_ITEM(queue, 0), 0) == core->now) {
                /* Rare: pre-run or front events share this cycle. */
                if (tuple_ll(PyList_GET_ITEM(queue, 0), 1) <
                    tuple_ll(PyList_GET_ITEM(slot, 0), 0)) {
                    entry = heap_pop(queue);
                    if (entry == NULL)
                        goto error;
                    cb = PyTuple_GET_ITEM(entry, 2);
                    arg = PyTuple_GET_ITEM(entry, 3);
                    ev = PyTuple_GET_ITEM(entry, 4);
                }
                else {
                    entry = PyList_GET_ITEM(slot, 0);
                    Py_INCREF(entry);
                    if (PySequence_DelItem(slot, 0) < 0) {
                        Py_DECREF(entry);
                        goto error;
                    }
                    if (!PyList_GET_SIZE(slot))
                        core->ring_mask &=
                            ~(1ULL << (core->now & RING_MASK));
                    cb = PyTuple_GET_ITEM(entry, 1);
                    arg = PyTuple_GET_ITEM(entry, 2);
                    ev = PyTuple_GET_ITEM(entry, 3);
                }
                if (ev != Py_None) {
                    if (event_cancelled(ev)) {
                        Py_DECREF(entry);
                        continue;
                    }
                    slot_set_incref(ev, g_ev.done, Py_True);
                }
                core->executed += 1;
                core->live -= 1;
                if (invoke(cb, arg) < 0) {
                    Py_DECREF(entry);
                    goto error;
                }
                Py_DECREF(entry);
                continue;
            }
            /* Batch drain: the heap provably holds nothing at now. */
            {
                long long ran = 0;
                while (PyList_GET_SIZE(slot)) {
                    Py_ssize_t n = PyList_GET_SIZE(slot), i;
                    PyObject *snap = PyList_GetSlice(slot, 0, n);
                    if (snap == NULL)
                        goto error;
                    if (PyList_SetSlice(slot, 0, n, NULL) < 0) {
                        Py_DECREF(snap);
                        goto error;
                    }
                    for (i = 0; i < n; i++) {
                        PyObject *e = PyList_GET_ITEM(snap, i);
                        ev = PyTuple_GET_ITEM(e, 3);
                        if (ev != Py_None) {
                            if (event_cancelled(ev))
                                continue;
                            slot_set_incref(ev, g_ev.done, Py_True);
                        }
                        ran += 1;
                        if (invoke(PyTuple_GET_ITEM(e, 1),
                                   PyTuple_GET_ITEM(e, 2)) < 0) {
                            /* Restore the undispatched tail, matching
                             * slot.extendleft(reversed(list(it))). */
                            PyObject *tail =
                                PyList_GetSlice(snap, i + 1, n);
                            if (tail != NULL) {
                                PyObject *exc, *val, *tb;
                                PyErr_Fetch(&exc, &val, &tb);
                                PyList_SetSlice(slot, 0, 0, tail);
                                Py_DECREF(tail);
                                PyErr_Restore(exc, val, tb);
                            }
                            Py_DECREF(snap);
                            goto error;
                        }
                    }
                    Py_DECREF(snap);
                }
                core->executed += ran;
                core->live -= ran;
                core->ring_mask &= ~(1ULL << (core->now & RING_MASK));
                continue;
            }
        }
        else {
            long long t_ring = 0;
            int has_ring = core_next_ring_time(core, &t_ring);
            Py_ssize_t qn;
            if (has_ring < 0)
                goto error;
            qn = PyList_GET_SIZE(queue);
            if (qn && (!has_ring ||
                       tuple_ll(PyList_GET_ITEM(queue, 0), 0) <= t_ring)) {
                long long head_t =
                    tuple_ll(PyList_GET_ITEM(queue, 0), 0);
                if (until_mode) {
                    if (head_t >= limit)
                        break;
                }
                else if (has_limit && head_t > limit) {
                    core->now = limit;
                    break;
                }
                entry = heap_pop(queue);
                if (entry == NULL)
                    goto error;
                cb = PyTuple_GET_ITEM(entry, 2);
                arg = PyTuple_GET_ITEM(entry, 3);
                ev = PyTuple_GET_ITEM(entry, 4);
                if (ev != Py_None) {
                    if (event_cancelled(ev)) {
                        Py_DECREF(entry);
                        continue;
                    }
                    slot_set_incref(ev, g_ev.done, Py_True);
                }
                core->now = head_t;
                core->executed += 1;
                core->live -= 1;
                if (invoke(cb, arg) < 0) {
                    Py_DECREF(entry);
                    goto error;
                }
                Py_DECREF(entry);
                continue;
            }
            else if (has_ring) {
                if (until_mode) {
                    if (t_ring >= limit)
                        break;
                }
                else if (has_limit && t_ring > limit) {
                    core->now = limit;
                    break;
                }
                core->now = t_ring;
                continue;
            }
            else
                break;
        }
    }
    core->running = 0;
    if (core->ring_mask && core_flush_ring(core) < 0)
        return -1;
    return 0;
error:
    core->running = 0;
    if (core->ring_mask) {
        PyObject *exc, *val, *tb;
        PyErr_Fetch(&exc, &val, &tb);
        if (core_flush_ring(core) < 0)
            PyErr_Clear();
        PyErr_Restore(exc, val, tb);
    }
    return -1;
}

static PyObject *
Core_run(CoreObject *self, PyObject *const *args, Py_ssize_t nargs,
         PyObject *kwnames)
{
    PyObject *until = Py_None;
    int has_limit = 0;
    long long limit = 0;
    if (nargs > 1 || (kwnames && PyTuple_GET_SIZE(kwnames) > 1)) {
        PyErr_SetString(PyExc_TypeError, "run() takes at most 1 argument");
        return NULL;
    }
    if (nargs == 1)
        until = args[0];
    if (kwnames && PyTuple_GET_SIZE(kwnames) == 1) {
        if (nargs == 1 ||
            PyUnicode_CompareWithASCIIString(
                PyTuple_GET_ITEM(kwnames, 0), "until") != 0) {
            PyErr_SetString(PyExc_TypeError, "unexpected keyword");
            return NULL;
        }
        until = args[0];
    }
    if (until == Py_None && self->sim != NULL) {
        PyObject *mc = PyObject_GetAttr(self->sim, s_max_cycles);
        if (mc == NULL)
            return NULL;
        if (mc != Py_None) {
            limit = PyLong_AsLongLong(mc);
            if (limit == -1 && PyErr_Occurred()) {
                Py_DECREF(mc);
                return NULL;
            }
            has_limit = 1;
        }
        Py_DECREF(mc);
    }
    else if (until != Py_None) {
        limit = PyLong_AsLongLong(until);
        if (limit == -1 && PyErr_Occurred())
            return NULL;
        has_limit = 1;
    }
    if (core_run_loop(self, 0, has_limit, limit) < 0)
        return NULL;
    return PyLong_FromLongLong(self->now);
}

static PyObject *
Core_run_until(CoreObject *self, PyObject *limit_obj)
{
    long long limit = PyLong_AsLongLong(limit_obj);
    Py_ssize_t qn;
    if (limit == -1 && PyErr_Occurred())
        return NULL;
    if (limit < self->now) {
        PyErr_Format(g_sim_error,
                     "cannot run window to %lld, now is %lld",
                     limit, self->now);
        return NULL;
    }
    qn = PyList_GET_SIZE(self->queue);
    if (!qn ||
        tuple_ll(PyList_GET_ITEM(self->queue, 0), 0) >= limit) {
        self->now = limit;
        return PyLong_FromLongLong(limit);
    }
    if (core_run_loop(self, 1, 1, limit) < 0)
        return NULL;
    self->now = limit;
    return PyLong_FromLongLong(limit);
}

static PyObject *
Core_flush_ring_py(CoreObject *self, PyObject *noarg)
{
    if (core_flush_ring(self) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
Core_next_ring_time_py(CoreObject *self, PyObject *noarg)
{
    long long t;
    int r = core_next_ring_time(self, &t);
    if (r < 0)
        return NULL;
    if (r == 0)
        Py_RETURN_NONE;
    return PyLong_FromLongLong(t);
}

static PyMethodDef Core_methods[] = {
    {"bind", (PyCFunction)Core_bind, METH_O, NULL},
    {"post", (PyCFunction)(void (*)(void))Core_post,
     METH_FASTCALL | METH_KEYWORDS, NULL},
    {"post_after", (PyCFunction)(void (*)(void))Core_post_after,
     METH_FASTCALL | METH_KEYWORDS, NULL},
    {"call_at", (PyCFunction)(void (*)(void))Core_call_at,
     METH_FASTCALL | METH_KEYWORDS, NULL},
    {"call_after", (PyCFunction)(void (*)(void))Core_call_after,
     METH_FASTCALL | METH_KEYWORDS, NULL},
    {"post_front", (PyCFunction)(void (*)(void))Core_post_front,
     METH_FASTCALL | METH_KEYWORDS, NULL},
    {"run", (PyCFunction)(void (*)(void))Core_run,
     METH_FASTCALL | METH_KEYWORDS, NULL},
    {"run_until", (PyCFunction)Core_run_until, METH_O, NULL},
    {"flush_ring", (PyCFunction)Core_flush_ring_py, METH_NOARGS, NULL},
    {"next_ring_time", (PyCFunction)Core_next_ring_time_py, METH_NOARGS,
     NULL},
    {NULL, NULL, 0, NULL},
};

/* Scalar getsets (all settable so the Python wrappers stay drop-in). */
#define CORE_LL_GETSET(field)                                            \
    static PyObject *Core_get_##field(CoreObject *s, void *c)            \
    {                                                                    \
        return PyLong_FromLongLong(s->field);                            \
    }                                                                    \
    static int Core_set_##field(CoreObject *s, PyObject *v, void *c)     \
    {                                                                    \
        long long x = PyLong_AsLongLong(v);                              \
        if (x == -1 && PyErr_Occurred())                                 \
            return -1;                                                   \
        s->field = x;                                                    \
        return 0;                                                        \
    }

CORE_LL_GETSET(now)
CORE_LL_GETSET(seq)
CORE_LL_GETSET(front_seq)
CORE_LL_GETSET(live)
CORE_LL_GETSET(executed)

static PyObject *
Core_get_ring_mask(CoreObject *s, void *c)
{
    return PyLong_FromUnsignedLongLong(s->ring_mask);
}

static int
Core_set_ring_mask(CoreObject *s, PyObject *v, void *c)
{
    unsigned long long x = PyLong_AsUnsignedLongLong(v);
    if (x == (unsigned long long)-1 && PyErr_Occurred())
        return -1;
    s->ring_mask = x;
    return 0;
}

static PyObject *
Core_get_running(CoreObject *s, void *c)
{
    return PyBool_FromLong(s->running);
}

static int
Core_set_running(CoreObject *s, PyObject *v, void *c)
{
    int x = PyObject_IsTrue(v);
    if (x < 0)
        return -1;
    s->running = x;
    return 0;
}

static PyObject *
Core_get_queue(CoreObject *s, void *c)
{
    Py_INCREF(s->queue);
    return s->queue;
}

static PyObject *
Core_get_ring(CoreObject *s, void *c)
{
    Py_INCREF(s->ring);
    return s->ring;
}

static PyGetSetDef Core_getsets[] = {
    {"now", (getter)Core_get_now, (setter)Core_set_now, NULL, NULL},
    {"seq", (getter)Core_get_seq, (setter)Core_set_seq, NULL, NULL},
    {"front_seq", (getter)Core_get_front_seq, (setter)Core_set_front_seq,
     NULL, NULL},
    {"live", (getter)Core_get_live, (setter)Core_set_live, NULL, NULL},
    {"executed", (getter)Core_get_executed, (setter)Core_set_executed, NULL,
     NULL},
    {"ring_mask", (getter)Core_get_ring_mask, (setter)Core_set_ring_mask,
     NULL, NULL},
    {"running", (getter)Core_get_running, (setter)Core_set_running, NULL,
     NULL},
    {"queue", (getter)Core_get_queue, NULL, NULL, NULL},
    {"ring", (getter)Core_get_ring, NULL, NULL, NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyTypeObject Core_Type = {
    PyVarObject_HEAD_INIT(NULL, 0).tp_name = "repro._native.Core",
    .tp_basicsize = sizeof(CoreObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_new = Core_new,
    .tp_dealloc = (destructor)Core_dealloc,
    .tp_traverse = (traverseproc)Core_traverse,
    .tp_clear = (inquiry)Core_clear,
    .tp_methods = Core_methods,
    .tp_getset = Core_getsets,
};

/* ------------------------------------------------------------------ */
/* StepKernel: the fused SoA cache-hit issue path, compiled.          */
/* Mirrors repro.backend.fastpath.SoaProcessor._step exactly.         */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    vectorcallfunc vectorcall;
    CoreObject *core;       /* strong */
    PyObject *proc;         /* strong */
    PyObject *proc_dict;    /* strong ref to proc.__dict__ */
    PyObject *tags;         /* list[int] */
    PyObject *states;       /* bytearray */
    PyObject *written;      /* bytearray */
    PyObject *slab;         /* array('q'); buffer held below */
    Py_buffer slab_buf;
    int slab_held;
    long long wpb, shift, imask, block_mask, low_mask, latency;
    PyObject *cache_slots;  /* live counter slot list */
    Py_ssize_t hit_load, hit_store, hit_rmw;
    PyObject *proc_slots;   /* live counter slot list */
    Py_ssize_t think_slot;
    PyObject *issue, *park, *retire, *execute_op;  /* bound methods */
} StepKernelObject;

static PyTypeObject StepKernel_Type;

static PyObject *step_kernel_vectorcall(PyObject *, PyObject *const *,
                                        size_t, PyObject *);

static PyObject *
spec_get(PyObject *spec, const char *key)
{
    PyObject *v = PyDict_GetItemString(spec, key);
    if (v == NULL)
        PyErr_Format(PyExc_KeyError, "spec missing %s", key);
    return v;  /* borrowed */
}

static int
spec_get_ll(PyObject *spec, const char *key, long long *out)
{
    PyObject *v = spec_get(spec, key);
    if (v == NULL)
        return -1;
    *out = PyLong_AsLongLong(v);
    if (*out == -1 && PyErr_Occurred())
        return -1;
    return 0;
}

#define SPEC_REF(field, key)                                             \
    do {                                                                 \
        PyObject *v_ = spec_get(spec, key);                              \
        if (v_ == NULL)                                                  \
            return -1;                                                   \
        Py_INCREF(v_);                                                   \
        self->field = v_;                                                \
    } while (0)

static int
StepKernel_init(StepKernelObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *spec, *core;
    long long tmp;
    if (!g_ready) {
        PyErr_SetString(PyExc_RuntimeError, "_native.setup() not called");
        return -1;
    }
    if (!PyArg_ParseTuple(args, "O!:StepKernel", &PyDict_Type, &spec))
        return -1;
    core = spec_get(spec, "core");
    if (core == NULL || !PyObject_TypeCheck(core, &Core_Type)) {
        if (core != NULL)
            PyErr_SetString(PyExc_TypeError, "spec['core'] must be a Core");
        return -1;
    }
    Py_INCREF(core);
    Py_XSETREF(self->core, (CoreObject *)core);
    SPEC_REF(proc, "proc");
    Py_XSETREF(self->proc_dict, PyObject_GenericGetDict(self->proc, NULL));
    if (self->proc_dict == NULL)
        return -1;
    SPEC_REF(tags, "tags");
    SPEC_REF(states, "states");
    SPEC_REF(written, "written");
    SPEC_REF(slab, "slab");
    SPEC_REF(cache_slots, "cache_slots");
    SPEC_REF(proc_slots, "proc_slots");
    SPEC_REF(issue, "issue");
    SPEC_REF(park, "park");
    SPEC_REF(retire, "retire");
    SPEC_REF(execute_op, "execute_op");
    if (spec_get_ll(spec, "wpb", &self->wpb) < 0 ||
        spec_get_ll(spec, "shift", &self->shift) < 0 ||
        spec_get_ll(spec, "imask", &self->imask) < 0 ||
        spec_get_ll(spec, "block_mask", &self->block_mask) < 0 ||
        spec_get_ll(spec, "low_mask", &self->low_mask) < 0 ||
        spec_get_ll(spec, "latency", &self->latency) < 0 ||
        spec_get_ll(spec, "hit_load", &tmp) < 0)
        return -1;
    self->hit_load = (Py_ssize_t)tmp;
    if (spec_get_ll(spec, "hit_store", &tmp) < 0)
        return -1;
    self->hit_store = (Py_ssize_t)tmp;
    if (spec_get_ll(spec, "hit_rmw", &tmp) < 0)
        return -1;
    self->hit_rmw = (Py_ssize_t)tmp;
    if (spec_get_ll(spec, "think_slot", &tmp) < 0)
        return -1;
    self->think_slot = (Py_ssize_t)tmp;
    if (self->slab_held) {
        PyBuffer_Release(&self->slab_buf);
        self->slab_held = 0;
    }
    if (PyObject_GetBuffer(self->slab, &self->slab_buf,
                           PyBUF_WRITABLE | PyBUF_FORMAT) < 0)
        return -1;
    self->slab_held = 1;
    if (!PyByteArray_Check(self->states) || !PyByteArray_Check(self->written)
        || !PyList_Check(self->tags)) {
        PyErr_SetString(PyExc_TypeError, "bad SoA column types");
        return -1;
    }
    self->vectorcall = step_kernel_vectorcall;
    return 0;
}

static int
StepKernel_traverse(StepKernelObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->core);
    Py_VISIT(self->proc);
    Py_VISIT(self->proc_dict);
    Py_VISIT(self->tags);
    Py_VISIT(self->states);
    Py_VISIT(self->written);
    Py_VISIT(self->slab);
    Py_VISIT(self->cache_slots);
    Py_VISIT(self->proc_slots);
    Py_VISIT(self->issue);
    Py_VISIT(self->park);
    Py_VISIT(self->retire);
    Py_VISIT(self->execute_op);
    return 0;
}

static int
StepKernel_clear(StepKernelObject *self)
{
    if (self->slab_held) {
        PyBuffer_Release(&self->slab_buf);
        self->slab_held = 0;
    }
    Py_CLEAR(self->core);
    Py_CLEAR(self->proc);
    Py_CLEAR(self->proc_dict);
    Py_CLEAR(self->tags);
    Py_CLEAR(self->states);
    Py_CLEAR(self->written);
    Py_CLEAR(self->slab);
    Py_CLEAR(self->cache_slots);
    Py_CLEAR(self->proc_slots);
    Py_CLEAR(self->issue);
    Py_CLEAR(self->park);
    Py_CLEAR(self->retire);
    Py_CLEAR(self->execute_op);
    return 0;
}

static void
StepKernel_dealloc(StepKernelObject *self)
{
    PyObject_GC_UnTrack(self);
    StepKernel_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* call one of the cached Python fallbacks, dropping the result */
static int
call2_drop(PyObject *fn, PyObject *a, PyObject *b)
{
    PyObject *r = PyObject_CallFunctionObjArgs(fn, a, b, NULL);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

static inline int
kind_is(PyObject *kind, PyObject *interned)
{
    if (kind == interned)
        return 1;
    return PyObject_RichCompareBool(kind, interned, Py_EQ);
}

/* the completion-event ring insert every hit/think shares */
static inline int
sk_ring_post(StepKernelObject *k, long long time, PyObject *ctx)
{
    return core_ring_post(k->core, time, (PyObject *)k, ctx);
}

static PyObject *
step_kernel_vectorcall(PyObject *kself, PyObject *const *args, size_t nargsf,
                       PyObject *kwnames)
{
    StepKernelObject *k = (StepKernelObject *)kself;
    CoreObject *core = k->core;
    PyObject *ctx, *op = NULL, *kind;
    long long now, tfa;
    int err = 0, decref_op = 0;
    if (PyVectorcall_NARGS(nargsf) != 1 ||
        (kwnames && PyTuple_GET_SIZE(kwnames))) {
        PyErr_SetString(PyExc_TypeError, "step kernel takes exactly (ctx)");
        return NULL;
    }
    ctx = args[0];
    if (SLOT_GET(ctx, g_ctx.state) == g_ctx_done)
        Py_RETURN_NONE;
    now = core->now;
    tfa = dict_get_ll(k->proc_dict, s_trap_free_at, &err);
    if (err)
        return NULL;
    if (now < tfa) {
        if (core_post_impl(core, tfa, NULL, kself, ctx) < 0)
            return NULL;
        Py_RETURN_NONE;
    }
    slot_set_incref(ctx, g_ctx.state, g_ctx_running);
    if (SLOT_GET(ctx, g_ctx.pending_op) != Py_None) {
        op = SLOT_GET(ctx, g_ctx.pending_op);
        Py_INCREF(op);
        decref_op = 1;
        slot_set_incref(ctx, g_ctx.pending_op, Py_None);
        slot_set_incref(ctx, g_ctx.pending_needs, Py_None);
    }
    else if (SLOT_GET(ctx, g_ctx.burst_ops) != Py_None) {
        PyObject *burst = SLOT_GET(ctx, g_ctx.burst_ops);
        long long pos = PyLong_AsLongLong(SLOT_GET(ctx, g_ctx.burst_pos));
        slot_set_incref(ctx, g_ctx.resume_value, Py_None);
        if (pos == -1 && PyErr_Occurred())
            return NULL;
        op = PyTuple_GET_ITEM(burst, pos);
        Py_INCREF(op);
        decref_op = 1;
        pos += 1;
        if (pos == PyTuple_GET_SIZE(burst)) {
            slot_set_incref(ctx, g_ctx.burst_ops, Py_None);
            slot_set(ctx, g_ctx.burst_pos, PyLong_FromLong(0));
        }
        else {
            PyObject *pos_obj = PyLong_FromLongLong(pos);
            if (pos_obj == NULL) {
                Py_DECREF(op);
                return NULL;
            }
            slot_set(ctx, g_ctx.burst_pos, pos_obj);
        }
        {
            long long n =
                PyLong_AsLongLong(SLOT_GET(ctx, g_ctx.ops_executed));
            PyObject *n_obj;
            if (n == -1 && PyErr_Occurred()) {
                Py_DECREF(op);
                return NULL;
            }
            n_obj = PyLong_FromLongLong(n + 1);
            if (n_obj == NULL) {
                Py_DECREF(op);
                return NULL;
            }
            slot_set(ctx, g_ctx.ops_executed, n_obj);
        }
    }
    else {
        PyObject *value = SLOT_GET(ctx, g_ctx.resume_value);
        PyObject *res, *gen;
        PySendResult sr;
        Py_INCREF(value);
        slot_set_incref(ctx, g_ctx.resume_value, Py_None);
        gen = SLOT_GET(ctx, g_ctx.gen);
        if (SLOT_GET(ctx, g_ctx.started) != Py_True) {
            slot_set_incref(ctx, g_ctx.started, Py_True);
            sr = PyIter_Send(gen, Py_None, &res);
        }
        else
            sr = PyIter_Send(gen, value, &res);
        Py_DECREF(value);
        if (sr == PYGEN_ERROR)
            return NULL;
        if (sr == PYGEN_RETURN) {
            long long outstanding;
            Py_XDECREF(res);
            outstanding = PyLong_AsLongLong(
                SLOT_GET(ctx, g_ctx.outstanding_stores));
            if (outstanding == -1 && PyErr_Occurred())
                return NULL;
            if (outstanding) {
                PyObject *r = PyObject_CallFunctionObjArgs(
                    k->park, ctx, g_retire_op, g_str_all, NULL);
                if (r == NULL)
                    return NULL;
                Py_DECREF(r);
                Py_RETURN_NONE;
            }
            {
                PyObject *r = PyObject_CallOneArg(k->retire, ctx);
                if (r == NULL)
                    return NULL;
                Py_DECREF(r);
            }
            Py_RETURN_NONE;
        }
        op = res;
        decref_op = 1;
        {
            long long n =
                PyLong_AsLongLong(SLOT_GET(ctx, g_ctx.ops_executed));
            PyObject *n_obj;
            if (n == -1 && PyErr_Occurred())
                goto fail_op;
            n_obj = PyLong_FromLongLong(n + 1);
            if (n_obj == NULL)
                goto fail_op;
            slot_set(ctx, g_ctx.ops_executed, n_obj);
        }
    }
    slot_set_incref(ctx, g_ctx.last_op, op);
    if (!PyTuple_Check(op) || PyTuple_GET_SIZE(op) == 0)
        goto fallback;
    kind = PyTuple_GET_ITEM(op, 0);
    {
        int is = kind_is(kind, g_op_think);
        if (is < 0)
            goto fail_op;
        if (is) {
            long long cycles =
                PyLong_AsLongLong(PyTuple_GET_ITEM(op, 1));
            if (cycles == -1 && PyErr_Occurred())
                goto fail_op;
            if (dict_add_ll(k->proc_dict, s_busy_cycles, cycles) < 0)
                goto fail_op;
            if (list_add_ll(k->proc_slots, k->think_slot, cycles) < 0)
                goto fail_op;
            if (cycles < RING) {
                if (sk_ring_post(k, now + cycles, ctx) < 0)
                    goto fail_op;
            }
            else if (core_post_impl(core, now + cycles, NULL, kself, ctx)
                     < 0)
                goto fail_op;
            Py_DECREF(op);
            Py_RETURN_NONE;
        }
    }
    {
        int is = kind_is(kind, g_op_load);
        if (is < 0)
            goto fail_op;
        if (is) {
            long long addr =
                PyLong_AsLongLong(PyTuple_GET_ITEM(op, 1));
            long long block, index;
            if (addr == -1 && PyErr_Occurred())
                goto fail_op;
            block = addr & k->block_mask;
            index = (block >> k->shift) & k->imask;
            {
                long long tag = PyLong_AsLongLong(
                    PyList_GET_ITEM(k->tags, (Py_ssize_t)index));
                if (tag == -1 && PyErr_Occurred())
                    goto fail_op;
                if (tag == block &&
                    PyByteArray_AS_STRING(k->states)[index]) {
                    long long *slab = (long long *)k->slab_buf.buf;
                    long long word =
                        slab[index * k->wpb + ((addr & k->low_mask) >> 2)];
                    PyObject *word_obj;
                    slot_set_incref(ctx, g_ctx.state, g_ctx_blocked);
                    if (dict_add_ll(k->proc_dict, s_busy_cycles,
                                    k->latency) < 0)
                        goto fail_op;
                    if (list_add_ll(k->cache_slots, k->hit_load, 1) < 0)
                        goto fail_op;
                    word_obj = PyLong_FromLongLong(word);
                    if (word_obj == NULL)
                        goto fail_op;
                    slot_set(ctx, g_ctx.resume_value, word_obj);
                    if (sk_ring_post(k, now + k->latency, ctx) < 0)
                        goto fail_op;
                    Py_DECREF(op);
                    Py_RETURN_NONE;
                }
            }
            {
                PyObject *block_obj = PyLong_FromLongLong(block);
                PyObject *r;
                if (block_obj == NULL)
                    goto fail_op;
                r = PyObject_CallFunctionObjArgs(
                    k->issue, ctx, g_str_load, PyTuple_GET_ITEM(op, 1),
                    Py_None, block_obj, NULL);
                Py_DECREF(block_obj);
                if (r == NULL)
                    goto fail_op;
                Py_DECREF(r);
            }
            Py_DECREF(op);
            Py_RETURN_NONE;
        }
    }
    {
        int is = kind_is(kind, g_op_store);
        if (is < 0)
            goto fail_op;
        if (is) {
            long long addr =
                PyLong_AsLongLong(PyTuple_GET_ITEM(op, 1));
            long long block, index;
            if (addr == -1 && PyErr_Occurred())
                goto fail_op;
            block = addr & k->block_mask;
            index = (block >> k->shift) & k->imask;
            {
                long long tag = PyLong_AsLongLong(
                    PyList_GET_ITEM(k->tags, (Py_ssize_t)index));
                if (tag == -1 && PyErr_Occurred())
                    goto fail_op;
                if (tag == block &&
                    PyByteArray_AS_STRING(k->states)[index] == 2) {
                    long long *slab = (long long *)k->slab_buf.buf;
                    long long value;
                    slot_set_incref(ctx, g_ctx.state, g_ctx_blocked);
                    if (dict_add_ll(k->proc_dict, s_busy_cycles,
                                    k->latency) < 0)
                        goto fail_op;
                    if (list_add_ll(k->cache_slots, k->hit_store, 1) < 0)
                        goto fail_op;
                    value = PyLong_AsLongLong(PyTuple_GET_ITEM(op, 2));
                    if (value == -1 && PyErr_Occurred())
                        goto fail_op;
                    slab[index * k->wpb + ((addr & k->low_mask) >> 2)] =
                        value;
                    PyByteArray_AS_STRING(k->written)[index] = 1;
                    slot_set_incref(ctx, g_ctx.resume_value, Py_None);
                    if (sk_ring_post(k, now + k->latency, ctx) < 0)
                        goto fail_op;
                    Py_DECREF(op);
                    Py_RETURN_NONE;
                }
            }
            {
                PyObject *block_obj = PyLong_FromLongLong(block);
                PyObject *r;
                if (block_obj == NULL)
                    goto fail_op;
                r = PyObject_CallFunctionObjArgs(
                    k->issue, ctx, g_str_store, PyTuple_GET_ITEM(op, 1),
                    PyTuple_GET_ITEM(op, 2), block_obj, NULL);
                Py_DECREF(block_obj);
                if (r == NULL)
                    goto fail_op;
                Py_DECREF(r);
            }
            Py_DECREF(op);
            Py_RETURN_NONE;
        }
    }
    {
        int is = kind_is(kind, g_op_rmw);
        if (is < 0)
            goto fail_op;
        if (is) {
            long long outstanding = PyLong_AsLongLong(
                SLOT_GET(ctx, g_ctx.outstanding_stores));
            long long addr, block, index;
            if (outstanding == -1 && PyErr_Occurred())
                goto fail_op;
            if (outstanding) {
                PyObject *r = PyObject_CallFunctionObjArgs(
                    k->park, ctx, op, g_str_all, NULL);
                if (r == NULL)
                    goto fail_op;
                Py_DECREF(r);
                Py_DECREF(op);
                Py_RETURN_NONE;
            }
            addr = PyLong_AsLongLong(PyTuple_GET_ITEM(op, 1));
            if (addr == -1 && PyErr_Occurred())
                goto fail_op;
            block = addr & k->block_mask;
            index = (block >> k->shift) & k->imask;
            {
                long long tag = PyLong_AsLongLong(
                    PyList_GET_ITEM(k->tags, (Py_ssize_t)index));
                if (tag == -1 && PyErr_Occurred())
                    goto fail_op;
                if (tag == block &&
                    PyByteArray_AS_STRING(k->states)[index] == 2) {
                    long long *slab = (long long *)k->slab_buf.buf;
                    long long wi =
                        index * k->wpb + ((addr & k->low_mask) >> 2);
                    long long result = slab[wi], new_val;
                    PyObject *result_obj, *new_obj;
                    slot_set_incref(ctx, g_ctx.state, g_ctx_blocked);
                    if (dict_add_ll(k->proc_dict, s_busy_cycles,
                                    k->latency) < 0)
                        goto fail_op;
                    if (list_add_ll(k->cache_slots, k->hit_rmw, 1) < 0)
                        goto fail_op;
                    result_obj = PyLong_FromLongLong(result);
                    if (result_obj == NULL)
                        goto fail_op;
                    new_obj = PyObject_CallOneArg(
                        PyTuple_GET_ITEM(op, 2), result_obj);
                    if (new_obj == NULL) {
                        Py_DECREF(result_obj);
                        goto fail_op;
                    }
                    new_val = PyLong_AsLongLong(new_obj);
                    Py_DECREF(new_obj);
                    if (new_val == -1 && PyErr_Occurred()) {
                        Py_DECREF(result_obj);
                        goto fail_op;
                    }
                    slab[wi] = new_val;
                    PyByteArray_AS_STRING(k->written)[index] = 1;
                    slot_set(ctx, g_ctx.resume_value, result_obj);
                    if (sk_ring_post(k, now + k->latency, ctx) < 0)
                        goto fail_op;
                    Py_DECREF(op);
                    Py_RETURN_NONE;
                }
            }
            {
                PyObject *block_obj = PyLong_FromLongLong(block);
                PyObject *r;
                if (block_obj == NULL)
                    goto fail_op;
                r = PyObject_CallFunctionObjArgs(
                    k->issue, ctx, g_str_rmw, PyTuple_GET_ITEM(op, 1),
                    PyTuple_GET_ITEM(op, 2), block_obj, NULL);
                Py_DECREF(block_obj);
                if (r == NULL)
                    goto fail_op;
                Py_DECREF(r);
            }
            Py_DECREF(op);
            Py_RETURN_NONE;
        }
    }
fallback:
    if (call2_drop(k->execute_op, ctx, op) < 0)
        goto fail_op;
    if (decref_op)
        Py_DECREF(op);
    Py_RETURN_NONE;
fail_op:
    if (decref_op)
        Py_XDECREF(op);
    return NULL;
}

static PyTypeObject StepKernel_Type = {
    PyVarObject_HEAD_INIT(NULL, 0).tp_name = "repro._native.StepKernel",
    .tp_basicsize = sizeof(StepKernelObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC |
                Py_TPFLAGS_HAVE_VECTORCALL,
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)StepKernel_init,
    .tp_dealloc = (destructor)StepKernel_dealloc,
    .tp_traverse = (traverseproc)StepKernel_traverse,
    .tp_clear = (inquiry)StepKernel_clear,
    .tp_vectorcall_offset = offsetof(StepKernelObject, vectorcall),
    .tp_call = PyVectorcall_Call,
};

/* ------------------------------------------------------------------ */
/* Pool: compiled PacketPool acquire/release (packet.PacketPool).     */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    PyObject *free_list;
    long long allocated, recycled;
    int enabled;
} PoolObject;

static PyTypeObject Pool_Type;

static PyObject *
Pool_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    PoolObject *self = (PoolObject *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->free_list = PyList_New(0);
    if (self->free_list == NULL) {
        Py_DECREF(self);
        return NULL;
    }
    self->enabled = 1;
    return (PyObject *)self;
}

static int
Pool_init(PoolObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"enabled", NULL};
    int enabled = 1;
    if (!g_ready) {
        PyErr_SetString(PyExc_RuntimeError, "_native.setup() not called");
        return -1;
    }
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|p:Pool", kwlist,
                                     &enabled))
        return -1;
    self->enabled = enabled;
    return 0;
}

static int
Pool_traverse(PoolObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->free_list);
    return 0;
}

static int
Pool_clear_gc(PoolObject *self)
{
    Py_CLEAR(self->free_list);
    return 0;
}

static void
Pool_dealloc(PoolObject *self)
{
    PyObject_GC_UnTrack(self);
    Pool_clear_gc(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static Py_ssize_t
Pool_length(PoolObject *self)
{
    return PyList_GET_SIZE(self->free_list);
}

static PyObject *
pool_protocol_impl(PoolObject *self, PyObject *src, PyObject *dst,
                   PyObject *opcode, PyObject *address, PyObject *data,
                   PyObject *meta)
{
    Py_ssize_t n = PyList_GET_SIZE(self->free_list);
    PyObject *packet;
    if (n == 0) {
        PyObject *cargs, *kwargs, *r;
        cargs = PyTuple_Pack(4, src, dst, opcode, address);
        if (cargs == NULL)
            return NULL;
        kwargs = meta ? PyDict_Copy(meta) : PyDict_New();
        if (kwargs == NULL) {
            Py_DECREF(cargs);
            return NULL;
        }
        if (PyDict_SetItemString(kwargs, "data",
                                 data ? data : Py_None) < 0) {
            Py_DECREF(cargs);
            Py_DECREF(kwargs);
            return NULL;
        }
        self->allocated++;
        r = PyObject_Call(g_protocol_packet, cargs, kwargs);
        Py_DECREF(cargs);
        Py_DECREF(kwargs);
        return r;
    }
    self->recycled++;
    packet = PyList_GET_ITEM(self->free_list, n - 1);
    Py_INCREF(packet);
    if (PyList_SetSlice(self->free_list, n - 1, n, NULL) < 0) {
        Py_DECREF(packet);
        return NULL;
    }
    slot_set_incref(packet, g_pkt.free, Py_False);
    if (Py_TYPE(opcode) != (PyTypeObject *)g_op_type) {
        opcode = PyObject_GetItem(g_op_by_name, opcode);
        if (opcode == NULL) {
            Py_DECREF(packet);
            return NULL;
        }
    }
    else
        Py_INCREF(opcode);
    if (data == NULL || data == Py_None) {
        long v = PyLong_AsLong(opcode);
        if (v == -1 && PyErr_Occurred()) {
            Py_DECREF(opcode);
            Py_DECREF(packet);
            return NULL;
        }
        if (v >= 0 && v < 64 && g_data_bearing[v]) {
            PyErr_Format(PyExc_ValueError, "%S packet requires data",
                         opcode);
            Py_DECREF(opcode);
            Py_DECREF(packet);
            return NULL;
        }
    }
    slot_set_incref(packet, g_pkt.src, src);
    slot_set_incref(packet, g_pkt.dst, dst);
    slot_set(packet, g_pkt.opcode, opcode);
    slot_set_incref(packet, g_pkt.address, address);
    slot_set_incref(packet, g_pkt.data, data ? data : Py_None);
    if (meta && PyDict_GET_SIZE(meta)) {
        PyObject *pm = SLOT_GET(packet, g_pkt.meta);
        if (pm == NULL || PyDict_Update(pm, meta) < 0) {
            Py_DECREF(packet);
            return NULL;
        }
    }
    return packet;
}

static PyObject *
Pool_protocol(PoolObject *self, PyObject *const *args, Py_ssize_t nargs,
              PyObject *kwnames)
{
    PyObject *data = NULL, *meta = NULL, *res;
    if (nargs != 4) {
        PyErr_SetString(PyExc_TypeError,
                        "protocol() takes (src, dst, opcode, address)");
        return NULL;
    }
    if (kwnames != NULL) {
        Py_ssize_t i, nk = PyTuple_GET_SIZE(kwnames);
        for (i = 0; i < nk; i++) {
            PyObject *name = PyTuple_GET_ITEM(kwnames, i);
            PyObject *val = args[nargs + i];
            if (PyUnicode_CompareWithASCIIString(name, "data") == 0)
                data = val;
            else {
                if (meta == NULL) {
                    meta = PyDict_New();
                    if (meta == NULL)
                        return NULL;
                }
                if (PyDict_SetItem(meta, name, val) < 0) {
                    Py_DECREF(meta);
                    return NULL;
                }
            }
        }
    }
    res = pool_protocol_impl(self, args[0], args[1], args[2], args[3],
                             data, meta);
    Py_XDECREF(meta);
    return res;
}

static int
pool_release_impl(PoolObject *self, PyObject *packet)
{
    PyObject *op, *pm, *minus_one;
    int freed;
    if (!self->enabled)
        return 0;
    op = SLOT_GET(packet, g_pkt.opcode);
    if (op == NULL || Py_TYPE(op) != (PyTypeObject *)g_op_type)
        return 0;
    freed = PyObject_IsTrue(SLOT_GET(packet, g_pkt.free));
    if (freed < 0)
        return -1;
    if (freed) {
        PyErr_Format(PyExc_RuntimeError, "double release of %R", packet);
        return -1;
    }
    slot_set_incref(packet, g_pkt.free, Py_True);
    slot_set_incref(packet, g_pkt.data, Py_None);
    slot_set_incref(packet, g_pkt.crc, Py_None);
    minus_one = PyLong_FromLong(-1);
    if (minus_one == NULL)
        return -1;
    slot_set(packet, g_pkt.sent_at, minus_one);
    pm = SLOT_GET(packet, g_pkt.meta);
    if (pm != NULL && PyDict_Check(pm) && PyDict_GET_SIZE(pm))
        PyDict_Clear(pm);
    return PyList_Append(self->free_list, packet);
}

static PyObject *
Pool_release(PoolObject *self, PyObject *packet)
{
    if (pool_release_impl(self, packet) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
Pool_get_enabled(PoolObject *self, void *c)
{
    return PyBool_FromLong(self->enabled);
}

static int
Pool_set_enabled(PoolObject *self, PyObject *v, void *c)
{
    int x = PyObject_IsTrue(v);
    if (x < 0)
        return -1;
    self->enabled = x;
    return 0;
}

#define POOL_LL_GETSET(field)                                            \
    static PyObject *Pool_get_##field(PoolObject *s, void *c)            \
    {                                                                    \
        return PyLong_FromLongLong(s->field);                            \
    }                                                                    \
    static int Pool_set_##field(PoolObject *s, PyObject *v, void *c)     \
    {                                                                    \
        long long x = PyLong_AsLongLong(v);                              \
        if (x == -1 && PyErr_Occurred())                                 \
            return -1;                                                   \
        s->field = x;                                                    \
        return 0;                                                        \
    }

POOL_LL_GETSET(allocated)
POOL_LL_GETSET(recycled)

static PyObject *
Pool_get_free_list(PoolObject *self, void *c)
{
    Py_INCREF(self->free_list);
    return self->free_list;
}

static PyMethodDef Pool_methods[] = {
    {"protocol", (PyCFunction)(void (*)(void))Pool_protocol,
     METH_FASTCALL | METH_KEYWORDS, NULL},
    {"release", (PyCFunction)Pool_release, METH_O, NULL},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef Pool_getsets[] = {
    {"enabled", (getter)Pool_get_enabled, (setter)Pool_set_enabled, NULL,
     NULL},
    {"allocated", (getter)Pool_get_allocated, (setter)Pool_set_allocated,
     NULL, NULL},
    {"recycled", (getter)Pool_get_recycled, (setter)Pool_set_recycled,
     NULL, NULL},
    {"_free_list", (getter)Pool_get_free_list, NULL, NULL, NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PySequenceMethods Pool_as_sequence = {
    .sq_length = (lenfunc)Pool_length,
};

static PyTypeObject Pool_Type = {
    PyVarObject_HEAD_INIT(NULL, 0).tp_name = "repro._native.Pool",
    .tp_basicsize = sizeof(PoolObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC |
                Py_TPFLAGS_BASETYPE,
    .tp_new = Pool_new,
    .tp_init = (initproc)Pool_init,
    .tp_dealloc = (destructor)Pool_dealloc,
    .tp_traverse = (traverseproc)Pool_traverse,
    .tp_clear = (inquiry)Pool_clear_gc,
    .tp_methods = Pool_methods,
    .tp_getset = Pool_getsets,
    .tp_as_sequence = &Pool_as_sequence,
};

/* ------------------------------------------------------------------ */
/* RxChain: per-node receive path (NIC classify + cache dispatch +    */
/* pool release), compiled.  Mirrors NetworkInterface._receive plus   */
/* CacheController.receive for the memory→cache direction.            */
/* ------------------------------------------------------------------ */

static PyObject *s_state_attr;

typedef struct {
    PyObject_HEAD
    vectorcallfunc vectorcall;
    PyObject *nic, *nic_dict, *nic_receive, *memory_handler;
    PyObject *cache_rx, *pool, *pool_release, *divert;
    int pool_native;
} RxChainObject;

static PyObject *rx_chain_vectorcall(PyObject *, PyObject *const *, size_t,
                                     PyObject *);

static int
RxChain_init(RxChainObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *spec;
    if (!g_ready) {
        PyErr_SetString(PyExc_RuntimeError, "_native.setup() not called");
        return -1;
    }
    if (!PyArg_ParseTuple(args, "O!:RxChain", &PyDict_Type, &spec))
        return -1;
    SPEC_REF(nic, "nic");
    SPEC_REF(nic_receive, "receive");
    SPEC_REF(memory_handler, "memory_handler");
    SPEC_REF(cache_rx, "cache_rx");
    SPEC_REF(pool, "pool");
    SPEC_REF(divert, "divert");
    Py_XSETREF(self->nic_dict, PyObject_GenericGetDict(self->nic, NULL));
    if (self->nic_dict == NULL)
        return -1;
    if (!PyList_Check(self->cache_rx)) {
        PyErr_SetString(PyExc_TypeError, "cache_rx must be a list");
        return -1;
    }
    self->pool_native = PyObject_TypeCheck(self->pool, &Pool_Type);
    if (!self->pool_native) {
        PyObject *rel = PyObject_GetAttrString(self->pool, "release");
        if (rel == NULL)
            return -1;
        Py_XSETREF(self->pool_release, rel);
    }
    self->vectorcall = rx_chain_vectorcall;
    return 0;
}

static int
RxChain_traverse(RxChainObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->nic);
    Py_VISIT(self->nic_dict);
    Py_VISIT(self->nic_receive);
    Py_VISIT(self->memory_handler);
    Py_VISIT(self->cache_rx);
    Py_VISIT(self->pool);
    Py_VISIT(self->pool_release);
    Py_VISIT(self->divert);
    return 0;
}

static int
RxChain_clear(RxChainObject *self)
{
    Py_CLEAR(self->nic);
    Py_CLEAR(self->nic_dict);
    Py_CLEAR(self->nic_receive);
    Py_CLEAR(self->memory_handler);
    Py_CLEAR(self->cache_rx);
    Py_CLEAR(self->pool);
    Py_CLEAR(self->pool_release);
    Py_CLEAR(self->divert);
    return 0;
}

static void
RxChain_dealloc(RxChainObject *self)
{
    PyObject_GC_UnTrack(self);
    RxChain_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
rx_chain_vectorcall(PyObject *cself, PyObject *const *args, size_t nargsf,
                    PyObject *kwnames)
{
    RxChainObject *c = (RxChainObject *)cself;
    PyObject *packet, *crc, *op, *r;
    if (PyVectorcall_NARGS(nargsf) != 1 ||
        (kwnames && PyTuple_GET_SIZE(kwnames))) {
        PyErr_SetString(PyExc_TypeError, "rx chain takes exactly (packet)");
        return NULL;
    }
    packet = args[0];
    crc = PyDict_GetItemWithError(c->nic_dict, s_crc_enabled);
    if (crc == NULL && PyErr_Occurred())
        return NULL;
    if (crc != NULL && crc != Py_False) {
        int t = PyObject_IsTrue(crc);
        if (t < 0)
            return NULL;
        if (t)
            /* CRC checking is cold: let the Python NIC do the whole
               receive (it bumps packets_received itself). */
            return PyObject_CallOneArg(c->nic_receive, packet);
    }
    if (dict_add_ll(c->nic_dict, s_packets_received, 1) < 0)
        return NULL;
    op = SLOT_GET(packet, g_pkt.opcode);
    if (op != NULL && Py_TYPE(op) == (PyTypeObject *)g_op_type) {
        long v = PyLong_AsLong(op);
        PyObject *handler;
        if (v == -1 && PyErr_Occurred())
            return NULL;
        if (v <= g_last_c2m)
            /* cache→memory: ownership passes to the directory pipeline,
               which releases after dispatch. */
            return PyObject_CallOneArg(c->memory_handler, packet);
        handler = PyList_GetItem(c->cache_rx, (Py_ssize_t)v);
        if (handler == NULL)
            return NULL;
        Py_INCREF(handler);
        r = PyObject_CallOneArg(handler, packet);
        Py_DECREF(handler);
        if (r == NULL)
            return NULL;
        Py_DECREF(r);
        if (c->pool_native) {
            if (pool_release_impl((PoolObject *)c->pool, packet) < 0)
                return NULL;
        }
        else {
            r = PyObject_CallOneArg(c->pool_release, packet);
            if (r == NULL)
                return NULL;
            Py_DECREF(r);
        }
        Py_RETURN_NONE;
    }
    return PyObject_CallOneArg(c->divert, packet);
}

static PyTypeObject RxChain_Type = {
    PyVarObject_HEAD_INIT(NULL, 0).tp_name = "repro._native.RxChain",
    .tp_basicsize = sizeof(RxChainObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC |
                Py_TPFLAGS_HAVE_VECTORCALL,
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)RxChain_init,
    .tp_dealloc = (destructor)RxChain_dealloc,
    .tp_traverse = (traverseproc)RxChain_traverse,
    .tp_clear = (inquiry)RxChain_clear,
    .tp_vectorcall_offset = offsetof(RxChainObject, vectorcall),
    .tp_call = PyVectorcall_Call,
};

/* ------------------------------------------------------------------ */
/* TableDispatch: the directory's per-(state, opcode) handler lookup. */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    vectorcallfunc vectorcall;
    PyObject *table;
} TableDispatchObject;

static PyObject *table_dispatch_vectorcall(PyObject *, PyObject *const *,
                                           size_t, PyObject *);

static int
TableDispatch_init(TableDispatchObject *self, PyObject *args,
                   PyObject *kwds)
{
    PyObject *spec;
    if (!g_ready) {
        PyErr_SetString(PyExc_RuntimeError, "_native.setup() not called");
        return -1;
    }
    if (!PyArg_ParseTuple(args, "O!:TableDispatch", &PyDict_Type, &spec))
        return -1;
    SPEC_REF(table, "table");
    if (!PyList_Check(self->table)) {
        PyErr_SetString(PyExc_TypeError, "table must be a list of lists");
        return -1;
    }
    self->vectorcall = table_dispatch_vectorcall;
    return 0;
}

static int
TableDispatch_traverse(TableDispatchObject *self, visitproc visit,
                       void *arg)
{
    Py_VISIT(self->table);
    return 0;
}

static int
TableDispatch_clear(TableDispatchObject *self)
{
    Py_CLEAR(self->table);
    return 0;
}

static void
TableDispatch_dealloc(TableDispatchObject *self)
{
    PyObject_GC_UnTrack(self);
    TableDispatch_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
table_dispatch_vectorcall(PyObject *dself, PyObject *const *args,
                          size_t nargsf, PyObject *kwnames)
{
    TableDispatchObject *d = (TableDispatchObject *)dself;
    PyObject *entry, *packet, *state_obj, *row, *handler, *op, *r;
    long s, v;
    if (PyVectorcall_NARGS(nargsf) != 2 ||
        (kwnames && PyTuple_GET_SIZE(kwnames))) {
        PyErr_SetString(PyExc_TypeError,
                        "dispatch takes exactly (entry, packet)");
        return NULL;
    }
    entry = args[0];
    packet = args[1];
    state_obj = PyObject_GetAttr(entry, s_state_attr);
    if (state_obj == NULL)
        return NULL;
    s = PyLong_AsLong(state_obj);
    Py_DECREF(state_obj);
    if (s == -1 && PyErr_Occurred())
        return NULL;
    op = SLOT_GET(packet, g_pkt.opcode);
    v = PyLong_AsLong(op);
    if (v == -1 && PyErr_Occurred())
        return NULL;
    row = PyList_GetItem(d->table, (Py_ssize_t)s);
    if (row == NULL)
        return NULL;
    handler = PyList_GetItem(row, (Py_ssize_t)v);
    if (handler == NULL)
        return NULL;
    Py_INCREF(handler);
    r = PyObject_CallFunctionObjArgs(handler, entry, packet, NULL);
    Py_DECREF(handler);
    return r;
}

static PyTypeObject TableDispatch_Type = {
    PyVarObject_HEAD_INIT(NULL, 0).tp_name = "repro._native.TableDispatch",
    .tp_basicsize = sizeof(TableDispatchObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC |
                Py_TPFLAGS_HAVE_VECTORCALL,
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)TableDispatch_init,
    .tp_dealloc = (destructor)TableDispatch_dealloc,
    .tp_traverse = (traverseproc)TableDispatch_traverse,
    .tp_clear = (inquiry)TableDispatch_clear,
    .tp_vectorcall_offset = offsetof(TableDispatchObject, vectorcall),
    .tp_call = PyVectorcall_Call,
};

/* ------------------------------------------------------------------ */
/* NetSend: wormhole route stepping + delivery scheduling, compiled.  */
/* Mirrors fastpath.SoaWormholeNetwork.send exactly.                  */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    vectorcallfunc vectorcall;
    CoreObject *core;
    PyObject *net, *net_dict, *stats, *per_opcode, *handlers;
    PyObject *route_cache, *intern_route, *link_free_at, *link_busy;
    long long hop_latency, cycles_per_word, injection_latency;
} NetSendObject;

static PyObject *net_send_vectorcall(PyObject *, PyObject *const *, size_t,
                                     PyObject *);

static int
NetSend_init(NetSendObject *self, PyObject *args, PyObject *kwds)
{
    PyObject *spec, *core;
    if (!g_ready) {
        PyErr_SetString(PyExc_RuntimeError, "_native.setup() not called");
        return -1;
    }
    if (!PyArg_ParseTuple(args, "O!:NetSend", &PyDict_Type, &spec))
        return -1;
    core = spec_get(spec, "core");
    if (core == NULL || !PyObject_TypeCheck(core, &Core_Type)) {
        if (core != NULL)
            PyErr_SetString(PyExc_TypeError, "spec['core'] must be a Core");
        return -1;
    }
    Py_INCREF(core);
    Py_XSETREF(self->core, (CoreObject *)core);
    SPEC_REF(net, "net");
    SPEC_REF(stats, "stats");
    SPEC_REF(per_opcode, "per_opcode");
    SPEC_REF(handlers, "handlers");
    SPEC_REF(route_cache, "route_cache");
    SPEC_REF(intern_route, "intern_route");
    SPEC_REF(link_free_at, "link_free_at");
    SPEC_REF(link_busy, "link_busy");
    Py_XSETREF(self->net_dict, PyObject_GenericGetDict(self->net, NULL));
    if (self->net_dict == NULL)
        return -1;
    if (spec_get_ll(spec, "hop_latency", &self->hop_latency) < 0 ||
        spec_get_ll(spec, "cycles_per_word", &self->cycles_per_word) < 0 ||
        spec_get_ll(spec, "injection_latency",
                    &self->injection_latency) < 0)
        return -1;
    if (!PyList_Check(self->handlers) || !PyList_Check(self->link_free_at)
        || !PyList_Check(self->link_busy) ||
        !PyDict_Check(self->route_cache) ||
        !PyDict_Check(self->per_opcode)) {
        PyErr_SetString(PyExc_TypeError, "bad NetSend spec shapes");
        return -1;
    }
    self->vectorcall = net_send_vectorcall;
    return 0;
}

static int
NetSend_traverse(NetSendObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->core);
    Py_VISIT(self->net);
    Py_VISIT(self->net_dict);
    Py_VISIT(self->stats);
    Py_VISIT(self->per_opcode);
    Py_VISIT(self->handlers);
    Py_VISIT(self->route_cache);
    Py_VISIT(self->intern_route);
    Py_VISIT(self->link_free_at);
    Py_VISIT(self->link_busy);
    return 0;
}

static int
NetSend_clear(NetSendObject *self)
{
    Py_CLEAR(self->core);
    Py_CLEAR(self->net);
    Py_CLEAR(self->net_dict);
    Py_CLEAR(self->stats);
    Py_CLEAR(self->per_opcode);
    Py_CLEAR(self->handlers);
    Py_CLEAR(self->route_cache);
    Py_CLEAR(self->intern_route);
    Py_CLEAR(self->link_free_at);
    Py_CLEAR(self->link_busy);
    return 0;
}

static void
NetSend_dealloc(NetSendObject *self)
{
    PyObject_GC_UnTrack(self);
    NetSend_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* per_opcode[key] = per_opcode.get(key, 0) + 1, key as in WormholeNetwork */
static int
per_opcode_bump(NetSendObject *ns, PyObject *op)
{
    PyObject *key, *cur, *newv;
    long long c = 0;
    if (Py_TYPE(op) == (PyTypeObject *)g_op_type) {
        long v = PyLong_AsLong(op);
        if (v == -1 && PyErr_Occurred())
            return -1;
        key = PyTuple_GET_ITEM(g_op_names, v);
    }
    else
        key = op;
    cur = PyDict_GetItemWithError(ns->per_opcode, key);
    if (cur == NULL && PyErr_Occurred())
        return -1;
    if (cur != NULL) {
        c = PyLong_AsLongLong(cur);
        if (c == -1 && PyErr_Occurred())
            return -1;
    }
    newv = PyLong_FromLongLong(c + 1);
    if (newv == NULL)
        return -1;
    if (PyDict_SetItem(ns->per_opcode, key, newv) < 0) {
        Py_DECREF(newv);
        return -1;
    }
    Py_DECREF(newv);
    return 0;
}

static int
injector_admit(PyObject *injector, long long when, PyObject *packet)
{
    PyObject *m, *t, *r;
    m = PyObject_GetAttr(injector, s_admit);
    if (m == NULL)
        return -1;
    t = PyLong_FromLongLong(when);
    if (t == NULL) {
        Py_DECREF(m);
        return -1;
    }
    r = PyObject_CallFunctionObjArgs(m, t, packet, NULL);
    Py_DECREF(m);
    Py_DECREF(t);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

static PyObject *
net_send_vectorcall(PyObject *nself, PyObject *const *args, size_t nargsf,
                    PyObject *kwnames)
{
    NetSendObject *ns = (NetSendObject *)nself;
    CoreObject *core = ns->core;
    PyObject *packet, *src_obj, *dst_obj, *data, *meta, *op, *injector;
    PyObject *now_obj, *path = NULL, *handler;
    long long now, src, dst, words;
    int path_owned = 0;
    if (PyVectorcall_NARGS(nargsf) != 1 ||
        (kwnames && PyTuple_GET_SIZE(kwnames))) {
        PyErr_SetString(PyExc_TypeError, "send takes exactly (packet)");
        return NULL;
    }
    packet = args[0];
    now = core->now;
    now_obj = PyLong_FromLongLong(now);
    if (now_obj == NULL)
        return NULL;
    slot_set(packet, g_pkt.sent_at, now_obj);
    src_obj = SLOT_GET(packet, g_pkt.src);
    dst_obj = SLOT_GET(packet, g_pkt.dst);
    src = PyLong_AsLongLong(src_obj);
    if (src == -1 && PyErr_Occurred())
        return NULL;
    dst = PyLong_AsLongLong(dst_obj);
    if (dst == -1 && PyErr_Occurred())
        return NULL;
    data = SLOT_GET(packet, g_pkt.data);
    meta = SLOT_GET(packet, g_pkt.meta);
    words = 2 + (PyDict_Check(meta) ? PyDict_GET_SIZE(meta)
                                    : PyObject_Size(meta));
    if (data != Py_None && data != NULL) {
        PyObject *w = PyObject_GetAttr(data, s_words);
        Py_ssize_t wn;
        if (w == NULL)
            return NULL;
        wn = PyObject_Size(w);
        Py_DECREF(w);
        if (wn < 0)
            return NULL;
        words += wn;
    }
    op = SLOT_GET(packet, g_pkt.opcode);
    injector = PyDict_GetItemWithError(ns->net_dict, s_fault_injector);
    if (injector == NULL && PyErr_Occurred())
        return NULL;
    if (injector == Py_None)
        injector = NULL;
    if (src == dst) {
        if (stat_add_ll(ns->stats, g_stat.packets, 1) < 0 ||
            stat_add_ll(ns->stats, g_stat.words, words) < 0 ||
            stat_add_ll(ns->stats, g_stat.total_latency, 2) < 0)
            return NULL;
        if (per_opcode_bump(ns, op) < 0)
            return NULL;
        if (injector != NULL) {
            if (injector_admit(injector, now + 2, packet) < 0)
                return NULL;
            Py_RETURN_NONE;
        }
        handler = PyList_GetItem(ns->handlers, (Py_ssize_t)dst);
        if (handler == NULL)
            return NULL;
        if (core->running) {
            if (core_ring_post(core, now + 2, handler, packet) < 0)
                return NULL;
        }
        else if (core_post_impl(core, now + 2, NULL, handler, packet) < 0)
            return NULL;
        Py_RETURN_NONE;
    }
    {
        PyObject *key = PyTuple_Pack(2, src_obj, dst_obj);
        if (key == NULL)
            return NULL;
        path = PyDict_GetItemWithError(ns->route_cache, key);
        Py_DECREF(key);
        if (path == NULL) {
            if (PyErr_Occurred())
                return NULL;
            path = PyObject_CallFunctionObjArgs(ns->intern_route, src_obj,
                                                dst_obj, NULL);
            if (path == NULL)
                return NULL;
            path_owned = 1;
        }
    }
    {
        long long serialization = words * ns->cycles_per_word;
        long long head = now + ns->injection_latency;
        long long waited = 0, arrival;
        PyObject *fast = PySequence_Fast(path, "route must be a sequence");
        Py_ssize_t i, npath;
        if (fast == NULL)
            goto fail_path;
        npath = PySequence_Fast_GET_SIZE(fast);
        for (i = 0; i < npath; i++) {
            long long link =
                PyLong_AsLongLong(PySequence_Fast_GET_ITEM(fast, i));
            long long start;
            PyObject *item, *nf;
            if (link == -1 && PyErr_Occurred()) {
                Py_DECREF(fast);
                goto fail_path;
            }
            item = PyList_GetItem(ns->link_free_at, (Py_ssize_t)link);
            if (item == NULL) {
                Py_DECREF(fast);
                goto fail_path;
            }
            start = PyLong_AsLongLong(item);
            if (start == -1 && PyErr_Occurred()) {
                Py_DECREF(fast);
                goto fail_path;
            }
            if (start < head)
                start = head;
            else
                waited += start - head;
            nf = PyLong_FromLongLong(start + serialization);
            if (nf == NULL) {
                Py_DECREF(fast);
                goto fail_path;
            }
            if (PyList_SetItem(ns->link_free_at, (Py_ssize_t)link, nf)
                < 0) {
                Py_DECREF(fast);
                goto fail_path;
            }
            if (list_add_ll(ns->link_busy, (Py_ssize_t)link,
                            serialization) < 0) {
                Py_DECREF(fast);
                goto fail_path;
            }
            head = start + ns->hop_latency;
        }
        Py_DECREF(fast);
        arrival = head + serialization;
        if (stat_add_ll(ns->stats, g_stat.packets, 1) < 0 ||
            stat_add_ll(ns->stats, g_stat.words, words) < 0 ||
            stat_add_ll(ns->stats, g_stat.hops, npath) < 0 ||
            stat_add_ll(ns->stats, g_stat.total_latency, arrival - now) < 0
            || stat_add_ll(ns->stats, g_stat.contention, waited) < 0)
            goto fail_path;
        if (per_opcode_bump(ns, op) < 0)
            goto fail_path;
        if (path_owned)
            Py_DECREF(path);
        path_owned = 0;
        if (injector != NULL) {
            if (injector_admit(injector, arrival, packet) < 0)
                return NULL;
            Py_RETURN_NONE;
        }
        handler = PyList_GetItem(ns->handlers, (Py_ssize_t)dst);
        if (handler == NULL)
            return NULL;
        if (core->running && arrival - now < RING) {
            if (core_ring_post(core, arrival, handler, packet) < 0)
                return NULL;
        }
        else if (core_post_impl(core, arrival, NULL, handler, packet) < 0)
            return NULL;
        Py_RETURN_NONE;
    }
fail_path:
    if (path_owned)
        Py_XDECREF(path);
    return NULL;
}

static PyTypeObject NetSend_Type = {
    PyVarObject_HEAD_INIT(NULL, 0).tp_name = "repro._native.NetSend",
    .tp_basicsize = sizeof(NetSendObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC |
                Py_TPFLAGS_HAVE_VECTORCALL,
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)NetSend_init,
    .tp_dealloc = (destructor)NetSend_dealloc,
    .tp_traverse = (traverseproc)NetSend_traverse,
    .tp_clear = (inquiry)NetSend_clear,
    .tp_vectorcall_offset = offsetof(NetSendObject, vectorcall),
    .tp_call = PyVectorcall_Call,
};

/* ------------------------------------------------------------------ */
/* Module setup: the Python side injects every class/constant the     */
/* kernels need; the extension never imports repro modules itself.    */
/* ------------------------------------------------------------------ */

static int
take_ref(PyObject *spec, const char *key, PyObject **slot)
{
    PyObject *v = spec_get(spec, key);
    if (v == NULL)
        return -1;
    Py_INCREF(v);
    Py_XSETREF(*slot, v);
    return 0;
}

static PyObject *
mod_setup(PyObject *mod, PyObject *spec)
{
    PyObject *cls;
    if (!PyDict_Check(spec)) {
        PyErr_SetString(PyExc_TypeError, "setup() takes a dict");
        return NULL;
    }
    if (take_ref(spec, "SimulationError", &g_sim_error) < 0 ||
        take_ref(spec, "Event", &g_event_type) < 0 ||
        take_ref(spec, "NO_ARG", &g_no_arg) < 0 ||
        take_ref(spec, "DONE", &g_ctx_done) < 0 ||
        take_ref(spec, "RUNNING", &g_ctx_running) < 0 ||
        take_ref(spec, "BLOCKED", &g_ctx_blocked) < 0 ||
        take_ref(spec, "THINK", &g_op_think) < 0 ||
        take_ref(spec, "LOAD", &g_op_load) < 0 ||
        take_ref(spec, "STORE", &g_op_store) < 0 ||
        take_ref(spec, "RMW", &g_op_rmw) < 0 ||
        take_ref(spec, "Op", &g_op_type) < 0 ||
        take_ref(spec, "OP_NAMES", &g_op_names) < 0 ||
        take_ref(spec, "OP_BY_NAME", &g_op_by_name) < 0 ||
        take_ref(spec, "protocol_packet", &g_protocol_packet) < 0)
        return NULL;
    if (!PyTuple_Check(g_op_names)) {
        PyErr_SetString(PyExc_TypeError, "OP_NAMES must be a tuple");
        return NULL;
    }
    {
        PyObject *db = spec_get(spec, "DATA_BEARING");
        Py_ssize_t i, n;
        if (db == NULL)
            return NULL;
        n = PySequence_Size(db);
        if (n < 0)
            return NULL;
        memset(g_data_bearing, 0, sizeof(g_data_bearing));
        for (i = 0; i < n && i < 64; i++) {
            PyObject *item = PySequence_GetItem(db, i);
            int t;
            if (item == NULL)
                return NULL;
            t = PyObject_IsTrue(item);
            Py_DECREF(item);
            if (t < 0)
                return NULL;
            g_data_bearing[i] = (char)t;
        }
    }
    {
        PyObject *v = spec_get(spec, "LAST_CACHE_TO_MEMORY");
        long x;
        if (v == NULL)
            return NULL;
        x = PyLong_AsLong(v);
        if (x == -1 && PyErr_Occurred())
            return NULL;
        g_last_c2m = x;
    }
    cls = spec_get(spec, "Event");
    if (cls == NULL)
        return NULL;
    if ((g_ev.cancelled = slot_offset(cls, "cancelled")) < 0 ||
        (g_ev.done = slot_offset(cls, "_done")) < 0)
        return NULL;
    cls = spec_get(spec, "Context");
    if (cls == NULL)
        return NULL;
    if ((g_ctx.state = slot_offset(cls, "state")) < 0 ||
        (g_ctx.gen = slot_offset(cls, "gen")) < 0 ||
        (g_ctx.started = slot_offset(cls, "started")) < 0 ||
        (g_ctx.resume_value = slot_offset(cls, "resume_value")) < 0 ||
        (g_ctx.ops_executed = slot_offset(cls, "ops_executed")) < 0 ||
        (g_ctx.last_op = slot_offset(cls, "last_op")) < 0 ||
        (g_ctx.outstanding_stores =
             slot_offset(cls, "outstanding_stores")) < 0 ||
        (g_ctx.pending_op = slot_offset(cls, "pending_op")) < 0 ||
        (g_ctx.pending_needs = slot_offset(cls, "pending_needs")) < 0 ||
        (g_ctx.burst_ops = slot_offset(cls, "burst_ops")) < 0 ||
        (g_ctx.burst_pos = slot_offset(cls, "burst_pos")) < 0)
        return NULL;
    cls = spec_get(spec, "Packet");
    if (cls == NULL)
        return NULL;
    if ((g_pkt.src = slot_offset(cls, "src")) < 0 ||
        (g_pkt.dst = slot_offset(cls, "dst")) < 0 ||
        (g_pkt.opcode = slot_offset(cls, "opcode")) < 0 ||
        (g_pkt.address = slot_offset(cls, "address")) < 0 ||
        (g_pkt.data = slot_offset(cls, "data")) < 0 ||
        (g_pkt.meta = slot_offset(cls, "meta")) < 0 ||
        (g_pkt.sent_at = slot_offset(cls, "sent_at")) < 0 ||
        (g_pkt.crc = slot_offset(cls, "crc")) < 0 ||
        (g_pkt.free = slot_offset(cls, "_free")) < 0)
        return NULL;
    cls = spec_get(spec, "NetworkStats");
    if (cls == NULL)
        return NULL;
    if ((g_stat.packets = slot_offset(cls, "packets")) < 0 ||
        (g_stat.words = slot_offset(cls, "words")) < 0 ||
        (g_stat.hops = slot_offset(cls, "hops")) < 0 ||
        (g_stat.total_latency = slot_offset(cls, "total_latency")) < 0 ||
        (g_stat.contention = slot_offset(cls, "contention_cycles")) < 0 ||
        (g_stat.per_opcode = slot_offset(cls, "per_opcode")) < 0)
        return NULL;
    g_ready = 1;
    Py_RETURN_NONE;
}

static PyObject *
mod_is_ready(PyObject *mod, PyObject *noarg)
{
    return PyBool_FromLong(g_ready);
}

static PyMethodDef module_methods[] = {
    {"setup", mod_setup, METH_O, "Inject the Python-side classes."},
    {"is_ready", mod_is_ready, METH_NOARGS, NULL},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef native_module = {
    PyModuleDef_HEAD_INIT,
    "repro.backend.native._native",
    "Compiled hot-path kernels for the native backend.",
    -1,
    module_methods,
};

static int
intern_into(PyObject **slot, const char *text)
{
    PyObject *s = PyUnicode_InternFromString(text);
    if (s == NULL)
        return -1;
    *slot = s;
    return 0;
}

PyMODINIT_FUNC
PyInit__native(void)
{
    PyObject *mod;
    if (PyType_Ready(&Core_Type) < 0 ||
        PyType_Ready(&StepKernel_Type) < 0 ||
        PyType_Ready(&Pool_Type) < 0 || PyType_Ready(&RxChain_Type) < 0 ||
        PyType_Ready(&TableDispatch_Type) < 0 ||
        PyType_Ready(&NetSend_Type) < 0)
        return NULL;
    if (intern_into(&s_max_cycles, "max_cycles") < 0 ||
        intern_into(&s_busy_cycles, "busy_cycles") < 0 ||
        intern_into(&s_trap_free_at, "trap_free_at") < 0 ||
        intern_into(&s_crc_enabled, "crc_enabled") < 0 ||
        intern_into(&s_packets_received, "packets_received") < 0 ||
        intern_into(&s_fault_injector, "fault_injector") < 0 ||
        intern_into(&s_admit, "admit") < 0 ||
        intern_into(&s_words, "words") < 0 ||
        intern_into(&s_send, "send") < 0 ||
        intern_into(&s_state_attr, "state") < 0 ||
        intern_into(&g_str_all, "all") < 0 ||
        intern_into(&g_str_load, "load") < 0 ||
        intern_into(&g_str_store, "store") < 0 ||
        intern_into(&g_str_rmw, "rmw") < 0)
        return NULL;
    {
        PyObject *retire = PyUnicode_InternFromString("__retire__");
        if (retire == NULL)
            return NULL;
        g_retire_op = PyTuple_Pack(1, retire);
        Py_DECREF(retire);
        if (g_retire_op == NULL)
            return NULL;
    }
    mod = PyModule_Create(&native_module);
    if (mod == NULL)
        return NULL;
    if (PyModule_AddObjectRef(mod, "Core", (PyObject *)&Core_Type) < 0 ||
        PyModule_AddObjectRef(mod, "StepKernel",
                              (PyObject *)&StepKernel_Type) < 0 ||
        PyModule_AddObjectRef(mod, "Pool", (PyObject *)&Pool_Type) < 0 ||
        PyModule_AddObjectRef(mod, "RxChain",
                              (PyObject *)&RxChain_Type) < 0 ||
        PyModule_AddObjectRef(mod, "TableDispatch",
                              (PyObject *)&TableDispatch_Type) < 0 ||
        PyModule_AddObjectRef(mod, "NetSend",
                              (PyObject *)&NetSend_Type) < 0) {
        Py_DECREF(mod);
        return NULL;
    }
    return mod;
}
