"""Compiled hot-path kernels behind the backend seam.

The ``native`` backend is the LimitLESS argument applied to the
simulator itself: the common case (event ring scheduling, cache-hit
issue, directory dispatch, wormhole route stepping, packet pooling)
runs at compiled speed, while every rare case — protocol corner
handlers, traps, faults, CRC verification — falls through to the same
pure-Python code that defines the golden semantics.

The extension (``_native.c``) is a hand-written CPython C module built
by ``setup.py build_ext --inplace``.  It is strictly optional: when it
does not import (not built, wrong interpreter, ``REPRO_NATIVE=0``), the
backend registry silently degrades ``backend="native"`` to the ``soa``
components and records the reason in :func:`load_status` /
``Backend.notes`` so runs proceed and report the fallback honestly.

Exactness is non-negotiable: the compiled kernels replicate
``BatchSimulator``/``fastpath`` observable-for-observable (sequence
numbers, counter settle order, exception partial effects), and the
equivalence golden tier in ``tests/backend`` pins them against the
committed SHA-256 fingerprints with the extension present *and* absent.
"""

from __future__ import annotations

import operator
import os
from typing import Optional

from ..batchsim import BatchSimulator
from ..fastpath import SoaProcessor, SoaWormholeNetwork

_native = None
_IMPORT_ERROR: Optional[str] = None

if os.environ.get("REPRO_NATIVE", "") == "0":
    _IMPORT_ERROR = "disabled via REPRO_NATIVE=0"
else:  # pragma: no branch - trivial import guard
    try:
        import importlib

        # import_module (not ``from . import``): the module-level
        # ``_native = None`` placeholder above would otherwise satisfy
        # the fromlist lookup without ever loading the extension.
        _native = importlib.import_module("._native", __name__)
    except ImportError as exc:  # pragma: no cover - depends on build
        _IMPORT_ERROR = f"extension not built ({exc})"


def available() -> bool:
    """True when the compiled extension imported successfully."""
    return _native is not None


def load_status() -> tuple[bool, Optional[str]]:
    """``(available, reason_if_not)`` for fallback reporting."""
    return (_native is not None, _IMPORT_ERROR)


_setup_done = False


def _ensure_setup() -> None:
    """Inject the Python-side classes into the extension, once.

    The extension never imports repro modules itself — the Python layer
    hands over every class, sentinel, and constant the kernels compare
    against, so there is exactly one definition of each.
    """
    global _setup_done
    if _setup_done:
        return
    from ...network.fabric import NetworkStats
    from ...network.packet import (
        _DATA_BEARING,
        _LAST_CACHE_TO_MEMORY,
        OP_BY_NAME,
        OP_NAMES,
        Op,
        Packet,
        protocol_packet,
    )
    from ...proc import ops
    from ...proc.processor import Context, ContextState
    from ...sim.kernel import _NO_ARG, Event, SimulationError

    _native.setup(
        {
            "SimulationError": SimulationError,
            "Event": Event,
            "NO_ARG": _NO_ARG,
            "Context": Context,
            "DONE": ContextState.DONE,
            "RUNNING": ContextState.RUNNING,
            "BLOCKED": ContextState.BLOCKED,
            "THINK": ops.THINK,
            "LOAD": ops.LOAD,
            "STORE": ops.STORE,
            "RMW": ops.RMW,
            "Op": Op,
            "OP_NAMES": OP_NAMES,
            "OP_BY_NAME": OP_BY_NAME,
            "DATA_BEARING": _DATA_BEARING,
            "LAST_CACHE_TO_MEMORY": int(_LAST_CACHE_TO_MEMORY),
            "Packet": Packet,
            "NetworkStats": NetworkStats,
            "protocol_packet": protocol_packet,
        }
    )
    _setup_done = True


def _core_property(name):
    # attrgetter walks the dotted path entirely in C — ``sim.now`` reads
    # are hot in the remaining Python protocol code, so the getter must
    # not cost a Python frame.  Sets (checkpoint restore, test pokes)
    # are cold and keep the plain closure.
    fget = operator.attrgetter(f"_core.{name}")

    def fset(self, value):
        setattr(self._core, name, value)

    return property(fget, fset)


class NativeSimulator(BatchSimulator):
    """BatchSimulator whose state and run loops live in the C core.

    The scalar state (``now``, sequence counters, live count, ring mask)
    is stored in the :class:`_native.Core` and exposed through settable
    properties, so every external poke that works on ``BatchSimulator``
    (fastpath ring inlines, ``Event.cancel``, checkpoint digests,
    modelcheck queue clears) works unchanged here.  The ring slots are
    real Python lists shared with the core; the heap is the real
    ``_queue`` list.  ``run``/``run_until``/``post``/``call_at``/...
    are shadowed per-instance by the core's compiled methods.
    """

    def __init__(self, *, max_cycles: int | None = None) -> None:
        _ensure_setup()
        core = _native.Core()
        self._core = core
        core.bind(self)
        super().__init__(max_cycles=max_cycles)
        # Builtin methods are not descriptors: install the core's bound
        # methods as instance attributes so self.post(...) is one C call.
        self.post = core.post
        self.post_after = core.post_after
        self.call_at = core.call_at
        self.call_after = core.call_after
        self.post_front = core.post_front
        self.run = core.run
        self.run_until = core.run_until

    now = _core_property("now")
    _seq = _core_property("seq")
    _front_seq = _core_property("front_seq")
    _live = _core_property("live")
    events_executed = _core_property("executed")
    _ring_mask = _core_property("ring_mask")
    _running = _core_property("running")

    @property
    def _queue(self):
        return self._core.queue

    @_queue.setter
    def _queue(self, value):
        # The heap list's identity is fixed (the core walks it in C);
        # assignment replaces the contents, matching list semantics for
        # every existing caller (``__init__`` assigns ``[]``).
        queue = self._core.queue
        queue[:] = value

    @property
    def _ring(self):
        return self._core.ring

    @_ring.setter
    def _ring(self, value):
        # BatchSimulator.__init__ assigns fresh empty deques; the core's
        # 64 slot lists already exist and must keep their identity.
        if any(value):
            raise ValueError("cannot replace the compiled scheduling ring")

    # The deque-based cold helpers are re-expressed over the core's
    # list-backed ring (BatchSimulator's versions use ``popleft``).
    def _flush_ring(self) -> None:
        self._core.flush_ring()

    def _next_ring_time(self):
        return self._core.next_ring_time()


class NativeProcessor(SoaProcessor):
    """SoaProcessor whose fused step runs as a compiled kernel."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if not (
            self._fused
            and _native is not None
            and isinstance(self.sim, NativeSimulator)
        ):
            return
        from ...cache.controller import _HIT_SLOT
        from ...proc.processor import _THINK_SLOT

        backing = self.cache.array
        kernel = _native.StepKernel(
            {
                "core": self.sim._core,
                "proc": self,
                "tags": backing._tags,
                "states": backing._states,
                "written": backing._written,
                "slab": backing._slab,
                "wpb": backing._words_per_block,
                "shift": backing._block_shift,
                "imask": backing._index_mask,
                "block_mask": ~(self.space.block_bytes - 1),
                "low_mask": self.space.block_bytes - 1,
                "latency": self.cache.hit_latency,
                "cache_slots": self.cache._slots,
                "hit_load": _HIT_SLOT["load"],
                "hit_store": _HIT_SLOT["store"],
                "hit_rmw": _HIT_SLOT["rmw"],
                "proc_slots": self._slots,
                "think_slot": _THINK_SLOT,
                "issue": self._issue,
                "park": self._park,
                "retire": self._retire,
                "execute_op": self._execute_op,
            }
        )
        # Instance attributes shadow the class methods for every caller
        # (_dispatch's schedule, _mem_done's direct call, ring events).
        self._step = kernel
        self._step_fn = kernel


class NativeWormholeNetwork(SoaWormholeNetwork):
    """Wormhole mesh whose send path runs as a compiled kernel."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if _native is None or not isinstance(self.sim, NativeSimulator):
            return
        self.send = _native.NetSend(
            {
                "core": self.sim._core,
                "net": self,
                "stats": self.stats,
                "per_opcode": self.stats.per_opcode,
                "handlers": self._handlers,
                "route_cache": self._route_cache,
                "intern_route": self._intern_route,
                "link_free_at": self._link_free_at,
                "link_busy": self._link_busy,
                "hop_latency": self.hop_latency,
                "cycles_per_word": self.cycles_per_word,
                "injection_latency": self.injection_latency,
            }
        )


if _native is not None:

    class NativePacketPool(_native.Pool):
        """Compiled free-list allocator, drop-in for ``PacketPool``.

        ``protocol``/``release`` (the per-packet hot pair) are C; the
        cold ``clone`` path (fault-injector dup) stays Python.
        """

        def __init__(self, enabled: bool = True) -> None:
            _ensure_setup()
            super().__init__(enabled=enabled)

        def clone(self, packet):
            dup = self.protocol(
                packet.src,
                packet.dst,
                packet.opcode,
                packet.address,
                data=packet.data.copy() if packet.data is not None else None,
                **packet.meta,
            )
            dup.sent_at = packet.sent_at
            dup.crc = packet.crc
            return dup

else:  # pragma: no cover - extension absent

    from ...network.packet import PacketPool as NativePacketPool  # noqa: F401


def finalize(machine) -> None:
    """Install the per-node compiled receive/dispatch chains.

    Called by the machine builder after all nodes are wired.  Each
    node's network handler becomes an :class:`_native.RxChain` (NIC
    classify + cache dispatch + pool release in one C frame), and each
    base-table directory controller's ``dispatch`` becomes a
    :class:`_native.TableDispatch`.  Controllers that override
    ``dispatch`` in Python (the approx emulation) are left untouched.
    """
    if _native is None or not isinstance(machine.sim, NativeSimulator):
        return
    from ...coherence.controller import MemoryController

    handlers = getattr(machine.network, "_handlers", None)
    for node in machine.nodes:
        ctrl = node.directory_controller
        if (
            type(ctrl).dispatch is MemoryController.dispatch
            and isinstance(getattr(ctrl, "_table", None), list)
        ):
            ctrl.dispatch = _native.TableDispatch({"table": ctrl._table})
        if handlers is not None and node.node_id < len(handlers):
            nic = node.nic
            handlers[node.node_id] = _native.RxChain(
                {
                    "nic": nic,
                    "receive": nic._receive,
                    "memory_handler": nic._memory_handler,
                    "cache_rx": node.cache_controller._rx,
                    "pool": nic.pool,
                    "divert": nic.divert_to_ipi,
                }
            )


__all__ = [
    "NativePacketPool",
    "NativeProcessor",
    "NativeSimulator",
    "NativeWormholeNetwork",
    "available",
    "finalize",
    "load_status",
]
