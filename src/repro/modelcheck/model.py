"""Concrete-execution protocol model: one block, N caches, real logic.

The model deliberately does **not** re-specify the protocol in a guarded-
action language — a respecification can only prove the respecification.
Instead it wraps the *production* controllers (`repro.coherence.*`,
`repro.cache.controller`) around a capture network that records sends
instead of delivering them.  One model-checking transition is:

1. restore the concrete world (directory entry, cache arrays, MSHRs,
   software vectors, protocol extras, IPI queue) from an abstract
   :class:`~repro.modelcheck.state.MCState`;
2. perform exactly one event — deliver the head message of one
   (src, dst) channel, run one pending LimitLESS trap, or issue one
   processor op (load / store / replacement) at one cache; and
3. drain the event queue (every send lands in the capture buffer, so a
   step always terminates) and snapshot the world back to an abstract
   state, appending the captured sends to their FIFO channels.

Delivering only channel heads preserves the per-(src, dst) FIFO order the
real interconnect guarantees — the controllers' race handling (REPM
crossing INV, stray-ack filtering) is load-bearing on that order — while
still exploring every interleaving *across* channels.

One sound reduction is applied on top: a BUSY nack that reaches the head
of its channel is delivered *eagerly*, inside the step that exposed it,
instead of becoming a scheduling choice.  BUSY delivery only touches the
requester's MSHR retry bookkeeping and re-enqueues the nacked request —
no invariant reads either — and it commutes with every other enabled
action: the traffic pattern is a star (all messages into a cache come
from the home on one FIFO channel), so nothing can overtake a
head-of-channel BUSY, and the retried request lands at the tail of the
requester-to-home channel in every schedule.  Collapsing it prunes the
interleavings of BUSY/retry ping-pong, which under contention is a large
slice of the raw state space, without hiding any reachable state.

Data values are abstracted to a single word: 0 means "never written" and
``node + 1`` means "last written by ``node``", which is exactly what the
data-value invariant needs and keeps the value domain finite.

Concrete execution is memoized per *half-step*.  A transition touches
exactly one half of the machine — the home side (directory entry, memory
word, IPI queue, protocol extras) or one cache — and everything else a
component does is a captured send.  The home controller never reads
cache state and a cache never reads home state (the same fact the
snapshot diffing relies on), and the production code is deterministic
(transaction ids come from ``entry.txn``, the model pins the fifo victim
policy, nothing consults the clock), so the effect of one sub-step is a
pure function of (touched half's projection, event).  The first time a
(projection, event) pair is seen it runs on the live objects and the
(new projection, sends, error) triple is recorded; every later
occurrence — the overwhelming majority, because BFS revisits the same
local configurations from thousands of global states — is a dictionary
lookup plus tuple surgery, with no simulator involvement at all.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..cache.cache import CacheArray, CacheLine
from ..cache.controller import CacheController, Mshr, _Waiter
from ..cache.states import CacheState
from ..coherence.approx import ApproxLimitLessController, _EmulatedEntry
from ..coherence.broadcast import BroadcastController
from ..coherence.chained import ChainedController
from ..coherence.fullmap import FullMapController
from ..coherence.limited import LimitedController
from ..coherence.limitless import (
    LimitLessController,
    LimitLessSoftware,
    TrapAlwaysController,
    TrapEngine,
)
from ..coherence.states import DirState, MetaState, ProtocolError
from ..mem.address import AddressSpace
from ..mem.memory import BlockData, MainMemory
from ..network.fabric import Network
from ..network.interface import NetworkInterface
from ..network.packet import (
    CACHE_TO_MEMORY,
    DATA_BEARING_OPCODES,
    Packet,
    protocol_packet,
)
from ..sim.kernel import Simulator
from ..verify.predicates import BlockView, quiescent_problems, state_problems
from .state import MCState, Msg, canonical_key, pack_channels

#: an action is one of
#:   ("deliver", src, dst)  — hand the head of channel (src, dst) to dst
#:   ("trap",)              — run one pending LimitLESS trap at the home
#:   ("load", node)         — processor load at a node with no copy
#:   ("store", node)        — processor store at a node
#:   ("evict", node)        — conflict-replace a node's valid line
Action = tuple


class ModelInternalError(AssertionError):
    """The harness itself lost track of the world (a checker bug)."""


class _StepFault(Exception):
    """Carrier for a (possibly memoized) protocol failure, pre-formatted."""


class _NullCounter(dict):
    """A dict that swallows writes: ``c[k] += n`` reads 0 and stores
    nothing, so hot-path direct bumps cost almost nothing here."""

    def __missing__(self, key):
        return 0

    def __setitem__(self, key, value) -> None:
        pass


class _NullSlots(list):
    """A slot array that swallows writes (``slots[i] += 1`` is a no-op)
    and never runs out of cells, whatever the global registry grows to."""

    def __getitem__(self, idx):
        return 0

    def __setitem__(self, idx, value) -> None:
        pass


class _NullCounters:
    """Counter sink for model runs: statistics are meaningless across
    restored worlds, and the bump-per-event cost is pure overhead.

    ``_values`` and ``slot_view`` mirror
    :class:`repro.stats.counters.Counters`, which the controllers' hot
    paths bump directly.
    """

    def __init__(self) -> None:
        self._values = _NullCounter()
        self._slots = _NullSlots()

    def slot_view(self) -> list:
        return self._slots

    def bump(self, name: str, amount: int = 1) -> None:
        pass

    def get(self, name: str) -> int:
        return 0


class CaptureNetwork(Network):
    """A network that records sends instead of delivering them."""

    def __init__(self, sim: Simulator, n_nodes: int) -> None:
        super().__init__(sim, n_nodes)
        self.captured: list[Packet] = []

    def send(self, packet: Packet) -> None:
        self.captured.append(packet)


class ManualTrapEngine(TrapEngine):
    """A trap engine whose traps fire only when the explorer says so.

    The real engines schedule the handler on the simulator clock, which
    would glue "packet diverted" and "trap handled" into one atomic step;
    here each requested trap becomes a separate model transition.
    """

    def __init__(self) -> None:
        self.pending: deque[Callable[[], None]] = deque()

    def request_trap(self, cycles: int, callback: Callable[[], None]) -> None:
        self.pending.append(callback)

    def run_next(self) -> None:
        if not self.pending:
            raise ModelInternalError("trap fired with none pending")
        self.pending.popleft()()


@dataclass(frozen=True)
class ModelSpec:
    """How to build (and canonicalize) one protocol's model."""

    controller: type
    #: extra controller kwargs as a function of the pointer budget
    kwargs: Callable[[int], dict]
    #: does the home need a LimitLessSoftware trap handler?
    software: bool = False
    #: is the transition logic equivariant under non-home node renaming?
    #: (``limited`` falls back to a lowest-id victim and ``chained`` walks
    #: targets in id order, so both are explored without reduction)
    symmetric: bool = True


SPECS: dict[str, ModelSpec] = {
    "fullmap": ModelSpec(FullMapController, lambda p: {}),
    "limited": ModelSpec(
        LimitedController,
        lambda p: {"pointer_capacity": p, "victim_policy": "fifo"},
        symmetric=False,
    ),
    "limited_broadcast": ModelSpec(
        BroadcastController, lambda p: {"pointer_capacity": p}
    ),
    "limitless": ModelSpec(
        LimitLessController,
        lambda p: {"pointer_capacity": p},
        software=True,
    ),
    "limitless_approx": ModelSpec(
        ApproxLimitLessController,
        lambda p: {"hw_pointers": p, "ts": 1, "trap_engine": None},
    ),
    "chained": ModelSpec(ChainedController, lambda p: {}, symmetric=False),
    "trap_always": ModelSpec(
        TrapAlwaysController,
        lambda p: {"pointer_capacity": p},
        software=True,
    ),
}


def checkable_protocols() -> dict[str, ModelSpec]:
    """Registry protocols plus the deliberately broken mutants."""
    from .mutants import MUTANTS

    merged = dict(SPECS)
    merged.update(MUTANTS)
    return merged


def model_spec(name: str) -> ModelSpec:
    specs = checkable_protocols()
    try:
        return specs[name]
    except KeyError:
        raise ValueError(
            f"unknown protocol {name!r}; choose from {sorted(specs)}"
        ) from None


@dataclass
class StepResult:
    """What one applied transition did (for trace rendering)."""

    action: Action
    state: Optional[MCState]
    error: Optional[str] = None
    #: the message consumed by a "deliver" action: (src, dst, op, txn, data)
    delivered: Optional[tuple] = None
    #: messages launched during the step, in send order
    sent: list = field(default_factory=list)
    #: BUSY nacks auto-delivered by the eager collapse, same shape
    auto: list = field(default_factory=list)


_IDLE_DIR_STATES = ("READ_ONLY", "READ_WRITE")


class ProtocolModel:
    """One protocol's single-block world plus the snapshot/restore logic."""

    def __init__(self, protocol: str, n_caches: int = 3, *, pointers: int = 1):
        if n_caches < 2:
            raise ValueError("need at least two caches to share a block")
        self.protocol = protocol
        self.n_nodes = n_caches
        self.pointers = pointers
        self.spec = model_spec(protocol)
        self.symmetric = self.spec.symmetric
        if protocol == "limited" and pointers == 1:
            # Dir_1NB is node-symmetric after all: overflow leaves at most
            # one evictable pointer, so the fifo victim choice (and its
            # lowest-id fallback) is forced — no transition consults a
            # concrete node id.  With >= 2 pointers the fallback can pick
            # among several candidates by id, so the spec default stands.
            self.symmetric = True

        self.sim = Simulator()
        self.space = AddressSpace(
            n_nodes=n_caches, block_bytes=16, segment_bytes=1 << 16
        )
        self.block = self.space.address(0, 0x100)
        self.net = CaptureNetwork(self.sim, n_caches)
        self.nics = [
            NetworkInterface(self.sim, i, self.net) for i in range(n_caches)
        ]
        self.memory = MainMemory(self.space, 0)
        null_counters = _NullCounters()
        self.controller = self.spec.controller(
            self.sim,
            0,
            self.space,
            self.memory,
            self.nics[0],
            dir_occupancy=1,
            counters=null_counters,
            **{**self.spec.kwargs(pointers), **self._controller_extra_kwargs()},
        )
        self.engine: ManualTrapEngine | None = None
        self.software: LimitLessSoftware | None = None
        if self.spec.software:
            self.engine = ManualTrapEngine()
            self.software = LimitLessSoftware(
                self.controller, self.nics[0], self.engine, ts=1
            )
        self.caches = [
            CacheController(
                self.sim,
                i,
                self.space,
                CacheArray(self.space, 1),
                self.nics[i],
                hit_latency=1,
                retry_base=1,
                retry_cap=1,
                counters=null_counters,
                **self._cache_extra_kwargs(),
            )
            for i in range(n_caches)
        ]
        self.entry = self.controller.directory.entry(self.block)
        #: packets are immutable once built (the capture network never
        #: stamps them), so identical messages reuse one object
        self._packet_cache: dict[tuple[Msg, int], Packet] = {}
        #: half-step memos (see module docstring): (projection, event) ->
        #: (new projection, sends, error)
        self._home_memo: dict = {}
        self._cache_memo: dict = {}
        #: the MCState the live objects currently embody (None = unknown,
        #: e.g. mid-step or after a failed step) — lets _restore diff
        #: instead of rebuilding the whole world for every transition
        self._world: Optional[MCState] = None
        # Snapshot the pristine world once: the live objects are reused
        # (and mutated) by every apply(), so this cannot be recomputed.
        self._initial = self._snapshot({})
        self._world = self._initial

    def _controller_extra_kwargs(self) -> dict:
        """Extra directory-controller kwargs (hook for fault models)."""
        return {}

    def _cache_extra_kwargs(self) -> dict:
        """Extra cache-controller kwargs (hook for fault models)."""
        return {}

    # ------------------------------------------------------------------
    # Abstraction helpers
    # ------------------------------------------------------------------

    def _block_data(self, value: int) -> BlockData:
        data = BlockData(self.space.words_per_block)
        data.words[0] = value
        return data

    def _abstract_data(self, data: BlockData | None) -> Optional[int]:
        if data is None:
            return None
        if any(data.words[1:]):
            raise ModelInternalError(f"non-abstract block data {data.words}")
        return data.words[0]

    def _msg(self, packet: Packet) -> Msg:
        extra = set(packet.meta) - {"txn"}
        if extra:
            raise ModelInternalError(f"unmodelled packet meta {extra}")
        return (
            packet.src,
            str(packet.opcode),  # canonical states spell opcodes as names
            packet.meta.get("txn"),
            self._abstract_data(packet.data),
        )

    def _packet(self, msg: Msg, dst: int) -> Packet:
        packet = self._packet_cache.get((msg, dst))
        if packet is not None:
            return packet
        src, opcode, txn, value = msg
        data = (
            self._block_data(value) if opcode in DATA_BEARING_OPCODES else None
        )
        if opcode in ("INV", "ACKC", "UPDATE"):
            packet = protocol_packet(
                src, dst, opcode, self.block, data=data, txn=txn
            )
        else:
            packet = protocol_packet(src, dst, opcode, self.block, data=data)
        self._packet_cache[(msg, dst)] = packet
        return packet

    def store_value(self, node: int) -> int:
        return node + 1

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------

    def initial_state(self) -> MCState:
        return self._initial

    def _snapshot_cache(self, node: int) -> tuple:
        cc = self.caches[node]
        line = cc.array.lookup(self.block)
        mshr = cc._mshrs.get(self.block)
        if mshr is not None and len(mshr.waiters) != 1:
            raise ModelInternalError(
                f"node {node} MSHR carries {len(mshr.waiters)} waiters"
            )
        return (
            line.state.name if line else "INVALID",
            self._abstract_data(line.data) if line else 0,
            mshr.need_write if mshr else None,
        )

    def _home_of_live(self) -> tuple:
        """The home-side projection of the live objects, in MCState field
        order with ``caches`` and ``channels`` omitted (indices 0-9 then
        12-15): a full state is ``MCState(*h[:10], caches, channels,
        *h[10:])``."""
        entry = self.entry
        ipi = tuple(self._msg(p) for p in self.nics[0]._ipi_queue)
        if self.engine is not None and len(self.engine.pending) != len(ipi):
            raise ModelInternalError("trap queue out of sync with IPI queue")
        return (
            entry.state.name,
            frozenset(entry.sharers),
            entry.local_bit,
            entry.requester,
            frozenset(entry.ack_waiting),
            entry.txn,
            entry.meta.name,
            entry.trap_mode.name if entry.trap_mode is not None else None,
            tuple(self._msg(p) for p in entry.pending),
            self._abstract_data(self.memory.block(self.block)),
            ipi,
            *self._snapshot_extras(),
        )

    def _snapshot(self, channels: dict[tuple[int, int], list[Msg]]) -> MCState:
        """Abstract the whole live world (used once, for the pristine
        initial state; transitions re-read only the half they touched)."""
        for packet in self.net.captured:
            channels.setdefault((packet.src, packet.dst), []).append(
                self._msg(packet)
            )
        self.net.captured.clear()
        caches = tuple(
            self._snapshot_cache(node) for node in range(self.n_nodes)
        )
        home = self._home_of_live()
        return MCState(*home[:10], caches, pack_channels(channels), *home[10:])

    def _snapshot_extras(self):
        node_sets, node_lists, scalars = [], [], []
        c = self.controller
        if self.software is not None:
            node_sets.append(
                frozenset(self.software.vectors.get(self.block, ()))
            )
        if isinstance(c, LimitedController):
            node_lists.append(tuple(c._fifo_order.get(self.block, ())))
        if isinstance(c, ChainedController):
            node_lists.append(tuple(c._inv_queue.get(self.block, ())))
        if isinstance(c, BroadcastController):
            scalars.append(self.block in c._broadcast)
        if isinstance(c, ApproxLimitLessController):
            emu = c._emulated.get(self.block)
            scalars.extend(
                (emu.hw_count, emu.trap_on_write) if emu else (0, False)
            )
        return tuple(node_sets), tuple(node_lists), tuple(scalars)

    def _restore(self, s: MCState) -> None:
        """Make the live objects embody ``s``.

        When the current world is known (``self._world``), only the
        fields that differ are rebuilt — in BFS order most transitions
        are re-applied from the state just expanded, so the diff is one
        cache or the entry, not the whole machine.  Concrete details the
        abstraction deliberately ignores (the written bit, MSHR
        timestamps, peak-sharer stats) may then survive a diff restore;
        all of them are write-only for the protocol logic.
        """
        world = self._world
        if world is s:
            return
        if world is None:
            # A failed step may abort mid-drain; scrap leftover events.
            self.sim._queue.clear()
            self.net.captured.clear()
        if world is None or world.mem != s.mem:
            self.memory.block(self.block).words = self._block_data(s.mem).words
        entry = self.entry
        if world is None or world.dir_state != s.dir_state:
            entry.state = DirState[s.dir_state]
        if world is None or world.sharers != s.sharers:
            entry.sharers = set(s.sharers)
        if world is None or world.local_bit != s.local_bit:
            entry.local_bit = s.local_bit
        if world is None or world.requester != s.requester:
            entry.requester = s.requester
        if world is None or world.ack_waiting != s.ack_waiting:
            entry.ack_waiting = set(s.ack_waiting)
        if world is None or world.txn != s.txn:
            entry.txn = s.txn
        if world is None or world.meta != s.meta:
            entry.meta = MetaState[s.meta]
        if world is None or world.trap_mode != s.trap_mode:
            entry.trap_mode = (
                MetaState[s.trap_mode] if s.trap_mode is not None else None
            )
        if world is None or world.pending != s.pending:
            entry.pending = deque(self._packet(m, 0) for m in s.pending)
        entry.peak_sharers = 0
        if world is None or (
            (world.node_sets, world.node_lists, world.scalars)
            != (s.node_sets, s.node_lists, s.scalars)
        ):
            self._restore_extras(s)
        for node, view in enumerate(s.caches):
            if world is not None and world.caches[node] == view:
                continue
            self._restore_cache_view(node, view)
        if world is None or world.ipi != s.ipi:
            nic0 = self.nics[0]
            nic0._ipi_queue.clear()
            if self.engine is not None:
                self.engine.pending.clear()
            for msg in s.ipi:
                # Replaying through divert_to_ipi re-arms the trap
                # handler, so the manual engine holds one pending trap
                # per queued packet.
                nic0.divert_to_ipi(self._packet(msg, 0))

    def _restore_cache_view(self, node: int, view: tuple) -> None:
        """Make one live cache embody its abstract view (first 3 fields:
        line state name, data value, MSHR need_write-or-None; fault
        models append more)."""
        line_state, value, need_write = view[0], view[1], view[2]
        cc = self.caches[node]
        cc._mshrs.clear()
        cc.array._lines.clear()
        if line_state != "INVALID":
            # written is write-only bookkeeping (nothing reads it
            # back), so the restored world may leave it stale
            cc.array._lines[cc.array.index_of(self.block)] = CacheLine(
                self.block,
                CacheState[line_state],
                self._block_data(value),
            )
        if need_write is not None:
            kind = "store" if need_write else "load"
            cc._mshrs[self.block] = Mshr(
                self.block,
                need_write,
                self.sim.now,
                [self._waiter(node, kind)],
            )

    def _restore_extras(self, s: MCState) -> None:
        c = self.controller
        sets, lists = list(s.node_sets), list(s.node_lists)
        if self.software is not None:
            vec = sets.pop(0)
            self.software.vectors.clear()
            if vec:
                self.software.vectors[self.block] = set(vec)
        if isinstance(c, LimitedController):
            c._fifo_order.clear()
            c._fifo_order[self.block] = list(lists.pop(0))
        if isinstance(c, ChainedController):
            c._inv_queue.clear()
            queue = list(lists.pop(0))
            if queue:
                c._inv_queue[self.block] = queue
        if isinstance(c, BroadcastController):
            c._broadcast.clear()
            if s.scalars[0]:
                c._broadcast.add(self.block)
        if isinstance(c, ApproxLimitLessController):
            hw_count, trap_on_write = s.scalars[-2], s.scalars[-1]
            c._emulated.clear()
            c._emulated[self.block] = _EmulatedEntry(hw_count, trap_on_write)

    def _waiter(self, node: int, kind: str) -> _Waiter:
        payload = self.store_value(node) if kind in ("store", "rmw") else None
        return _Waiter(kind, self.block, payload, lambda value: None, self.sim.now)

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------

    def enabled_actions(self, s: MCState) -> list[Action]:
        actions: list[Action] = [
            ("deliver", src, dst) for (src, dst), msgs in s.channels if msgs
        ]
        if s.ipi:
            actions.append(("trap",))
        for node, view in enumerate(s.caches):
            line_state, value, mshr = view[0], view[1], view[2]
            if mshr is None:
                if line_state == "INVALID":
                    actions.append(("load", node))
                # A store that would change nothing (already the
                # exclusive owner of its own value) is a pure self-loop.
                if not (
                    line_state == "READ_WRITE"
                    and value == self.store_value(node)
                ):
                    actions.append(("store", node))
            if line_state != "INVALID":
                actions.append(("evict", node))
        return actions

    @staticmethod
    def _pop_head(chan: dict, key: tuple[int, int]) -> Msg:
        queue = chan.get(key)
        if not queue:
            raise ModelInternalError(f"empty channel {key[0]}->{key[1]}")
        if len(queue) == 1:
            del chan[key]
        else:
            chan[key] = queue[1:]
        return queue[0]

    @staticmethod
    def _merge_sends(chan: dict, sends: tuple, sent_log: list) -> None:
        for dst, msg in sends:
            key = (msg[0], dst)
            queue = chan.get(key)
            chan[key] = (msg,) if queue is None else queue + (msg,)
            sent_log.append((msg[0], dst, *msg[1:]))

    def apply(self, s: MCState, action: Action) -> StepResult:
        """Run one transition from ``s``; never raises on protocol faults."""
        result = StepResult(action=action, state=None)
        chan = dict(s.channels)
        caches = list(s.caches)
        home = s[:10] + s[12:]
        try:
            kind = action[0]
            if kind == "deliver":
                _, src, dst = action
                msg = self._pop_head(chan, (src, dst))
                result.delivered = (src, dst, *msg[1:])
                if msg[1] in CACHE_TO_MEMORY:
                    home, sends = self._home_step(home, caches, ("deliver", msg))
                else:
                    caches[dst], sends = self._cache_step(
                        home, caches, dst, ("deliver", msg)
                    )
            elif kind == "trap":
                home, sends = self._home_step(home, caches, ("trap", None))
            elif kind in ("load", "store", "evict"):
                node = action[1]
                caches[node], sends = self._cache_step(
                    home, caches, node, (kind, None)
                )
            else:
                home, sends = self._apply_extra(home, caches, action)
            self._merge_sends(chan, sends, result.sent)
            # Collapse BUSY/retry ping-pong: deliver any BUSY that sits
            # at the head of a channel inside this same step (sound —
            # see the module docstring).
            while True:
                head_busy = None
                for key, queue in chan.items():
                    if queue[0][1] == "BUSY":
                        head_busy = key
                        break
                if head_busy is None:
                    break
                msg = self._pop_head(chan, head_busy)
                result.auto.append((*head_busy, *msg[1:]))
                caches[head_busy[1]], sends = self._cache_step(
                    home, caches, head_busy[1], ("deliver", msg)
                )
                self._merge_sends(chan, sends, result.sent)
            result.state = MCState(
                *home[:10],
                tuple(caches),
                tuple(sorted(chan.items())),
                *home[10:],
            )
        except _StepFault as exc:
            result.error = exc.args[0]
        except (ProtocolError, RuntimeError, AssertionError) as exc:
            result.error = f"{type(exc).__name__}: {exc}"
        return result

    def _apply_extra(self, home: tuple, caches: list, action: Action) -> tuple:
        """Hook for subclass-specific actions; returns (home, sends) and
        may update ``caches`` in place."""
        raise ModelInternalError(f"unknown action {action!r}")

    def _home_step(self, home: tuple, caches: list, op: tuple) -> tuple:
        memo = self._home_memo
        hit = memo.get((home, op))
        if hit is None:
            hit = self._concrete_step(home, caches, 0, op, home_side=True)
            memo[(home, op)] = hit
        new_home, sends, error = hit
        if error is not None:
            raise _StepFault(error)
        return new_home, sends

    def _cache_step(self, home: tuple, caches: list, node: int, op: tuple) -> tuple:
        memo = self._cache_memo
        key = (node, caches[node], op)
        hit = memo.get(key)
        if hit is None:
            hit = self._concrete_step(home, caches, node, op, home_side=False)
            memo[key] = hit
        new_view, sends, error = hit
        if error is not None:
            raise _StepFault(error)
        return new_view, sends

    def _concrete_step(
        self, home: tuple, caches: list, node: int, op: tuple, *, home_side: bool
    ) -> tuple:
        """Run one sub-step on the live objects and abstract the touched
        half back out.  Channels live only in the abstract state, so the
        assembled restore target can carry an empty channel field."""
        cur = MCState(*home[:10], tuple(caches), (), *home[10:])
        self._restore(cur)
        self._world = None  # about to mutate; unknown until re-read
        kind, msg = op
        try:
            if kind == "deliver":
                self.nics[node]._receive(self._packet(msg, node))
            elif kind == "trap":
                assert self.engine is not None
                self.engine.run_next()
            elif kind in ("load", "store"):
                value = self.store_value(node) if kind == "store" else None
                self.caches[node].access(kind, self.block, value, lambda v: None)
            elif kind == "evict":
                line = self.caches[node].array.lookup(self.block)
                if line is None:
                    raise ModelInternalError(f"evict at {node} with no line")
                self.caches[node]._evict(line)
            elif kind == "retx_req":
                if not self.caches[node].retransmit_request(self.block):
                    raise ModelInternalError(
                        f"retx_req at {node} with nothing to resend"
                    )
            elif kind == "retx_wb":
                if not self.caches[node].retransmit_writeback(self.block):
                    raise ModelInternalError(
                        f"retx_wb at {node} with an empty write-back buffer"
                    )
            elif kind == "retx_dir":
                self.controller.retransmit_invalidations(self.entry)
            else:
                raise ModelInternalError(f"unknown sub-step {kind!r}")
            self._drain()
            sends = tuple((p.dst, self._msg(p)) for p in self.net.captured)
            self.net.captured.clear()
            if home_side:
                new_half = self._home_of_live()
                world = MCState(*new_half[:10], tuple(caches), (), *new_half[10:])
            else:
                new_half = self._snapshot_cache(node)
                post = list(caches)
                post[node] = new_half
                world = MCState(*home[:10], tuple(post), (), *home[10:])
        except (ProtocolError, RuntimeError, AssertionError) as exc:
            # The live world is mid-step garbage; _world stays None so the
            # next restore rebuilds from scratch (and drops stale events).
            return (None, (), f"{type(exc).__name__}: {exc}")
        self._world = world
        return (new_half, sends, None)

    def _drain(self) -> None:
        self.sim.run()
        if self.sim._queue:
            raise ProtocolError("event queue failed to drain")

    # ------------------------------------------------------------------
    # Judgement
    # ------------------------------------------------------------------

    def view_of(self, s: MCState) -> BlockView:
        extras = self._extras_view(s)
        recorded: set[int] | None
        if extras.get("broadcast_armed"):
            recorded = None
        else:
            recorded = set(s.sharers)
            if s.local_bit:
                recorded.add(0)
            recorded |= extras.get("vector", set())
        inflight_inv = {
            dst
            for (_, dst), msgs in s.channels
            for m in msgs
            if m[1] == "INV"
        }
        return BlockView(
            block=self.block,
            dir_state=DirState[s.dir_state],
            meta=MetaState[s.meta],
            trap_mode=MetaState[s.trap_mode] if s.trap_mode is not None else None,
            recorded=recorded,
            awaited=set(s.ack_waiting) | extras.get("chained_queue", set()),
            requester=s.requester,
            cached={
                node: (CacheState[view[0]], view[1])
                for node, view in enumerate(s.caches)
                if view[0] != "INVALID"
            },
            memory_data=s.mem,
            pending_packets=len(s.pending),
            inflight_inv_targets=inflight_inv,
            traps_pending=len(s.ipi),
            software_vector=(
                extras["vector"] if self.software is not None else None
            ),
        )

    def _extras_view(self, s: MCState) -> dict:
        extras: dict = {}
        sets, lists = list(s.node_sets), list(s.node_lists)
        if self.software is not None:
            extras["vector"] = set(sets.pop(0))
        if isinstance(self.controller, ChainedController):
            extras["chained_queue"] = set(lists[-1])
        if isinstance(self.controller, BroadcastController):
            extras["broadcast_armed"] = bool(s.scalars[0])
        return extras

    def state_problems(self, s: MCState, predicates=None) -> list[str]:
        """Invariant failures in ``s`` (empty list = state is healthy)."""
        view = self.view_of(s)
        if predicates is not None:
            problems: list[str] = []
            for predicate in predicates:
                problems += predicate(view)
            return problems
        problems = state_problems(view, strict_vector=True)
        if self.is_quiescent(s):
            problems += quiescent_problems(view)
        return problems

    def _is_busy(self, s: MCState) -> bool:
        """Boolean twin of :meth:`_busy_reasons` — called for every state,
        so it must not build the explanation strings."""
        if (
            s.dir_state not in _IDLE_DIR_STATES
            or s.ack_waiting
            or s.pending
            or s.meta == "TRANS_IN_PROGRESS"
        ):
            return True
        for view in s.caches:
            if view[2] is not None:
                return True
        if isinstance(self.controller, ChainedController) and s.node_lists[-1]:
            return True
        return False

    def _busy_reasons(self, s: MCState) -> list[str]:
        reasons = []
        for node, view in enumerate(s.caches):
            if view[2] is not None:
                reasons.append(f"cache {node} has an open miss")
        if s.dir_state not in _IDLE_DIR_STATES:
            reasons.append(f"directory stuck in {s.dir_state}")
        if s.ack_waiting:
            reasons.append(
                f"acknowledgments outstanding from {sorted(s.ack_waiting)}"
            )
        if s.meta == "TRANS_IN_PROGRESS":
            reasons.append("entry interlocked (TRANS_IN_PROGRESS)")
        if s.pending:
            reasons.append(f"{len(s.pending)} packets queued at the entry")
        if isinstance(self.controller, ChainedController) and s.node_lists[-1]:
            reasons.append("chained invalidation walk unfinished")
        return reasons

    def is_quiescent(self, s: MCState) -> bool:
        return not s.channels and not s.ipi and not self._is_busy(s)

    def deadlock_problems(self, s: MCState) -> list[str]:
        """Non-quiescent but nothing in flight: no transition can help."""
        if s.channels or s.ipi:
            return []
        return self._busy_reasons(s)

    def key(self, s: MCState) -> MCState:
        return canonical_key(s, symmetric=self.symmetric)
