"""Exhaustive (and random-walk) exploration of a protocol model.

The BFS frontier holds *concrete* abstract states while the visited set
holds their canonical keys, so each symmetry/txn-renumbering equivalence
class is expanded exactly once — but every trace the explorer can hand to
the counterexample printer is a genuine concrete execution.

Because the parent of each class is recorded at first discovery, walking
the parent chain back to the initial state and replaying it through the
model reproduces the exact witness execution; BFS order makes that trace
a *shortest* path to the violation.

Violations come in three kinds:

* ``invariant`` — a reachable state fails a predicate from
  :mod:`repro.verify.predicates` (checked once per equivalence class);
* ``deadlock`` — a non-quiescent state with nothing in flight, nothing
  trapped, and therefore no transition that can ever finish the open
  work; and
* ``error`` — the production code itself raised (a ProtocolError, a
  failed internal assertion, an unroutable packet) while applying a
  transition.
"""

from __future__ import annotations

import random
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from .model import Action, ProtocolModel
from .state import MCState, renumber_txns


@dataclass
class Violation:
    """One property failure plus the shortest action trace reaching it."""

    kind: str  # "invariant" | "deadlock" | "error"
    problems: list[str]
    #: actions from the initial state; replay them for the full story
    actions: list[Action]


@dataclass
class CheckResult:
    """Outcome of one model-checking run."""

    protocol: str
    n_caches: int
    mode: str  # "exhaustive" | "walk"
    states: int
    transitions: int
    violation: Optional[Violation]
    elapsed: float
    complete: bool = True  # False when max_states truncated the search

    @property
    def ok(self) -> bool:
        return self.violation is None

    def summary(self) -> str:
        verdict = "PASS" if self.ok else f"FAIL ({self.violation.kind})"
        scope = "all reachable states" if self.complete else "TRUNCATED search"
        return (
            f"{self.protocol:<18} caches={self.n_caches} {self.mode:<10} "
            f"{self.states:>7} states {self.transitions:>8} transitions "
            f"{self.elapsed:6.2f}s  {verdict}  [{scope}]"
        )


Predicates = Optional[Sequence[Callable]]


def _trace_to(
    parents: dict[MCState, Optional[tuple[MCState, Action]]], key: MCState
) -> list[Action]:
    actions: list[Action] = []
    cursor: Optional[MCState] = key
    while True:
        link = parents[cursor]
        if link is None:
            break
        cursor, action = link
        actions.append(action)
    actions.reverse()
    return actions


def explore(
    model: ProtocolModel,
    *,
    max_states: int = 200_000,
    predicates: Predicates = None,
    check_deadlock: bool = True,
) -> CheckResult:
    """Breadth-first exhaustive check of every reachable state."""
    started = time.perf_counter()
    init = model.initial_state()
    init_key = model.key(init)
    parents: dict[MCState, Optional[tuple[MCState, Action]]] = {init_key: None}
    frontier: deque[tuple[MCState, MCState]] = deque([(init, init_key)])
    # Independent actions commute, so BFS reaches the same *concrete*
    # successor along many orders (diamonds); canonicalization is the
    # hot path, so cache it per concrete state.
    key_memo: dict[MCState, MCState] = {}
    states = 0
    transitions = 0
    complete = True

    def finish(violation: Optional[Violation]) -> CheckResult:
        return CheckResult(
            protocol=model.protocol,
            n_caches=model.n_nodes,
            mode="exhaustive",
            states=states,
            transitions=transitions,
            violation=violation,
            elapsed=time.perf_counter() - started,
            complete=complete and violation is None,
        )

    while frontier:
        state, key = frontier.popleft()
        states += 1
        problems = model.state_problems(state, predicates)
        if problems:
            return finish(Violation("invariant", problems, _trace_to(parents, key)))
        if check_deadlock:
            stuck = model.deadlock_problems(state)
            if stuck:
                return finish(Violation("deadlock", stuck, _trace_to(parents, key)))
        if states >= max_states:
            complete = False
            break
        for action in model.enabled_actions(state):
            transitions += 1
            step = model.apply(state, action)
            if step.error is not None:
                return finish(
                    Violation(
                        "error",
                        [step.error],
                        _trace_to(parents, key) + [action],
                    )
                )
            if step.state == state:  # self-loop (stray drop, nack cycle)
                continue
            # Renumbering is coordinate-preserving (node ids untouched),
            # so the frontier can hold the renumbered twin: actions and
            # trace replay stay valid, canonicalization hits its fast
            # path, and the model's half-step memos collide more often.
            succ = renumber_txns(step.state)
            next_key = key_memo.get(succ)
            if next_key is None:
                next_key = model.key(succ)
                if len(key_memo) > 2_000_000:  # bound the memo's memory
                    key_memo.clear()
                key_memo[succ] = next_key
            if next_key not in parents:
                parents[next_key] = (key, action)
                frontier.append((succ, next_key))
    return finish(None)


def random_walk(
    model: ProtocolModel,
    *,
    steps: int = 10_000,
    seed: int = 0,
    predicates: Predicates = None,
    check_deadlock: bool = True,
) -> CheckResult:
    """Fallback for configurations too large to enumerate: one long
    random schedule, invariants checked after every transition."""
    started = time.perf_counter()
    rng = random.Random(seed)
    state = model.initial_state()
    actions: list[Action] = []
    seen = {model.key(state)}
    transitions = 0

    def finish(violation: Optional[Violation]) -> CheckResult:
        return CheckResult(
            protocol=model.protocol,
            n_caches=model.n_nodes,
            mode="walk",
            states=len(seen),
            transitions=transitions,
            violation=violation,
            elapsed=time.perf_counter() - started,
            complete=False,  # a walk never proves exhaustiveness
        )

    for _ in range(steps):
        problems = model.state_problems(state, predicates)
        if problems:
            return finish(Violation("invariant", problems, actions))
        if check_deadlock:
            stuck = model.deadlock_problems(state)
            if stuck:
                return finish(Violation("deadlock", stuck, actions))
        choices = model.enabled_actions(state)
        if not choices:
            break
        action = rng.choice(choices)
        transitions += 1
        step = model.apply(state, action)
        if step.error is not None:
            return finish(Violation("error", [step.error], actions + [action]))
        actions.append(action)
        state = step.state
        seen.add(model.key(state))
    return finish(None)
