"""Model checking under message faults: drop/duplicate + recovery actions.

:class:`FaultyProtocolModel` extends the concrete-execution model with a
bounded *fault budget*: at any point where a channel is non-empty the
adversary may spend one unit to **drop** the channel head or **duplicate**
it (the copy is inserted right behind the original, matching what a
duplicating fabric that preserves per-(src, dst) FIFO order can do).  The
budget rides along in the abstract state (the last ``scalars`` slot) and
is stripped before any concrete half-step, so the memoization and the
snapshot/restore machinery stay exactly as budget-free as the base model.

Two modes:

* ``hardened=True`` (default) builds the production controllers with
  ``fault_tolerant=True`` — the configuration the runtime fault-injection
  campaigns use.  Timers stay off (``request_timeout=0``/``inv_timeout=0``
  — real timers would post events the drain step cannot absorb); instead
  each timeout the runtime would take becomes an explicit *recovery
  action* calling the same public entry points the timers call:

  - ``("retx_req", node)``  → :meth:`CacheController.retransmit_request`
  - ``("retx_wb", node)``   → :meth:`CacheController.retransmit_writeback`
  - ``("retx_dir",)``       → :meth:`MemoryController.retransmit_invalidations`

  Recovery actions are enabled only when nothing is in flight (all
  channels and the IPI queue empty): a retransmission while the original
  is still travelling is behaviourally a duplicate, which the ``dup``
  action already explores, and the quiesce gate is exactly the situation
  where a timeout is *needed* for liveness.  A state whose open work has
  an enabled recovery action is not a deadlock — the runtime timer would
  fire — so :meth:`deadlock_problems` reports only states that recovery
  cannot help.

  Hardened cache views grow a fourth slot for the write-back buffer
  (``None`` or ``(opcode, txn, value)``), because buffered dirty data is
  protocol state that must survive snapshot/restore.  Node-symmetry
  reduction is disabled (the wb slot is not wired into the permutation
  code); fault budgets are small enough that the raw space stays
  tractable.

* ``hardened=False`` leaves the controllers exactly as shipped before
  fault tolerance.  One dropped or duplicated packet then demonstrably
  kills the baseline protocol (a deadlock or a fatal stray), which is
  the checker's proof that the hardening is load-bearing.

``limitless_approx`` is not supported: its emulated-pointer scalars are
read positionally from the *end* of ``scalars``, where the budget lives.
"""

from __future__ import annotations

from ..cache.controller import _WbEntry
from .model import Action, ModelInternalError, ProtocolModel, StepResult
from .state import MCState


class FaultyProtocolModel(ProtocolModel):
    """A protocol model with a bounded drop/duplicate fault adversary."""

    def __init__(
        self,
        protocol: str,
        n_caches: int = 3,
        *,
        pointers: int = 1,
        faults: int = 1,
        hardened: bool = True,
    ):
        if protocol == "limitless_approx":
            raise ValueError(
                "fault checking does not support limitless_approx "
                "(its emulated-pointer scalars clash with the budget slot)"
            )
        if faults < 0:
            raise ValueError("fault budget must be >= 0")
        self.hardened = hardened
        super().__init__(protocol, n_caches, pointers=pointers)
        # The wb slot in cache views is not wired into permute_state.
        self.symmetric = False
        self.faults = faults
        self._initial = self._with_budget(self._initial, faults)

    # -- controller construction ---------------------------------------

    def _controller_extra_kwargs(self) -> dict:
        if not self.hardened:
            return {}
        # inv_timeout stays 0: retransmission is an explicit action.
        return {"fault_tolerant": True}

    def _cache_extra_kwargs(self) -> dict:
        if not self.hardened:
            return {}
        return {"fault_tolerant": True}

    # -- budget plumbing ------------------------------------------------

    @staticmethod
    def _strip(s: MCState) -> tuple[MCState, int]:
        return s._replace(scalars=s.scalars[:-1]), s.scalars[-1]

    @staticmethod
    def _with_budget(s: MCState, budget: int) -> MCState:
        return s._replace(scalars=s.scalars + (budget,))

    # -- abstraction of the hardened extras -----------------------------

    def _snapshot_cache(self, node: int) -> tuple:
        view = super()._snapshot_cache(node)
        if not self.hardened:
            return view
        wb = self.caches[node]._wb_buffer.get(self.block)
        if wb is None:
            return view + (None,)
        return view + ((wb.opcode, wb.txn, self._abstract_data(wb.data)),)

    def _restore_cache_view(self, node: int, view: tuple) -> None:
        super()._restore_cache_view(node, view)
        if not self.hardened:
            return
        cc = self.caches[node]
        cc._wb_buffer.clear()
        wb = view[3]
        if wb is not None:
            opcode, txn, value = wb
            cc._wb_buffer[self.block] = _WbEntry(
                self._block_data(value), opcode, txn
            )
            mshr = cc._mshrs.get(self.block)
            if mshr is not None:
                # A request opened while the buffer holds the block is
                # always held (re-requesting before the DACK could be
                # granted from stale memory), so the flag is derived.
                mshr.wb_blocked = True

    def _snapshot_extras(self):
        node_sets, node_lists, scalars = super()._snapshot_extras()
        if self.hardened:
            pend = self.controller._pending_evictions.get(self.block, ())
            node_sets = node_sets + (frozenset(pend),)
        return node_sets, node_lists, scalars

    def _restore_extras(self, s: MCState) -> None:
        super()._restore_extras(s)
        if self.hardened:
            c = self.controller
            c._pending_evictions.clear()
            pend = s.node_sets[-1]
            if pend:
                c._pending_evictions[self.block] = set(pend)

    # -- transitions -----------------------------------------------------

    def enabled_actions(self, s: MCState) -> list[Action]:
        base, budget = self._strip(s)
        actions = super().enabled_actions(base)
        if budget > 0:
            for (src, dst), msgs in base.channels:
                if msgs:
                    actions.append(("drop", src, dst))
                    actions.append(("dup", src, dst))
        if self.hardened and not base.channels and not base.ipi:
            actions.extend(self._recovery_actions(base))
        return actions

    def _recovery_actions(self, s: MCState) -> list[Action]:
        """Timeout-driven retransmissions available in a drained state."""
        acts: list[Action] = []
        for node, view in enumerate(s.caches):
            wb = view[3]
            if wb is not None:
                acts.append(("retx_wb", node))
            elif view[2] is not None:
                acts.append(("retx_req", node))
        if (
            s.ack_waiting
            and s.meta != "TRANS_IN_PROGRESS"
            and s.dir_state in ("READ_TRANSACTION", "WRITE_TRANSACTION")
        ):
            acts.append(("retx_dir",))
        return acts

    def apply(self, s: MCState, action: Action) -> StepResult:
        base, budget = self._strip(s)
        kind = action[0]
        if kind in ("drop", "dup"):
            if budget <= 0:
                raise ModelInternalError("fault action with no budget left")
            result = StepResult(action=action, state=None)
            chan = dict(base.channels)
            msg = self._pop_head(chan, (action[1], action[2]))
            result.delivered = (action[1], action[2], *msg[1:])
            if kind == "dup":
                key = (action[1], action[2])
                queue = chan.get(key)
                # The copy lands right behind the original: FIFO order
                # between distinct messages is never perturbed.
                chan[key] = (msg, msg) if queue is None else (msg, msg) + queue
            result.state = self._with_budget(
                base._replace(channels=tuple(sorted(chan.items()))), budget - 1
            )
            return result
        result = super().apply(base, action)
        if result.state is not None:
            result.state = self._with_budget(result.state, budget)
        return result

    def _apply_extra(self, home: tuple, caches: list, action: Action) -> tuple:
        kind = action[0]
        if kind == "retx_dir":
            return self._home_step(home, caches, ("retx_dir", None))
        if kind in ("retx_req", "retx_wb"):
            node = action[1]
            caches[node], sends = self._cache_step(
                home, caches, node, (kind, None)
            )
            return home, sends
        return super()._apply_extra(home, caches, action)

    # -- judgement --------------------------------------------------------

    def view_of(self, s: MCState):
        view = super().view_of(s)
        if self.hardened and view.recorded is not None:
            # Un-acked pointer evictions may still hold stale read-only
            # copies; the directory tracks them as possible holders.
            view.recorded |= set(s.node_sets[-1])
        return view

    def _is_busy(self, s: MCState) -> bool:
        if super()._is_busy(s):
            return True
        if self.hardened:
            for view in s.caches:
                if view[3] is not None:
                    return True
        return False

    def _busy_reasons(self, s: MCState) -> list[str]:
        reasons = super()._busy_reasons(s)
        if self.hardened:
            for node, view in enumerate(s.caches):
                if view[3] is not None:
                    reasons.append(
                        f"cache {node} holds un-acknowledged dirty data "
                        f"in its write-back buffer"
                    )
        return reasons

    def deadlock_problems(self, s: MCState) -> list[str]:
        problems = super().deadlock_problems(s)
        if problems and self.hardened:
            base, _ = self._strip(s)
            if self._recovery_actions(base):
                return []  # a runtime timeout would fire and recover
        return problems
