"""Abstract protocol states and canonical hashing for the model checker.

One :class:`MCState` captures everything behaviourally relevant about a
single memory block in a machine of ``home + (N-1)`` caches: the directory
entry, every cache's line and miss status, the in-flight message channels
(per-(src, dst) FIFO, matching the network's delivery guarantee), the
home node's IPI queue of diverted packets, and the protocol-specific
extras (Dir_iNB FIFO order, broadcast bit, chained walk queue, emulated
pointer array, software vector).

Everything is stored as plain hashable primitives — enum *names*, ints,
frozensets, nested tuples — so states can be hashed, compared, and
serialized without touching simulator objects.  Two concrete-world
details are deliberately *excluded* because the protocol never reads
them back: the per-line ``written`` bit (write-only bookkeeping) and the
MSHR waiter list (always exactly one waiter, fully determined by
``need_write``, because a node issues no new operation while its miss is
outstanding).

Two canonicalizations collapse the state space to a finite quotient:

* **Transaction-id renumbering.**  The invalidation-round id is an
  unbounded counter, but its only semantics is equality against the
  entry's current round at delivery time.  Renumbering all ids that
  appear anywhere in a state order-preservingly onto ``0..k-1``
  preserves every equality/inequality pattern and all future behaviour.

* **Node-symmetry reduction.**  The home node is distinguished (Local
  Bit, trap locality), but the remote caches are interchangeable for
  protocols whose transition logic never consults a concrete node id.
  The canonical key is the minimum over all permutations of the
  non-home nodes — including the induced permutation of *data values*,
  which encode the writing node.  Protocols that break node symmetry
  (``chained`` walks its list in id order; ``limited`` can fall back to
  a lowest-id victim) are explored without reduction.

The canonical key is itself an :class:`MCState` (a nested tuple of
primitives, hashable in C), not a serialized string: hashing and
equality on the tuple are far cheaper than building a textual form for
every discovered successor, and this is the model checker's hottest
path.  Permutation candidates are compared with a two-stage schema-aware
order (:func:`_disc` then :func:`_rest`) because the raw fields mix
``None``/int/str and are not mutually comparable; fields a node
permutation cannot change are left out of the order, since candidate
ranking only ever compares permuted variants of one state.
"""

from __future__ import annotations

from itertools import permutations
from typing import NamedTuple, Optional

#: A message on the wire or queued at the directory:
#: (src, opcode, txn-or-None, data-value-or-None).
Msg = tuple[int, str, Optional[int], Optional[int]]

#: One cache's view: (line state name, data value, mshr) where the MSHR
#: slot is None (no outstanding miss) or the ``need_write`` bool.
CacheView = tuple[str, int, Optional[bool]]


class MCState(NamedTuple):
    """The abstract state of one block under one protocol."""

    dir_state: str
    sharers: frozenset[int]
    local_bit: bool
    requester: Optional[int]
    ack_waiting: frozenset[int]
    txn: int
    meta: str
    trap_mode: Optional[str]
    pending: tuple[Msg, ...]          # queued on the TRANS_IN_PROGRESS interlock
    mem: int                          # abstract memory word (0 or writer id + 1)
    caches: tuple[CacheView, ...]     # indexed by node id; [0] is the home
    channels: tuple[tuple[tuple[int, int], tuple[Msg, ...]], ...]
    ipi: tuple[Msg, ...]              # diverted packets awaiting the trap handler
    node_sets: tuple[frozenset[int], ...]    # protocol extras holding node sets
    node_lists: tuple[tuple[int, ...], ...]  # protocol extras holding node orders
    scalars: tuple                           # protocol extras with no node content

    def channel_map(self) -> dict[tuple[int, int], tuple[Msg, ...]]:
        return dict(self.channels)


def pack_channels(
    channels: dict[tuple[int, int], list[Msg]]
) -> tuple[tuple[tuple[int, int], tuple[Msg, ...]], ...]:
    """Drop empty queues and sort by (src, dst) for a canonical layout."""
    return tuple(
        (key, tuple(msgs)) for key, msgs in sorted(channels.items()) if msgs
    )


# ----------------------------------------------------------------------
# Permutation of non-home nodes
# ----------------------------------------------------------------------


def _permute_value(value: Optional[int], perm: tuple[int, ...]) -> Optional[int]:
    """Data values encode the writing node (v = writer + 1); 0 is 'never
    written' and None is 'no data'."""
    if value is None or value == 0:
        return value
    return perm[value - 1] + 1


def _permute_msg(msg: Msg, perm: tuple[int, ...]) -> Msg:
    src, opcode, txn, data = msg
    return (perm[src], opcode, txn, _permute_value(data, perm))


def permute_state(state: MCState, perm: tuple[int, ...]) -> MCState:
    """Apply a node permutation (``perm[0]`` must be 0) to a state."""
    caches: list[CacheView] = [state.caches[0]] * len(state.caches)
    for node, view in enumerate(state.caches):
        line_state, data, mshr = view
        caches[perm[node]] = (line_state, _permute_value(data, perm), mshr)
    channels: dict[tuple[int, int], list[Msg]] = {}
    for (src, dst), msgs in state.channels:
        channels[(perm[src], perm[dst])] = [
            _permute_msg(m, perm) for m in msgs
        ]
    return state._replace(
        sharers=frozenset(perm[n] for n in state.sharers),
        requester=None if state.requester is None else perm[state.requester],
        ack_waiting=frozenset(perm[n] for n in state.ack_waiting),
        pending=tuple(_permute_msg(m, perm) for m in state.pending),
        mem=_permute_value(state.mem, perm),
        caches=tuple(caches),
        channels=pack_channels(channels),
        ipi=tuple(_permute_msg(m, perm) for m in state.ipi),
        node_sets=tuple(
            frozenset(perm[n] for n in s) for s in state.node_sets
        ),
        node_lists=tuple(
            tuple(perm[n] for n in lst) for lst in state.node_lists
        ),
    )


# ----------------------------------------------------------------------
# Transaction-id renumbering
# ----------------------------------------------------------------------


def _renumber_msg(msg: Msg, remap: dict[int, int]) -> Msg:
    src, opcode, txn, data = msg
    return (src, opcode, None if txn is None else remap[txn], data)


def _view_wb_txn(view: tuple) -> Optional[int]:
    """The transaction id buried in a fault-model cache view's write-back
    slot (``(opcode, txn, value)`` at index 3), if any."""
    if len(view) > 3 and view[3] is not None:
        return view[3][1]
    return None


def _renumber_view(view: tuple, remap: dict[int, int]) -> tuple:
    txn = _view_wb_txn(view)
    if txn is None:
        return view
    opcode, _, value = view[3]
    return view[:3] + ((opcode, remap[txn], value),) + view[4:]


def renumber_txns(state: MCState) -> MCState:
    """Map every transaction id in the state onto ``0..k-1``, preserving
    order (and therefore every current/stale distinction)."""
    txns = {state.txn}
    for msgs in (state.pending, state.ipi):
        for m in msgs:
            if m[2] is not None:
                txns.add(m[2])
    for _, msgs in state.channels:
        for m in msgs:
            if m[2] is not None:
                txns.add(m[2])
    for view in state.caches:
        wb_txn = _view_wb_txn(view)
        if wb_txn is not None:
            txns.add(wb_txn)
    # Ids are non-negative, so the set is exactly {0..k-1} iff its max is
    # k-1 — the common case, worth skipping the remap for.
    if max(txns) == len(txns) - 1:
        return state
    remap = {t: i for i, t in enumerate(sorted(txns))}
    return state._replace(
        txn=remap[state.txn],
        pending=tuple(_renumber_msg(m, remap) for m in state.pending),
        ipi=tuple(_renumber_msg(m, remap) for m in state.ipi),
        channels=tuple(
            (key, tuple(_renumber_msg(m, remap) for m in msgs))
            for key, msgs in state.channels
        ),
        caches=tuple(_renumber_view(v, remap) for v in state.caches),
    )


# ----------------------------------------------------------------------
# Canonical keys
# ----------------------------------------------------------------------


def _rank_msg_perm(msg: Msg, perm: tuple[int, ...]) -> tuple[int, str, int, int]:
    src, opcode, txn, data = msg
    if data is None:
        data = -1
    elif data != 0:
        data = perm[data - 1] + 1
    return (perm[src], opcode, -1 if txn is None else txn, data)


def _disc(state: MCState, perm: tuple[int, ...]) -> tuple:
    """Stage-1 discriminator: the cheapest permutation-*variant* fields.

    Candidate ranking only ever compares permuted variants of one state,
    so permutation-invariant fields (``dir_state``, ``local_bit``,
    ``txn``, ``meta``, ``trap_mode``, ``scalars``) are identical across
    all candidates and excluded from the order entirely.  The requester
    id, cache views, sharer set, and memory word resolve almost every
    comparison, so the expensive encodings in :func:`_rest` are built
    only to break a stage-1 tie.  Fields mix ``None``/int/str across
    candidates (e.g. requester), hence the schema-aware -1 encodings.
    """
    caches: list = [None] * len(state.caches)
    for node, (line_state, value, mshr) in enumerate(state.caches):
        caches[perm[node]] = (
            line_state,
            _permute_value(value, perm),
            -1 if mshr is None else int(mshr),
        )
    return (
        -1 if state.requester is None else perm[state.requester],
        tuple(caches),
        tuple(sorted(perm[n] for n in state.sharers)),
        _permute_value(state.mem, perm),
    )


def _rest(state: MCState, perm: tuple[int, ...]) -> tuple:
    """Stage-2 tiebreaker: the remaining permutation-variant fields."""
    return (
        tuple(sorted(perm[n] for n in state.ack_waiting)),
        tuple([_rank_msg_perm(m, perm) for m in state.pending]),
        tuple(
            sorted(
                (
                    (perm[src], perm[dst]),
                    tuple([_rank_msg_perm(m, perm) for m in msgs]),
                )
                for (src, dst), msgs in state.channels
            )
        ),
        tuple([_rank_msg_perm(m, perm) for m in state.ipi]),
        tuple([tuple(sorted(perm[n] for n in s)) for s in state.node_sets]),
        tuple([tuple([perm[n] for n in lst]) for lst in state.node_lists]),
    )


_PERMS: dict[int, tuple[tuple[int, ...], ...]] = {}


def node_permutations(n_nodes: int) -> tuple[tuple[int, ...], ...]:
    """All node permutations fixing the home (node 0), identity first."""
    perms = _PERMS.get(n_nodes)
    if perms is None:
        perms = tuple((0, *tail) for tail in permutations(range(1, n_nodes)))
        _PERMS[n_nodes] = perms
    return perms


def canonical_key(state: MCState, *, symmetric: bool) -> MCState:
    """The canonical representative of ``state``'s equivalence class.

    Txn-renumbered and, when the protocol is node-symmetric, minimized
    over all non-home permutations.  The representative is an
    :class:`MCState` — hashable as-is, so it doubles as the visited-set
    key.  Renumbering and node permutation touch disjoint fields, so
    renumbering once up front is equivalent to renumbering every
    permuted candidate.
    """
    base = renumber_txns(state)
    n_nodes = len(state.caches)
    if not symmetric or n_nodes <= 2:
        return base
    perms = node_permutations(n_nodes)
    best = [perms[0]]
    best_d = _disc(base, perms[0])
    for perm in perms[1:]:
        d = _disc(base, perm)
        if d < best_d:
            best, best_d = [perm], d
        elif d == best_d:
            best.append(perm)
    chosen = (
        best[0] if len(best) == 1 else min(best, key=lambda p: _rest(base, p))
    )
    if chosen is perms[0]:
        return base
    return permute_state(base, chosen)
