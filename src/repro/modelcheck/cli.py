"""The ``repro modelcheck`` subcommand.

Examples::

    python -m repro modelcheck                      # all protocols, N=3
    python -m repro modelcheck --protocol limitless --caches 4
    python -m repro modelcheck --protocol chained --walk 20000 --seed 7
    python -m repro modelcheck --list-protocols
    python -m repro modelcheck --protocol limited_dropinv   # see it fail
"""

from __future__ import annotations

import argparse

from ..coherence.registry import protocol_names
from .counterexample import format_trace
from .explore import CheckResult, explore, random_walk
from .model import ProtocolModel, checkable_protocols


DESCRIPTION = (
    "Exhaustively model-check the coherence protocols: explore "
    "every reachable state of one memory block and verify the "
    "invariants from repro.verify at each."
)


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--protocol",
        help="protocol to check (default: every registered protocol)",
    )
    parser.add_argument(
        "--caches", type=int, default=3, help="number of caches (default 3)"
    )
    parser.add_argument(
        "--pointers",
        type=int,
        default=1,
        help="hardware pointer budget (default 1, to stress overflow paths)",
    )
    parser.add_argument(
        "--walk",
        type=int,
        metavar="STEPS",
        help="random-walk STEPS transitions instead of exhaustive search",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="random-walk schedule seed"
    )
    parser.add_argument(
        "--max-states",
        type=int,
        default=1_000_000,
        help=(
            "safety cap on exhaustive exploration (default 1000000, "
            "enough to exhaust every protocol except trap_always)"
        ),
    )
    parser.add_argument(
        "--faults",
        type=int,
        default=0,
        metavar="BUDGET",
        help=(
            "check under a message-fault adversary that may drop or "
            "duplicate up to BUDGET packets (default 0: fault-free model)"
        ),
    )
    parser.add_argument(
        "--unhardened",
        action="store_true",
        help=(
            "with --faults: model the controllers WITHOUT the fault-"
            "tolerance extensions, to exhibit the baseline failure"
        ),
    )
    parser.add_argument(
        "--list-protocols",
        action="store_true",
        help="list the checkable protocols and exit",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro modelcheck", description=DESCRIPTION
    )
    add_arguments(parser)
    return parser


def check_one(args: argparse.Namespace, protocol: str) -> CheckResult:
    if getattr(args, "faults", 0):
        from .faults import FaultyProtocolModel

        model: ProtocolModel = FaultyProtocolModel(
            protocol,
            args.caches,
            pointers=args.pointers,
            faults=args.faults,
            hardened=not args.unhardened,
        )
    else:
        model = ProtocolModel(protocol, args.caches, pointers=args.pointers)
    if args.walk:
        return random_walk(model, steps=args.walk, seed=args.seed)
    result = explore(model, max_states=args.max_states)
    if result.violation is not None:
        print(format_trace(model, result.violation))
    return result


def main(argv: list[str] | None = None) -> int:
    return run_from_args(build_parser().parse_args(argv))


def run_from_args(args: argparse.Namespace) -> int:
    if args.list_protocols:
        mutants = sorted(set(checkable_protocols()) - set(protocol_names()))
        print("protocols: " + ", ".join(protocol_names()))
        print("mutants (deliberately broken): " + ", ".join(mutants))
        return 0
    targets = [args.protocol] if args.protocol else list(protocol_names())
    if args.faults and not args.protocol:
        # limitless_approx's emulated-pointer scalars clash with the
        # fault budget slot; it has no fault-hardening story anyway.
        # trap_always is known-unhardened: diverting *every* packet to
        # software defers processing past the receive-time DACK, breaking
        # the FIFO ordering the recovery protocol's safety argument needs
        # (run it explicitly with --protocol to see the counterexample).
        targets = [
            t for t in targets if t not in ("limitless_approx", "trap_always")
        ]
    available = checkable_protocols()
    for name in targets:
        if name not in available:
            print(f"unknown protocol {name!r}; choose from {sorted(available)}")
            return 2
    failed = 0
    for name in targets:
        try:
            result = check_one(args, name)
        except ValueError as exc:  # bad --caches / --pointers combination
            print(f"error: {exc}")
            return 2
        print(result.summary())
        if not result.ok:
            failed += 1
    if len(targets) > 1:
        verdict = "all protocols verified" if not failed else (
            f"{failed}/{len(targets)} protocols FAILED"
        )
        print(verdict)
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
