"""Counterexample reconstruction: replay a violating trace and print it.

The explorer hands back a list of actions from the initial state.  Replay
is deterministic (the model's transitions are), so re-running the actions
reproduces the exact witness execution, letting the printer show — for
every step — the message consumed, the messages launched in response, and
the resulting directory/cache picture in the paper's Table 2/3
vocabulary: ``P`` is the pointer set, ``AckCtr`` the outstanding
acknowledgment count, and opcodes are the paper's RREQ/WREQ/RDATA/WDATA/
INV/BUSY/ACKC/UPDATE/REPM.
"""

from __future__ import annotations

from .explore import Violation
from .model import Action, ProtocolModel, StepResult
from .state import MCState

_CACHE_ABBREV = {"INVALID": "INV", "READ_ONLY": "RO", "READ_WRITE": "RW"}


def describe_action(action: Action, step: StepResult | None = None) -> str:
    kind = action[0]
    if kind == "deliver":
        _, src, dst = action
        if step is not None and step.delivered is not None:
            _, _, opcode, txn, value = step.delivered
            detail = _describe_msg(opcode, txn, value)
            return f"deliver {detail} from node {src} to node {dst}"
        return f"deliver head of channel {src}->{dst}"
    if kind == "trap":
        return "run the pending LimitLESS trap handler at the home node"
    if kind == "load":
        return f"processor {action[1]} issues a load"
    if kind == "store":
        return f"processor {action[1]} issues a store"
    if kind == "evict":
        return f"cache {action[1]} replaces (evicts) its copy"
    if kind in ("drop", "dup"):
        _, src, dst = action
        verb = "drops" if kind == "drop" else "duplicates"
        if step is not None and step.delivered is not None:
            _, _, opcode, txn, value = step.delivered
            detail = _describe_msg(opcode, txn, value)
            return f"the network {verb} {detail} on channel {src}->{dst}"
        return f"the network {verb} the head of channel {src}->{dst}"
    if kind == "retx_req":
        return f"cache {action[1]} times out and resends its request"
    if kind == "retx_wb":
        return f"cache {action[1]} times out and resends its write-back"
    if kind == "retx_dir":
        return "the directory times out and resends its invalidations"
    return repr(action)


def _describe_msg(opcode: str, txn, value) -> str:
    parts = [opcode]
    if txn is not None:
        parts.append(f"txn={txn}")
    if value is not None:
        parts.append(f"data={value}")
    return f"{parts[0]}[{', '.join(parts[1:])}]" if parts[1:] else opcode


def format_state(state: MCState) -> str:
    pointers = sorted(state.sharers)
    dir_bits = [
        f"dir={state.dir_state}",
        f"P={{{','.join(map(str, pointers))}}}" + ("+L" if state.local_bit else ""),
        f"AckCtr={len(state.ack_waiting)}",
    ]
    if state.requester is not None:
        dir_bits.append(f"req={state.requester}")
    if state.meta != "NORMAL":
        dir_bits.append(f"meta={state.meta}")
    if state.pending:
        dir_bits.append(f"pending={len(state.pending)}")
    caches = " ".join(
        f"{node}={_CACHE_ABBREV[view[0]]}"
        + (f"({view[1]})" if view[0] != "INVALID" else "")
        + ("*" if view[2] is not None else "")
        + (
            f"+wb:{view[3][0]}({view[3][2]})"
            if len(view) > 3 and view[3] is not None
            else ""
        )
        for node, view in enumerate(state.caches)
    )
    wires = " ".join(
        f"{src}->{dst}:" + ",".join(_describe_msg(*m[1:]) for m in msgs)
        for (src, dst), msgs in state.channels
    )
    line = f"{' '.join(dir_bits)} | mem={state.mem} | caches: {caches}"
    if wires:
        line += f" | wires: {wires}"
    if state.ipi:
        line += f" | ipi: {','.join(_describe_msg(*m[1:]) for m in state.ipi)}"
    if any(state.node_sets):
        vectors = "+".join(
            "{" + ",".join(map(str, sorted(vec))) + "}" for vec in state.node_sets
        )
        line += f" | swvec={vectors}"
    return line


def replay(model: ProtocolModel, actions: list[Action]) -> list[StepResult]:
    """Re-run a trace from the initial state; deterministic by design."""
    state = model.initial_state()
    steps: list[StepResult] = []
    for action in actions:
        step = model.apply(state, action)
        steps.append(step)
        if step.state is None:  # the step that raised ends the trace
            break
        state = step.state
    return steps


def format_trace(model: ProtocolModel, violation: Violation) -> str:
    """Render the shortest violating execution, one step per stanza."""
    lines = [
        f"counterexample: {violation.kind} violation under "
        f"'{model.protocol}' with {model.n_nodes} caches "
        f"({len(violation.actions)} steps)",
        f"  start: {format_state(model.initial_state())}",
    ]
    for index, step in enumerate(replay(model, violation.actions), start=1):
        lines.append(f"  step {index}: {describe_action(step.action, step)}")
        for src, dst, opcode, txn, value in step.sent:
            lines.append(
                f"          sends {_describe_msg(opcode, txn, value)} "
                f"to node {dst}"
            )
        for src, dst, opcode, txn, value in step.auto:
            lines.append(
                f"          (BUSY from node {src} bounced at node {dst}; "
                f"the nacked request was retried in the same step)"
            )
        if step.error is not None:
            lines.append(f"          raises {step.error}")
        elif step.state is not None:
            lines.append(f"          {format_state(step.state)}")
    lines.append("  violated:")
    for problem in violation.problems:
        lines.append(f"    - {problem}")
    return "\n".join(lines)
