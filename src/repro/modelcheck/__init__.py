"""Exhaustive protocol model checking (see docs/PROTOCOL.md, Verification).

Explores every reachable state of a single memory block under each
registered coherence protocol, driven by the *real* controller and cache
transition logic, checking the invariants shared with
:mod:`repro.verify.predicates` at every state and reconstructing the
shortest counterexample trace on failure.
"""

from .counterexample import format_state, format_trace, replay
from .explore import CheckResult, Violation, explore, random_walk
from .model import ProtocolModel, checkable_protocols, model_spec
from .state import MCState, canonical_key

__all__ = [
    "CheckResult",
    "MCState",
    "ProtocolModel",
    "Violation",
    "canonical_key",
    "checkable_protocols",
    "explore",
    "format_state",
    "format_trace",
    "model_spec",
    "random_walk",
    "replay",
]
