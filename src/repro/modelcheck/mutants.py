"""Deliberately broken controllers: the checker's own self-test.

A model checker that cannot fail verifies nothing.  Each mutant here
plants one classic protocol bug in an otherwise real controller; the test
tier asserts that exploration finds a violation *with a counterexample
trace* — and, for the dropped-invalidation mutant, specifically a
single-writer-multiple-reader violation, the property invalidation
exists to protect.

Mutants are registered in :func:`repro.modelcheck.model.checkable_protocols`
(never in the production registry) so they are reachable from the CLI for
demonstration but can never be selected for an experiment run.
"""

from __future__ import annotations

from ..coherence.limited import LimitedController
from ..network.packet import Packet
from .model import ModelSpec


class DroppedInvLimitedController(LimitedController):
    """Dir_iNB that reassigns an overflowed pointer WITHOUT invalidating.

    The victim cache keeps a read-only copy the directory has forgotten.
    The directory-coverage invariant fails as soon as the pointer is
    reassigned, and the single-writer invariant fails a few transitions
    later when a writer is granted exclusivity while the forgotten copy
    is still readable — the exact incoherence Dir_iNB's eviction
    invalidate prevents.
    """

    protocol_name = "limited_dropinv"

    def _read_overflow(self, entry, packet: Packet) -> None:
        victim = self._choose_victim(entry, packet.src)
        self.counters.bump("dir.pointer_evictions")
        # BUG (deliberate): the eviction invalidate is never sent.
        entry.drop_sharer(victim)
        order = self._fifo_order.get(entry.block, [])
        if victim in order:
            order.remove(victim)
        entry.add_sharer(packet.src)
        if packet.src != entry.home:
            order.append(packet.src)
        self._send_rdata(entry, packet.src)


class LostAckLimitedController(LimitedController):
    """Dir_iNB whose write transactions need one ack too many.

    The controller adds a phantom node to the acknowledgment set, so the
    final ACKC never arrives and the write transaction hangs forever —
    the checker must report it as a deadlock, exercising the liveness
    side of the search.
    """

    protocol_name = "limited_lostack"

    def _begin_write_transaction(self, entry, requester, targets) -> None:
        # BUG (deliberate): await an ack from a node that was never sent
        # an INV (the requester itself, which will never acknowledge).
        super()._begin_write_transaction(entry, requester, targets)
        entry.ack_waiting.add(requester)


MUTANTS: dict[str, ModelSpec] = {
    "limited_dropinv": ModelSpec(
        DroppedInvLimitedController,
        lambda p: {"pointer_capacity": p, "victim_policy": "fifo"},
        symmetric=False,
    ),
    "limited_lostack": ModelSpec(
        LostAckLimitedController,
        lambda p: {"pointer_capacity": p, "victim_policy": "fifo"},
        symmetric=False,
    ),
}
