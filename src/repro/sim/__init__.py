"""Event-driven simulation kernel (the reproduction's ASIM core)."""

from .component import Component
from .kernel import (
    DeadlockError,
    Event,
    SimulationError,
    Simulator,
    StallableResource,
    simulate_all,
)
from .rng import DeterministicRng

__all__ = [
    "Component",
    "DeadlockError",
    "DeterministicRng",
    "Event",
    "SimulationError",
    "Simulator",
    "StallableResource",
    "simulate_all",
]
