"""Base class for simulated hardware components."""

from __future__ import annotations

from .kernel import Simulator


class Component:
    """A named piece of hardware attached to a :class:`Simulator`.

    Components share the simulator clock and provide a uniform ``name`` used
    in statistics and error messages.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name

    @property
    def now(self) -> int:
        """Current simulation cycle."""
        return self.sim.now

    def schedule(self, delay: int, callback) -> None:
        """Schedule ``callback`` after ``delay`` cycles."""
        self.sim.call_after(delay, callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
