"""Base class for simulated hardware components."""

from __future__ import annotations

from .kernel import _NO_ARG, Simulator


class Component:
    """A named piece of hardware attached to a :class:`Simulator`.

    Components share the simulator clock and provide a uniform ``name`` used
    in statistics and error messages.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name

    @property
    def now(self) -> int:
        """Current simulation cycle."""
        return self.sim.now

    def schedule(self, delay: int, callback, arg=_NO_ARG) -> None:
        """Schedule ``callback`` after ``delay`` cycles.

        ``arg``, when given, is passed to the callback at execution time
        (see :meth:`Simulator.post`) — hot paths use it to avoid
        allocating a closure per scheduled event.  Component schedules are
        fire-and-forget, so this takes the handle-free ``post`` path
        directly (``post`` rejects the past, which covers negative delays).
        """
        sim = self.sim
        sim.post(sim.now + delay, callback, arg)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"
