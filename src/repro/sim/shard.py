"""Sharded, window-stepped parallel simulation of one machine.

The machine's mesh is partitioned into K contiguous bands of rows, one
shard each.  Every shard runs its own serial :class:`Simulator` over its
own nodes and advances under conservative (Chandy-Misra style)
synchronization: a shard may execute up to — but not at — the minimum
over every shard's *bound*, the earliest future cycle at which that
shard could next affect another shard.  The staged fabric computes the
bound from exact floors on its in-flight state (see
``StagedWormholeNetwork.cross_bound``).

Because the staged fabric (:mod:`repro.network.fabric`) arbitrates every
link in canonical ``(src, send-seq)`` order and every node's runtime
randomness is scoped to that node, the simulated outcome is a function of
the configuration only — the same cycle counts, traps, and packet totals
for any shard count, and for the in-process driver and the forked
multi-process driver alike.

The in-process driver steps every shard in one interpreter in lock-step
windows.  The forked driver has no rendezvous at all: each worker
publishes its bound in a shared array and appends cross-shard handoffs
to one bounded ring buffer per directed shard pair, as length-prefixed
pickled *batches* that may span many windows.  A worker holds a batch
back until a peer could actually need it (its earliest target time falls
below the local bound plus ``shard_flush_horizon``); until then the
batch's floor simply caps the published bound, which keeps the protocol
conservative with no per-window synchronization.  Reads are acknowledged
through a cursor array only *after* the reader has re-published a bound
covering the absorbed traffic, so at every instant each un-executed
handoff is covered by some shard's published bound.  A worker that fails
poisons its bound so peers and the parent unwind instead of
deadlocking.
"""

from __future__ import annotations

import ctypes
import pickle
import signal as _signal
import time
import traceback
from multiprocessing import get_all_start_methods, get_context
from multiprocessing.sharedctypes import RawArray
from typing import TYPE_CHECKING

from ..machine.machine import AlewifeMachine, Harvest, MachineStats
from ..network.topology import make_topology
from ..verify.diagnose import Diagnosis, LivenessError, diagnose
from ..verify.invariants import (
    audit_entries,
    cache_holdings,
    local_quiesce_problems,
    raise_on_problems,
)
from .kernel import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from ..machine.config import AlewifeConfig
    from ..workloads.base import Workload

#: "this shard can never again affect another shard" (drained)
_INF = 2**62
#: a worker has not yet built its machine / published its first bound
_NOT_READY = -1
#: a worker hit an exception; peers unwind instead of waiting forever
_POISON = -2
#: bytes per directed-pair handoff ring
_SLAB_BYTES = 1 << 20
#: force a batch flush past this many handoffs regardless of its floor,
#: so one blob can never outgrow the ring
_FLUSH_COUNT = 512


class ShardPlan:
    """Contiguous partition of the machine's nodes into shards.

    Mesh and torus machines split into bands of whole rows, so the only
    cross-shard links are the vertical ones at band boundaries (X-then-Y
    routing keeps the X phase inside a band).  Link-free topologies
    (ideal, crossbar) split into contiguous id ranges.  The shard count
    is clamped to what the topology can support; ``omega`` is rejected at
    config validation.
    """

    def __init__(self, config: "AlewifeConfig") -> None:
        n = config.n_procs
        k = max(1, config.shards)
        if config.topology in ("mesh", "torus"):
            geometry = make_topology(config.topology, n).geometry
            rows = geometry.height
            k = min(k, rows)
            width = geometry.width
            assign = [(node // width) * k // rows for node in range(n)]
        else:
            k = min(k, n)
            assign = [node * k // n for node in range(n)]
        self.n_shards = k
        self._assign = assign
        self._owned: list[list[int]] = [[] for _ in range(k)]
        for node, shard in enumerate(assign):
            self._owned[shard].append(node)

    def shard_of(self, node: int) -> int:
        return self._assign[node]

    def owned(self, shard_id: int) -> list[int]:
        return self._owned[shard_id]


class _ShardSim:
    """One shard: a partitioned machine plus its window-stepping state."""

    def __init__(
        self,
        config: "AlewifeConfig",
        workload: "Workload",
        plan: ShardPlan,
        shard_id: int,
    ) -> None:
        self.shard_id = shard_id
        self.machine = AlewifeMachine(
            config,
            shard_id=shard_id,
            shard_of=plan.shard_of,
            owned=plan.owned(shard_id),
        )
        # Every shard replays the whole (deterministic) workload build so
        # allocations land at identical addresses everywhere, then installs
        # only the programs of the processors it owns.
        programs = workload.build(self.machine)
        total = 0
        node_map = self.machine.node_map
        for proc_id, generators in programs.items():
            total += len(generators)
            if proc_id in node_map:
                for gen in generators:
                    node_map[proc_id].processor.add_thread(gen)
        if not total:
            raise SimulationError("workload produced no programs")
        for node in self.machine.nodes:
            node.start()
        self.windows = 0
        self.bytes_out = 0
        self.flushes = 0

    def bound(self) -> int:
        b = self.machine.network.cross_bound()
        return _INF if b is None else b

    def step_window(self, limit: int) -> list[tuple[int, tuple]]:
        """Run [now, limit), return the (dest_shard, handoff) traffic."""
        self.machine.sim.run_until(limit)
        self.windows += 1
        return self.machine.network.take_outbox()

    def absorb(self, handoffs: list[tuple]) -> None:
        network = self.machine.network
        for handoff in handoffs:
            network.receive_handoff(handoff)

    def laggards(self) -> list[int]:
        return [
            n.node_id for n in self.machine.nodes if not n.processor.done
        ]

    def metrics(self) -> dict:
        """Driver efficiency counters for this shard (``shard_meta``)."""
        network = self.machine.network
        return {
            "windows": self.windows,
            "handoffs_out": network.handoffs_out,
            "handoffs_in": network.handoffs_in,
            "bytes_out": self.bytes_out,
            "flushes": self.flushes,
            "events": self.machine.sim.events_executed,
        }


def _merge_diagnoses(parts: list[Diagnosis], cycle: int) -> Diagnosis:
    merged = Diagnosis(
        cycle=cycle,
        finished_processors=sum(p.finished_processors for p in parts),
        total_processors=sum(p.total_processors for p in parts),
        packets_in_flight=sum(p.packets_in_flight for p in parts),
        oldest_packet=next(
            (p.oldest_packet for p in parts if p.oldest_packet), None
        ),
    )
    for part in parts:
        merged.stuck_contexts += part.stuck_contexts
        merged.open_mshrs += part.open_mshrs
        merged.busy_entries += part.busy_entries
        merged.ipi_backlogs += part.ipi_backlogs
    return merged


def _merge_holdings(slices: list[dict]) -> dict:
    merged: dict[int, dict[int, tuple]] = {}
    for piece in slices:
        for block, holders in piece.items():
            merged.setdefault(block, {}).update(holders)
    return merged


def _shard_meta(k: int, workers: int, rounds: dict[int, dict]) -> dict:
    per_shard = [rounds[i] for i in sorted(rounds)]
    return {
        "shards": k,
        "workers": workers,
        "windows": max((m["windows"] for m in per_shard), default=0),
        "handoffs": sum(m["handoffs_out"] for m in per_shard),
        "bytes": sum(m["bytes_out"] for m in per_shard),
        "flushes": sum(m["flushes"] for m in per_shard),
        "per_shard": per_shard,
    }


def _finalize(
    config: "AlewifeConfig",
    harvest: Harvest,
    *,
    entries_audited: int,
    meta: dict,
) -> MachineStats:
    return harvest.finalize(
        config, entries_audited=entries_audited, shard_meta=meta
    )


# ----------------------------------------------------------------------
# In-process driver (workers=1): every shard in one interpreter
# ----------------------------------------------------------------------


def _drive_inprocess(
    shards: list[_ShardSim],
    config: "AlewifeConfig",
    on_boundary=None,
) -> None:
    """The lock-step window loop shared by the plain in-process driver and
    the checkpointing driver in :mod:`repro.recover`.

    ``on_boundary(limit, shards)``, when given, fires after every window's
    handoffs have been absorbed — every shard sits at exactly ``limit``
    with no half-exchanged traffic, which is the only instant at which a
    globally consistent snapshot of the sharded machine exists.
    """
    k = len(shards)
    bounds = [s.bound() for s in shards]
    while True:
        limit = min(bounds)
        if limit >= _INF or limit > config.max_cycles:
            break
        inboxes: list[list[tuple]] = [[] for _ in range(k)]
        for shard in shards:
            for dest, handoff in shard.step_window(limit):
                inboxes[dest].append(handoff)
        for shard in shards:
            shard.absorb(inboxes[shard.shard_id])
        bounds = [s.bound() for s in shards]
        if on_boundary is not None:
            on_boundary(limit, shards)


def _run_inprocess(
    config: "AlewifeConfig",
    workload: "Workload",
    plan: ShardPlan,
    on_boundary=None,
) -> MachineStats:
    k = plan.n_shards
    shards = [_ShardSim(config, workload, plan, i) for i in range(k)]
    _drive_inprocess(shards, config, on_boundary)
    return _finish_inprocess(config, shards)


def _finish_inprocess(
    config: "AlewifeConfig", shards: list[_ShardSim]
) -> MachineStats:
    """Laggard check, audit, and harvest for a quiesced in-process run."""
    k = len(shards)
    laggards = sorted(x for s in shards for x in s.laggards())
    cycle = max(s.machine.sim.now for s in shards)
    if laggards:
        raise LivenessError(
            f"sharded simulation stopped at {cycle} cycles with processors "
            f"{laggards[:8]} unfinished (deadlock or max_cycles too small)",
            _merge_diagnoses([diagnose(s.machine) for s in shards], cycle),
        )

    problems: list[str] = []
    for shard in shards:
        problems += local_quiesce_problems(
            shard.machine.nodes, shard.machine.network
        )
    cached = _merge_holdings([cache_holdings(s.machine.nodes) for s in shards])
    checked = 0
    for shard in shards:
        part_checked, part_problems = audit_entries(shard.machine.nodes, cached)
        checked += part_checked
        problems += part_problems
    raise_on_problems(problems)

    harvest = Harvest()
    for shard in shards:
        piece = shard.machine.harvest()
        piece.shard_rounds[shard.shard_id] = shard.metrics()
        harvest.merge(piece)
    meta = _shard_meta(k, 1, harvest.shard_rounds)
    return _finalize(config, harvest, entries_audited=checked, meta=meta)


# ----------------------------------------------------------------------
# Forked driver: one worker per shard, asynchronous shared-memory bounds
# ----------------------------------------------------------------------


class _SharedSync:
    """Fork-inherited shared state for the asynchronous bound protocol.

    Per worker: ``bounds[i]``, the published conservative bound (with
    ``_NOT_READY`` before the first publish and ``_POISON`` on failure).
    Per directed pair (i, j): one bounded byte ring holding
    length-prefixed pickled handoff batches, written at byte cursor
    ``wcur[i*k+j]`` and acknowledged at ``rcur[i*k+j]``.  Cursors grow
    monotonically; ``cursor % _SLAB_BYTES`` is the ring offset.  Each
    cell has a single writer, so plain 64-bit stores suffice.
    """

    def __init__(self, k: int) -> None:
        self.k = k
        self.bounds = RawArray(ctypes.c_longlong, [_NOT_READY] * k)
        self.wcur = RawArray(ctypes.c_longlong, k * k)
        self.rcur = RawArray(ctypes.c_longlong, k * k)
        self.rings = [
            [
                RawArray(ctypes.c_char, _SLAB_BYTES) if i != j else None
                for j in range(k)
            ]
            for i in range(k)
        ]

    def poison(self, shard_id: int) -> None:
        self.bounds[shard_id] = _POISON


class _PeerFailure(Exception):
    """Another worker poisoned the sync; unwind quietly."""


def _ring_try_write(ring, w: int, r: int, blob: bytes) -> int | None:
    """Append one ``[u32 length][blob]`` frame at write cursor ``w``.

    Returns the new write cursor, or None when the ring lacks room (the
    caller retries later; never blocks).  A zero length word marks "skip
    to the ring start"; tails shorter than a length word are skipped
    implicitly by the reader.
    """
    need = 4 + len(blob)
    if need > _SLAB_BYTES // 2:
        raise SimulationError(
            f"cross-shard batch ({len(blob)} bytes) cannot fit the "
            f"{_SLAB_BYTES}-byte handoff ring"
        )
    pos = w % _SLAB_BYTES
    tail = _SLAB_BYTES - pos
    pad = tail if tail < need else 0  # frame never wraps mid-bytes
    if pad + need > _SLAB_BYTES - (w - r):
        return None
    if pad:
        if tail >= 4:
            ring[pos : pos + 4] = (0).to_bytes(4, "little")
        w += pad
        pos = 0
    ring[pos : pos + 4] = len(blob).to_bytes(4, "little")
    ring[pos + 4 : pos + 4 + len(blob)] = blob
    return w + need


def _ring_read(ring, r: int, w: int) -> tuple[list[tuple], int]:
    """Decode every complete frame in [r, w); return (handoffs, new r)."""
    out: list[tuple] = []
    while r < w:
        pos = r % _SLAB_BYTES
        tail = _SLAB_BYTES - pos
        if tail < 4:
            r += tail
            continue
        length = int.from_bytes(ring[pos : pos + 4], "little")
        if length == 0:  # wrap marker
            r += tail
            continue
        out.extend(pickle.loads(ring[pos + 4 : pos + 4 + length]))
        r += 4 + length
    return out, r


def _safe_send(conn, message) -> None:
    """Send, ignoring a parent that already closed its end of the pipe."""
    try:
        conn.send(message)
    except (BrokenPipeError, EOFError, OSError):
        pass


def _drive_worker(
    shard: _ShardSim, config: "AlewifeConfig", shared: _SharedSync
) -> None:
    """Advance one shard to quiescence under the asynchronous protocol.

    Loop invariant (the conservatism proof): every emitted handoff whose
    target a peer has not yet executed past is covered by a published
    bound at or below that target — the sender's while the batch is
    unflushed or unacknowledged, the receiver's once it acknowledges
    (which it only does after re-publishing its post-absorb bound).
    Progress: the shard holding the minimum published bound can always
    run a non-empty window, so bounds strictly rise until quiescence.
    """
    k = shared.k
    me = shard.shard_id
    bounds = shared.bounds
    wcur = shared.wcur
    rcur = shared.rcur
    rings = shared.rings
    sim = shard.machine.sim
    horizon = config.shard_flush_horizon
    heartbeat = config.shard_heartbeat_s
    max_cycles = config.max_cycles
    peers = [j for j in range(k) if j != me]
    outbuf: list[list[tuple]] = [[] for _ in range(k)]
    outfloor = [_INF] * k
    #: per peer: [(write cursor after frame, frame floor), ...] not yet read
    unacked: list[list[tuple[int, int]]] = [[] for _ in range(k)]
    pending_acks: list[tuple[int, int]] = []
    published = _NOT_READY
    b_local = shard.bound()
    last_beat = time.monotonic()
    idle = 0
    while True:
        progress = False
        # Drain inbound rings.  Acks are deferred until after the next
        # publish: until then the sender's bound keeps covering the
        # absorbed traffic, so third shards cannot outrun its effects.
        for src in peers:
            idx = src * k + me
            w = wcur[idx]
            r = rcur[idx]
            if w == r:
                continue
            handoffs, r = _ring_read(rings[src][me], r, w)
            if handoffs:
                shard.absorb(handoffs)
                b_local = shard.bound()
            pending_acks.append((idx, r))
            progress = True
        # Flush batches a peer may soon need; a full ring is not an
        # error — the batch stays buffered and its floor caps the
        # published bound until the write succeeds.
        b = b_local
        for dest in peers:
            buf = outbuf[dest]
            if buf and (
                outfloor[dest] < b_local + horizon or len(buf) >= _FLUSH_COUNT
            ):
                idx = me * k + dest
                blob = pickle.dumps(buf, protocol=pickle.HIGHEST_PROTOCOL)
                new_w = _ring_try_write(
                    rings[me][dest], wcur[idx], rcur[idx], blob
                )
                if new_w is not None:
                    unacked[dest].append((new_w, outfloor[dest]))
                    shard.bytes_out += len(blob)
                    shard.flushes += 1
                    outbuf[dest] = []
                    outfloor[dest] = _INF
                    wcur[idx] = new_w
            if outfloor[dest] < b:
                b = outfloor[dest]
            pending = unacked[dest]
            if pending:
                r_now = rcur[me * k + dest]
                while pending and pending[0][0] <= r_now:
                    pending.pop(0)
                for _, floor in pending:
                    if floor < b:
                        b = floor
        if b != published:
            bounds[me] = b
            published = b
            progress = True
        if pending_acks:
            for idx, r in pending_acks:
                rcur[idx] = r
            pending_acks.clear()
        snapshot = bounds[:]
        if _POISON in snapshot:
            raise _PeerFailure
        limit = min(snapshot)
        if limit == _NOT_READY:
            # A peer is still building its machine; the parent watches
            # for deaths, so wait without a deadline.
            time.sleep(0.001)
            last_beat = time.monotonic()
            continue
        if limit >= _INF or limit > max_cycles:
            break
        if limit > sim.now:
            for dest, handoff in shard.step_window(limit):
                outbuf[dest].append(handoff)
                if handoff[2] < outfloor[dest]:
                    outfloor[dest] = handoff[2]
            b_local = shard.bound()
            last_beat = time.monotonic()
            idle = 0
            continue
        if progress:
            last_beat = time.monotonic()
            idle = 0
            continue
        # sleep(0) yields the core to the peer we wait on; only back off
        # for real once the wait is clearly not a window-to-window gap.
        idle += 1
        time.sleep(0.0005 if idle > 4096 else 0)
        if time.monotonic() - last_beat > heartbeat:
            raise SimulationError(
                f"shard {me} sync stalled for {heartbeat:g}s at "
                f"cycle {sim.now} (published bound {published}; "
                f"shard_heartbeat_s={heartbeat:g})"
            )
    # Terminal: this shard is done (or past max_cycles).  Its bound
    # rises to infinity, but peers may still be running and writing
    # rings, so keep servicing them — a terminal shard emits nothing,
    # so absorbing and acknowledging freely is safe — until everyone
    # is terminal too.
    bounds[me] = _INF
    last_beat = time.monotonic()
    while True:
        progress = False
        for src in peers:
            idx = src * k + me
            w = wcur[idx]
            r = rcur[idx]
            if w != r:
                handoffs, r = _ring_read(rings[src][me], r, w)
                if handoffs:
                    shard.absorb(handoffs)
                rcur[idx] = r
                progress = True
        snapshot = bounds[:]
        if _POISON in snapshot:
            raise _PeerFailure
        if min(snapshot) >= _INF:
            return
        if progress:
            last_beat = time.monotonic()
            continue
        time.sleep(0)
        if time.monotonic() - last_beat > heartbeat:
            raise SimulationError(
                f"shard {me} quiesced but peers stalled for "
                f"{heartbeat:g}s (shard_heartbeat_s={heartbeat:g})"
            )


def _shard_worker(
    shard_id: int,
    config: "AlewifeConfig",
    workload: "Workload",
    plan: ShardPlan,
    shared: _SharedSync,
    conn,
) -> None:
    try:
        shard = _ShardSim(config, workload, plan, shard_id)
        _drive_worker(shard, config, shared)
        laggards = shard.laggards()
        conn.send(
            (
                "quiesced",
                laggards,
                diagnose(shard.machine) if laggards else None,
                local_quiesce_problems(
                    shard.machine.nodes, shard.machine.network
                ),
                cache_holdings(shard.machine.nodes),
                shard.machine.sim.now,
            )
        )
        command = conn.recv()
        if command[0] == "audit":
            checked, problems = audit_entries(shard.machine.nodes, command[1])
            harvest = shard.machine.harvest()
            harvest.shard_rounds[shard_id] = shard.metrics()
            conn.send(("audited", checked, problems, harvest))
    except _PeerFailure:
        _safe_send(conn, ("peer_abort",))
    except BaseException:
        shared.poison(shard_id)
        _safe_send(conn, ("error", traceback.format_exc()))
    finally:
        conn.close()


def _death_cause(exitcode: int | None) -> str:
    """Human-readable cause for a worker that died without reporting.

    Negative multiprocessing exit codes are deaths by signal; name the
    signal (SIGKILL from the OOM killer or a chaos campaign reads very
    differently from SIGSEGV or a plain nonzero exit).
    """
    if exitcode is None:
        return "still running"
    if exitcode < 0:
        try:
            name = _signal.Signals(-exitcode).name
        except ValueError:
            name = f"signal {-exitcode}"
        return f"killed by {name}"
    return f"exited with code {exitcode} without reporting an error"


def _gather(conns, procs) -> list:
    """One message from every worker, raising if any process dies."""
    k = len(conns)
    replies: list = [None] * k
    waiting = set(range(k))
    while waiting:
        for i in list(waiting):
            if conns[i].poll(0.02):
                replies[i] = conns[i].recv()
                waiting.discard(i)
            elif not procs[i].is_alive():
                raise SimulationError(
                    f"shard worker {i} (pid {procs[i].pid}) died: "
                    f"{_death_cause(procs[i].exitcode)}"
                )
    return replies


def _run_forked(
    config: "AlewifeConfig", workload: "Workload", plan: ShardPlan
) -> MachineStats:
    k = plan.n_shards
    ctx = get_context("fork")
    shared = _SharedSync(k)
    pipes = [ctx.Pipe() for _ in range(k)]
    procs = [
        ctx.Process(
            target=_shard_worker,
            args=(i, config, workload, plan, shared, pipes[i][1]),
            daemon=True,
        )
        for i in range(k)
    ]
    for proc in procs:
        proc.start()
    for _parent, child in pipes:
        child.close()
    conns = [parent for parent, _child in pipes]

    try:
        replies = _gather(conns, procs)
        errors = [r[1] for r in replies if r[0] == "error"]
        if errors:
            raise SimulationError(
                "shard worker failed:\n" + "\n".join(errors)
            )
        if any(r[0] != "quiesced" for r in replies):
            raise SimulationError("shard sync aborted without a quiesce")
        cycle = max(r[5] for r in replies)
        laggards = sorted(x for r in replies for x in r[1])
        if laggards:
            for conn in conns:
                conn.send(("abort",))
            raise LivenessError(
                f"sharded simulation stopped at {cycle} cycles with "
                f"processors {laggards[:8]} unfinished (deadlock or "
                f"max_cycles too small)",
                _merge_diagnoses(
                    [r[2] for r in replies if r[2] is not None], cycle
                ),
            )
        problems = [p for r in replies for p in r[3]]
        cached = _merge_holdings([r[4] for r in replies])
        for conn in conns:
            conn.send(("audit", cached))
        harvest = Harvest()
        checked = 0
        for i, reply in enumerate(_gather(conns, procs)):
            if reply[0] != "audited":
                raise SimulationError(f"shard worker {i} failed during audit")
            checked += reply[1]
            problems += reply[2]
            harvest.merge(reply[3])
        raise_on_problems(problems)
        meta = _shard_meta(k, k, harvest.shard_rounds)
        return _finalize(config, harvest, entries_audited=checked, meta=meta)
    finally:
        for proc in procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
        for conn in conns:
            conn.close()


def run_sharded(
    config: "AlewifeConfig",
    workload: "Workload",
    *,
    workers: int | None = None,
) -> MachineStats:
    """Run one machine partitioned into ``config.shards`` shards.

    ``workers=1`` forces the in-process driver (all shards stepped by one
    interpreter — useful for tests and for sweeps that already saturate
    their cores); any other value runs one forked worker per shard.  Both
    drivers produce identical results; platforms without ``fork`` fall
    back to the in-process driver.
    """
    plan = ShardPlan(config)
    if plan.n_shards == 1:
        # Degenerate partition (shards=1 or a one-row machine): the whole
        # machine is one shard, so the window loop would only add bound()
        # overhead.  Run the staged machine directly — identical results
        # by the shard-equivalence contract.
        machine = AlewifeMachine(config)
        stats = machine.run(workload)
        stats.shard_meta = {
            "shards": 1,
            "workers": 1,
            "windows": 1,
            "handoffs": 0,
            "bytes": 0,
            "flushes": 0,
            "per_shard": [
                {
                    "windows": 1,
                    "handoffs_out": 0,
                    "handoffs_in": 0,
                    "bytes_out": 0,
                    "flushes": 0,
                    "events": machine.sim.events_executed,
                }
            ],
        }
        return stats
    if workers == 1 or "fork" not in get_all_start_methods():
        return _run_inprocess(config, workload, plan)
    return _run_forked(config, workload, plan)
