"""Sharded, window-stepped parallel simulation of one machine.

The machine's mesh is partitioned into K contiguous bands of rows, one
shard each.  Every shard runs its own serial :class:`Simulator` over its
own nodes, and the shards advance in lock-step *windows*: conservative
(Chandy-Misra style) synchronization where each round

1. runs every shard up to the current window end ``S`` (exclusive),
2. exchanges the cross-shard handoffs the window produced,
3. inserts inbound handoffs, then computes each shard's *bound* — the
   earliest future cycle at which it could next affect another shard,
4. sets the next window end to the minimum bound.

Because the staged fabric (:mod:`repro.network.fabric`) arbitrates every
link in canonical ``(src, send-seq)`` order and every node's runtime
randomness is scoped to that node, the simulated outcome is a function of
the configuration only — the same cycle counts, traps, and packet totals
for any shard count, and for the in-process driver and the forked
multi-process driver alike.  The bound is computed *after* inbound
handoffs land (a handoff can shorten it), and windows strictly advance
because every fabric's minimum cross-shard latency is positive.

The forked driver synchronizes workers through shared memory: per-round
control words (published bound, round counters) plus one pickle slab per
directed shard pair.  Workers spin-then-yield on the control words —
windows are a few cycles wide, so rounds are far too frequent for pipe
round-trips — and poison their control word on any exception so peers
and the parent unwind instead of deadlocking.
"""

from __future__ import annotations

import ctypes
import pickle
import time
import traceback
from multiprocessing import get_all_start_methods, get_context
from multiprocessing.sharedctypes import RawArray
from typing import TYPE_CHECKING

from ..machine.machine import AlewifeMachine, Harvest, MachineStats
from ..network.topology import make_topology
from ..verify.diagnose import Diagnosis, LivenessError, diagnose
from ..verify.invariants import (
    audit_entries,
    cache_holdings,
    local_quiesce_problems,
    raise_on_problems,
)
from .kernel import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from ..machine.config import AlewifeConfig
    from ..workloads.base import Workload

#: "this shard can never again affect another shard" (drained)
_INF = 2**62
#: a worker hit an exception; peers unwind instead of waiting forever
_POISON = -2
#: per directed shard pair, per round, pickled handoff capacity
_SLAB_BYTES = 1 << 20
#: seconds a worker will wait on a peer before declaring the sync dead
_SYNC_TIMEOUT = 120.0


class ShardPlan:
    """Contiguous partition of the machine's nodes into shards.

    Mesh and torus machines split into bands of whole rows, so the only
    cross-shard links are the vertical ones at band boundaries (X-then-Y
    routing keeps the X phase inside a band).  Link-free topologies
    (ideal, crossbar) split into contiguous id ranges.  The shard count
    is clamped to what the topology can support; ``omega`` is rejected at
    config validation.
    """

    def __init__(self, config: "AlewifeConfig") -> None:
        n = config.n_procs
        k = max(1, config.shards)
        if config.topology in ("mesh", "torus"):
            geometry = make_topology(config.topology, n).geometry
            rows = geometry.height
            k = min(k, rows)
            width = geometry.width
            assign = [(node // width) * k // rows for node in range(n)]
        else:
            k = min(k, n)
            assign = [node * k // n for node in range(n)]
        self.n_shards = k
        self._assign = assign
        self._owned: list[list[int]] = [[] for _ in range(k)]
        for node, shard in enumerate(assign):
            self._owned[shard].append(node)

    def shard_of(self, node: int) -> int:
        return self._assign[node]

    def owned(self, shard_id: int) -> list[int]:
        return self._owned[shard_id]


class _ShardSim:
    """One shard: a partitioned machine plus its window-stepping state."""

    def __init__(
        self,
        config: "AlewifeConfig",
        workload: "Workload",
        plan: ShardPlan,
        shard_id: int,
    ) -> None:
        self.shard_id = shard_id
        self.machine = AlewifeMachine(
            config,
            shard_id=shard_id,
            shard_of=plan.shard_of,
            owned=plan.owned(shard_id),
        )
        # Every shard replays the whole (deterministic) workload build so
        # allocations land at identical addresses everywhere, then installs
        # only the programs of the processors it owns.
        programs = workload.build(self.machine)
        total = 0
        node_map = self.machine.node_map
        for proc_id, generators in programs.items():
            total += len(generators)
            if proc_id in node_map:
                for gen in generators:
                    node_map[proc_id].processor.add_thread(gen)
        if not total:
            raise SimulationError("workload produced no programs")
        for node in self.machine.nodes:
            node.start()
        self.windows = 0

    def bound(self) -> int:
        b = self.machine.network.cross_bound()
        return _INF if b is None else b

    def step_window(self, limit: int) -> list[tuple[int, tuple]]:
        """Run [now, limit), return the (dest_shard, handoff) traffic."""
        self.machine.sim.run_until(limit)
        self.windows += 1
        return self.machine.network.take_outbox()

    def absorb(self, handoffs: list[tuple]) -> None:
        network = self.machine.network
        for handoff in handoffs:
            network.receive_handoff(handoff)

    def laggards(self) -> list[int]:
        return [
            n.node_id for n in self.machine.nodes if not n.processor.done
        ]


def _merge_diagnoses(parts: list[Diagnosis], cycle: int) -> Diagnosis:
    merged = Diagnosis(
        cycle=cycle,
        finished_processors=sum(p.finished_processors for p in parts),
        total_processors=sum(p.total_processors for p in parts),
        packets_in_flight=sum(p.packets_in_flight for p in parts),
        oldest_packet=next(
            (p.oldest_packet for p in parts if p.oldest_packet), None
        ),
    )
    for part in parts:
        merged.stuck_contexts += part.stuck_contexts
        merged.open_mshrs += part.open_mshrs
        merged.busy_entries += part.busy_entries
        merged.ipi_backlogs += part.ipi_backlogs
    return merged


def _merge_holdings(slices: list[dict]) -> dict:
    merged: dict[int, dict[int, tuple]] = {}
    for piece in slices:
        for block, holders in piece.items():
            merged.setdefault(block, {}).update(holders)
    return merged


def _finalize(
    config: "AlewifeConfig",
    harvest: Harvest,
    *,
    entries_audited: int,
    meta: dict,
) -> MachineStats:
    return harvest.finalize(
        config, entries_audited=entries_audited, shard_meta=meta
    )


# ----------------------------------------------------------------------
# In-process driver (workers=1): every shard in one interpreter
# ----------------------------------------------------------------------


def _run_inprocess(
    config: "AlewifeConfig", workload: "Workload", plan: ShardPlan
) -> MachineStats:
    k = plan.n_shards
    shards = [_ShardSim(config, workload, plan, i) for i in range(k)]
    bounds = [s.bound() for s in shards]
    handoffs = 0
    while True:
        limit = min(bounds)
        if limit >= _INF or limit > config.max_cycles:
            break
        inboxes: list[list[tuple]] = [[] for _ in range(k)]
        for shard in shards:
            for dest, handoff in shard.step_window(limit):
                inboxes[dest].append(handoff)
                handoffs += 1
        for shard in shards:
            shard.absorb(inboxes[shard.shard_id])
        bounds = [s.bound() for s in shards]

    laggards = sorted(x for s in shards for x in s.laggards())
    cycle = max(s.machine.sim.now for s in shards)
    if laggards:
        raise LivenessError(
            f"sharded simulation stopped at {cycle} cycles with processors "
            f"{laggards[:8]} unfinished (deadlock or max_cycles too small)",
            _merge_diagnoses([diagnose(s.machine) for s in shards], cycle),
        )

    problems: list[str] = []
    for shard in shards:
        problems += local_quiesce_problems(
            shard.machine.nodes, shard.machine.network
        )
    cached = _merge_holdings([cache_holdings(s.machine.nodes) for s in shards])
    checked = 0
    for shard in shards:
        part_checked, part_problems = audit_entries(shard.machine.nodes, cached)
        checked += part_checked
        problems += part_problems
    raise_on_problems(problems)

    harvest = Harvest()
    for shard in shards:
        harvest.merge(shard.machine.harvest())
    meta = {
        "shards": k,
        "workers": 1,
        "windows": shards[0].windows,
        "handoffs": handoffs,
    }
    return _finalize(config, harvest, entries_audited=checked, meta=meta)


# ----------------------------------------------------------------------
# Forked driver: one worker process per shard, shared-memory rounds
# ----------------------------------------------------------------------


class _SharedRound:
    """Fork-inherited shared state for the window protocol.

    Per worker: ``done[i]`` (last round whose bound is published),
    ``ready[i]`` (last round whose outbound slabs are written) and
    ``bounds[i]``.  Per directed pair (i, j): a pickle slab and its
    length.  A worker that fails writes ``_POISON`` into its bound and
    pushes its counters to infinity so nobody blocks on it.
    """

    def __init__(self, k: int) -> None:
        self.k = k
        # -1 = "round 0 not yet published": zero-filled arrays would let
        # the first wait(…, 0) pass before any peer published its bound.
        self.done = RawArray(ctypes.c_longlong, [-1] * k)
        self.ready = RawArray(ctypes.c_longlong, [-1] * k)
        self.bounds = RawArray(ctypes.c_longlong, [_INF] * k)
        self.lens = RawArray(ctypes.c_longlong, k * k)
        self.slabs = [
            [
                RawArray(ctypes.c_char, _SLAB_BYTES) if i != j else None
                for j in range(k)
            ]
            for i in range(k)
        ]

    def wait(self, array, target: int) -> None:
        """Spin-then-yield until every counter reaches ``target``."""
        deadline = None
        for idx in range(self.k):
            spins = 0
            while array[idx] < target:
                spins += 1
                if spins & 0xFF == 0:
                    # Yield the core: single-core containers never make
                    # progress under a pure spin.
                    time.sleep(0)
                    if spins & 0x3FFF == 0:
                        if deadline is None:
                            deadline = time.monotonic() + _SYNC_TIMEOUT
                        elif time.monotonic() > deadline:
                            raise SimulationError(
                                f"shard sync timed out waiting for worker {idx}"
                            )

    def poison(self, shard_id: int) -> None:
        self.bounds[shard_id] = _POISON
        self.done[shard_id] = _INF
        self.ready[shard_id] = _INF


class _PeerFailure(Exception):
    """Another worker poisoned the round; unwind quietly."""


def _safe_send(conn, message) -> None:
    """Send, ignoring a parent that already closed its end of the pipe."""
    try:
        conn.send(message)
    except (BrokenPipeError, EOFError, OSError):
        pass


def _shard_worker(
    shard_id: int,
    config: "AlewifeConfig",
    workload: "Workload",
    plan: ShardPlan,
    shared: _SharedRound,
    conn,
) -> None:
    k = plan.n_shards
    try:
        shard = _ShardSim(config, workload, plan, shard_id)
        rounds = 0
        shared.bounds[shard_id] = shard.bound()
        shared.done[shard_id] = 0
        while True:
            shared.wait(shared.done, rounds)
            bounds = shared.bounds[:]
            if _POISON in bounds:
                raise _PeerFailure
            limit = min(bounds)
            if limit >= _INF or limit > config.max_cycles:
                break
            rounds += 1
            outboxes: list[list[tuple]] = [[] for _ in range(k)]
            for dest, handoff in shard.step_window(limit):
                outboxes[dest].append(handoff)
            for dest in range(k):
                if dest == shard_id:
                    continue
                if outboxes[dest]:
                    blob = pickle.dumps(
                        outboxes[dest], protocol=pickle.HIGHEST_PROTOCOL
                    )
                    if len(blob) > _SLAB_BYTES:
                        raise SimulationError(
                            f"cross-shard window traffic ({len(blob)} bytes) "
                            f"overflowed the {_SLAB_BYTES}-byte slab"
                        )
                    shared.slabs[shard_id][dest][: len(blob)] = blob
                    shared.lens[shard_id * k + dest] = len(blob)
                else:
                    shared.lens[shard_id * k + dest] = 0
            shared.ready[shard_id] = rounds
            shared.wait(shared.ready, rounds)
            for src in range(k):
                if src == shard_id:
                    continue
                length = shared.lens[src * k + shard_id]
                if length:
                    shard.absorb(
                        pickle.loads(shared.slabs[src][shard_id][:length])
                    )
            shared.bounds[shard_id] = shard.bound()
            shared.done[shard_id] = rounds

        laggards = shard.laggards()
        conn.send(
            (
                "quiesced",
                laggards,
                diagnose(shard.machine) if laggards else None,
                local_quiesce_problems(
                    shard.machine.nodes, shard.machine.network
                ),
                cache_holdings(shard.machine.nodes),
                shard.machine.sim.now,
                rounds,
            )
        )
        command = conn.recv()
        if command[0] == "audit":
            checked, problems = audit_entries(shard.machine.nodes, command[1])
            conn.send(
                (
                    "audited",
                    checked,
                    problems,
                    shard.machine.harvest(),
                    shard.machine.network.handoffs_out,
                )
            )
    except _PeerFailure:
        _safe_send(conn, ("peer_abort",))
    except BaseException:
        shared.poison(shard_id)
        _safe_send(conn, ("error", traceback.format_exc()))
    finally:
        conn.close()


def _recv(conn, proc):
    """Receive one message, raising if the worker process died."""
    while not conn.poll(0.2):
        if not proc.is_alive():
            raise SimulationError(
                f"shard worker pid {proc.pid} died (exit {proc.exitcode})"
            )
    return conn.recv()


def _run_forked(
    config: "AlewifeConfig", workload: "Workload", plan: ShardPlan
) -> MachineStats:
    k = plan.n_shards
    ctx = get_context("fork")
    shared = _SharedRound(k)
    pipes = [ctx.Pipe() for _ in range(k)]
    procs = [
        ctx.Process(
            target=_shard_worker,
            args=(i, config, workload, plan, shared, pipes[i][1]),
            daemon=True,
        )
        for i in range(k)
    ]
    for proc in procs:
        proc.start()
    for _parent, child in pipes:
        child.close()
    conns = [parent for parent, _child in pipes]

    try:
        replies = [_recv(conns[i], procs[i]) for i in range(k)]
        errors = [r[1] for r in replies if r[0] == "error"]
        if errors:
            raise SimulationError(
                "shard worker failed:\n" + "\n".join(errors)
            )
        cycle = max(r[5] for r in replies)
        laggards = sorted(x for r in replies for x in r[1])
        if laggards:
            for conn in conns:
                conn.send(("abort",))
            raise LivenessError(
                f"sharded simulation stopped at {cycle} cycles with "
                f"processors {laggards[:8]} unfinished (deadlock or "
                f"max_cycles too small)",
                _merge_diagnoses(
                    [r[2] for r in replies if r[2] is not None], cycle
                ),
            )
        problems = [p for r in replies for p in r[3]]
        cached = _merge_holdings([r[4] for r in replies])
        for conn in conns:
            conn.send(("audit", cached))
        harvest = Harvest()
        checked = 0
        handoffs = 0
        for i in range(k):
            reply = _recv(conns[i], procs[i])
            if reply[0] != "audited":
                raise SimulationError(f"shard worker {i} failed during audit")
            checked += reply[1]
            problems += reply[2]
            harvest.merge(reply[3])
            handoffs += reply[4]
        raise_on_problems(problems)
        meta = {
            "shards": k,
            "workers": k,
            "windows": replies[0][6],
            "handoffs": handoffs,
        }
        return _finalize(config, harvest, entries_audited=checked, meta=meta)
    finally:
        for proc in procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
        for conn in conns:
            conn.close()


def run_sharded(
    config: "AlewifeConfig",
    workload: "Workload",
    *,
    workers: int | None = None,
) -> MachineStats:
    """Run one machine partitioned into ``config.shards`` shards.

    ``workers=1`` forces the in-process driver (all shards stepped by one
    interpreter — useful for tests and for sweeps that already saturate
    their cores); any other value runs one forked worker per shard.  Both
    drivers produce identical results; platforms without ``fork`` fall
    back to the in-process driver.
    """
    plan = ShardPlan(config)
    if plan.n_shards == 1 or workers == 1 or "fork" not in get_all_start_methods():
        return _run_inprocess(config, workload, plan)
    return _run_forked(config, workload, plan)
