"""Deterministic random number generation for the simulator.

Every stochastic choice (think-time jitter, retry backoff jitter, workload
data placement) draws from a stream seeded from a single experiment seed, so
a configuration reproduces the same execution cycle-for-cycle.
"""

from __future__ import annotations

import random


class DeterministicRng:
    """A seeded RNG with named substreams.

    Substreams decouple consumers: adding a draw in the network model does
    not perturb the workload generator's stream.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the substream called ``name``."""
        if name not in self._streams:
            self._streams[name] = random.Random(f"{self.seed}:{name}")
        return self._streams[name]

    def randint(self, name: str, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi] from substream ``name``."""
        return self.stream(name).randint(lo, hi)

    def choice(self, name: str, seq):
        """Uniform choice from ``seq`` using substream ``name``."""
        return self.stream(name).choice(seq)

    def shuffled(self, name: str, seq) -> list:
        """A shuffled copy of ``seq`` using substream ``name``."""
        out = list(seq)
        self.stream(name).shuffle(out)
        return out
