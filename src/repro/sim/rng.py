"""Deterministic random number generation for the simulator.

Every stochastic choice (think-time jitter, retry backoff jitter, workload
data placement) draws from a stream seeded from a single experiment seed, so
a configuration reproduces the same execution cycle-for-cycle.
"""

from __future__ import annotations

import random


class DeterministicRng:
    """A seeded RNG with named substreams.

    Substreams decouple consumers: adding a draw in the network model does
    not perturb the workload generator's stream.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the substream called ``name``."""
        if name not in self._streams:
            self._streams[name] = random.Random(f"{self.seed}:{name}")
        return self._streams[name]

    def randint(self, name: str, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi] from substream ``name``."""
        return self.stream(name).randint(lo, hi)

    def choice(self, name: str, seq):
        """Uniform choice from ``seq`` using substream ``name``."""
        return self.stream(name).choice(seq)

    def shuffled(self, name: str, seq) -> list:
        """A shuffled copy of ``seq`` using substream ``name``."""
        out = list(seq)
        self.stream(name).shuffle(out)
        return out


class ScopedRng:
    """A :class:`DeterministicRng` view that prefixes every substream name.

    Sharded simulation scopes each node's runtime draws (retry jitter,
    victim choice) to that node: a shared stream's draw order would depend
    on how nodes interleave globally, which differs between a serial run
    and a sharded one.  With per-node streams, a node's draw sequence is a
    function of its own deterministic history only.
    """

    def __init__(self, base: DeterministicRng, scope: str) -> None:
        self._base = base
        self._scope = scope

    @property
    def seed(self) -> int:
        return self._base.seed

    def stream(self, name: str):
        return self._base.stream(f"{self._scope}.{name}")

    def randint(self, name: str, lo: int, hi: int) -> int:
        return self.stream(name).randint(lo, hi)

    def choice(self, name: str, seq):
        return self.stream(name).choice(seq)

    def shuffled(self, name: str, seq) -> list:
        out = list(seq)
        self.stream(name).shuffle(out)
        return out
