"""Discrete-event simulation kernel.

ASIM, the Alewife system simulator, advances the machine model in processor
cycles.  We reproduce it with an event-driven kernel: components schedule
callbacks at absolute cycle times, and the kernel executes them in
deterministic (time, sequence) order.  Determinism matters because the
reproduction's experiments compare protocols on *absolute execution cycles*;
two runs of the same configuration must produce identical cycle counts.

The kernel is the innermost loop of every experiment, so its data layout is
chosen for speed: the heap holds plain ``(time, seq, callback, arg, event)``
tuples so that sift operations compare tuples in C instead of calling a
Python ``__lt__`` (``seq`` is unique, so comparison never reaches the
callback), ``Event`` uses ``__slots__``, and callbacks may carry one
pre-bound argument (``call_at(t, handler, packet)``) so hot paths schedule
without allocating a closure per event.  ``post``/``post_after`` skip the
:class:`Event` cancel handle entirely — the last tuple slot is None — for
schedulers that never cancel.  Live events are counted incrementally —
scheduling increments, cancellation and execution decrement — so
``pending_events`` is O(1) instead of an O(n) queue scan.
"""

from __future__ import annotations

import heapq
from collections import deque
from heapq import heappush as _heappush
from typing import Any, Callable

#: Sentinel distinguishing "no argument" from "argument is None".
_NO_ARG = object()


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class DeadlockError(SimulationError):
    """Raised when the event queue drains while agents are still blocked."""


class Event:
    """A scheduled callback.

    Events order by (time, seq): ties at the same cycle execute in the order
    they were scheduled, which keeps runs deterministic.  The ordering lives
    in the simulator's heap tuples; the Event object itself is the cancel
    handle (and carries the optional pre-bound callback argument).
    """

    __slots__ = ("time", "seq", "callback", "arg", "cancelled", "_sim", "_done")

    def __init__(
        self,
        time: int,
        seq: int,
        callback: Callable[..., None],
        arg: Any = _NO_ARG,
        sim: "Simulator | None" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.arg = arg
        self.cancelled = False
        self._sim = sim
        self._done = False

    def cancel(self) -> None:
        """Prevent the callback from running when its time arrives."""
        if self.cancelled or self._done:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._live -= 1


class Simulator:
    """Event queue plus the global cycle counter.

    Typical usage::

        sim = Simulator()
        sim.call_at(10, lambda: print("cycle 10"))
        sim.run()
    """

    def __init__(self, *, max_cycles: int | None = None) -> None:
        self._queue: list[tuple] = []
        self._seq = 0
        #: descending negative sequence counter for :meth:`post_front`
        self._front_seq = -1
        self._live = 0
        #: same-cycle fast lane: events scheduled *for* the current cycle
        #: *during* the current cycle skip the heap entirely.  Entries are
        #: ``(seq, callback, arg, event)``; their time is always ``now``.
        self._lane: deque[tuple] = deque()
        self.now = 0
        self.max_cycles = max_cycles
        self.events_executed = 0
        self._running = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def call_at(
        self, time: int, callback: Callable[..., None], arg: Any = _NO_ARG
    ) -> Event:
        """Schedule ``callback`` at absolute cycle ``time``.

        ``arg``, when given, is passed to the callback at execution time —
        the allocation-free alternative to ``lambda: callback(arg)`` on hot
        paths like packet delivery.
        """
        time = int(time)
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time}, now is {self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback, arg, self)
        if time == self.now and self._running:
            self._lane.append((seq, callback, arg, event))
        else:
            _heappush(self._queue, (time, seq, callback, arg, event))
        self._live += 1
        return event

    def call_after(
        self, delay: int, callback: Callable[..., None], arg: Any = _NO_ARG
    ) -> Event:
        """Schedule ``callback`` ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self.now + int(delay), callback, arg)

    def post(
        self, time: int, callback: Callable[..., None], arg: Any = _NO_ARG
    ) -> None:
        """Schedule without a cancel handle.

        The hot-path twin of :meth:`call_at`: no :class:`Event` is
        allocated, so the caller cannot cancel the callback, and times are
        trusted to be integers (every internal scheduler computes them
        with integer arithmetic).  Every steady-state scheduler in the
        machine model (packet delivery, pipeline steps, directory
        occupancy) uses this.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time}, now is {self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        if time == self.now and self._running:
            self._lane.append((seq, callback, arg, None))
        else:
            _heappush(self._queue, (time, seq, callback, arg, None))
        self._live += 1

    def post_front(
        self, time: int, callback: Callable[..., None], arg: Any = _NO_ARG
    ) -> None:
        """Schedule ahead of every normally-scheduled event at ``time``.

        Front events at one cycle execute before all ``call_at``/``post``
        events of that cycle, in an unspecified order among themselves —
        callers must only front-schedule work whose instances commute.
        The sharded fabric uses this for its link/inbox drains so that a
        cycle's cross-shard deliveries land in canonical order regardless
        of how event sequence numbers interleave on each shard.
        """
        time = int(time)
        if time < self.now or (time == self.now and self._running):
            raise SimulationError(
                f"cannot front-schedule event at {time}, now is {self.now}"
            )
        seq = self._front_seq
        self._front_seq = seq - 1
        _heappush(self._queue, (time, seq, callback, arg, None))
        self._live += 1

    def post_after(
        self, delay: int, callback: Callable[..., None], arg: Any = _NO_ARG
    ) -> None:
        """Schedule ``delay`` cycles from now without a cancel handle."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.post(self.now + int(delay), callback, arg)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _flush_lane(self) -> None:
        """Spill same-cycle lane entries back into the heap.

        Only reachable when a callback raised mid-run: the lane drains
        before the loops return normally.  Re-heaping (with the original
        seqs) keeps ``step``/``run`` after a caught exception exact.
        """
        lane = self._lane
        now = self.now
        while lane:
            seq, callback, arg, event = lane.popleft()
            _heappush(self._queue, (now, seq, callback, arg, event))

    def step(self) -> bool:
        """Execute the next pending event.  Returns False when drained."""
        queue = self._queue
        while queue:
            time, _seq, callback, arg, event = heapq.heappop(queue)
            if event is not None:
                if event.cancelled:
                    continue
                event._done = True
            if time < self.now:
                raise SimulationError("event queue time went backwards")
            self.now = time
            self.events_executed += 1
            self._live -= 1
            if arg is _NO_ARG:
                callback()
            else:
                callback(arg)
            return True
        return False

    def run(self, until: int | None = None) -> int:
        """Run until the queue drains, ``until`` cycles, or ``max_cycles``.

        Returns the cycle count at which the run stopped.
        """
        limit = self.max_cycles if until is None else until
        queue = self._queue
        lane = self._lane
        pop = heapq.heappop
        no_arg = _NO_ARG
        self._running = True
        try:
            # ``call_at`` refuses past times, so queue times are monotone and
            # the loop needs no went-backwards check.  A non-empty lane holds
            # events at exactly ``now``; a heap event at the same cycle was
            # necessarily scheduled in an earlier cycle (same-cycle schedules
            # go to the lane), so its seq is smaller and it runs first —
            # comparing the heap top's seq against the lane head preserves
            # exact (time, seq) order without heap traffic for lane events.
            if limit is None:
                while True:
                    if lane:
                        if (
                            queue
                            and queue[0][0] == self.now
                            and queue[0][1] < lane[0][0]
                        ):
                            _time, _seq, callback, arg, event = pop(queue)
                        else:
                            _seq, callback, arg, event = lane.popleft()
                        if event is not None:
                            if event.cancelled:
                                continue
                            event._done = True
                    elif queue:
                        time, _seq, callback, arg, event = pop(queue)
                        if event is not None:
                            if event.cancelled:
                                continue
                            event._done = True
                        self.now = time
                    else:
                        break
                    self.events_executed += 1
                    self._live -= 1
                    if arg is no_arg:
                        callback()
                    else:
                        callback(arg)
            else:
                while True:
                    if lane:
                        if (
                            queue
                            and queue[0][0] == self.now
                            and queue[0][1] < lane[0][0]
                        ):
                            _time, _seq, callback, arg, event = pop(queue)
                        else:
                            _seq, callback, arg, event = lane.popleft()
                        if event is not None:
                            if event.cancelled:
                                continue
                            event._done = True
                    elif queue:
                        if queue[0][0] > limit:
                            self.now = limit
                            break
                        time, _seq, callback, arg, event = pop(queue)
                        if event is not None:
                            if event.cancelled:
                                continue
                            event._done = True
                        self.now = time
                    else:
                        break
                    self.events_executed += 1
                    self._live -= 1
                    if arg is no_arg:
                        callback()
                    else:
                        callback(arg)
        finally:
            self._running = False
            if lane:
                self._flush_lane()
        return self.now

    def run_until(self, limit: int) -> int:
        """Execute every event strictly before ``limit``; leave now=limit.

        The window primitive of the sharded driver: after it returns, the
        queue holds only events at ``limit`` or later and externally
        injected work (cross-shard handoffs) may be posted at any time
        >= ``limit``.  Unlike :meth:`run`, events at exactly ``limit`` do
        *not* execute — a window owns the half-open interval [now, limit).
        """
        limit = int(limit)
        if limit < self.now:
            raise SimulationError(
                f"cannot run window to {limit}, now is {self.now}"
            )
        queue = self._queue
        lane = self._lane
        if not lane and (not queue or queue[0][0] >= limit):
            # Empty window: nothing strictly before limit (a cancelled
            # head still lower-bounds the live events under it).  Shards
            # idling through wide adaptive windows take this exit.
            self.now = limit
            return limit
        pop = heapq.heappop
        no_arg = _NO_ARG
        self._running = True
        try:
            while True:
                if lane:
                    if (
                        queue
                        and queue[0][0] == self.now
                        and queue[0][1] < lane[0][0]
                    ):
                        _time, _seq, callback, arg, event = pop(queue)
                    else:
                        _seq, callback, arg, event = lane.popleft()
                    if event is not None:
                        if event.cancelled:
                            continue
                        event._done = True
                elif queue:
                    if queue[0][0] >= limit:
                        break
                    time, _seq, callback, arg, event = pop(queue)
                    if event is not None:
                        if event.cancelled:
                            continue
                        event._done = True
                    self.now = time
                else:
                    break
                self.events_executed += 1
                self._live -= 1
                if arg is no_arg:
                    callback()
                else:
                    callback(arg)
        finally:
            self._running = False
            if lane:
                self._flush_lane()
        self.now = limit
        return self.now

    def next_event_time(self) -> int | None:
        """Time of the earliest live event, or None when drained.

        Pops already-cancelled heap heads on the way (they would be
        skipped at execution anyway), so the answer is exact.
        """
        queue = self._queue
        while queue:
            head = queue[0]
            event = head[4]
            if event is not None and event.cancelled:
                heapq.heappop(queue)
                continue
            return head[0]
        return None

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return self._live

    def drain_check(self, describe_blocked: Callable[[], str] | None = None) -> None:
        """Raise :class:`DeadlockError` if live events remain queued."""
        if self.pending_events:
            detail = describe_blocked() if describe_blocked else ""
            raise DeadlockError(
                f"{self.pending_events} events still pending at cycle "
                f"{self.now}. {detail}"
            )


class StallableResource:
    """A serially-occupied resource (memory controller, link, ...).

    Requests reserve the resource for a number of cycles; a request arriving
    while the resource is busy starts when it frees.  ``acquire`` returns the
    cycle at which the reservation *ends* (i.e. when the work completes).
    """

    def __init__(self, sim: Simulator, name: str = "resource") -> None:
        self._sim = sim
        self.name = name
        self.free_at = 0
        self.busy_cycles = 0
        self.requests = 0

    def acquire(self, occupancy: int, *, not_before: int | None = None) -> int:
        """Reserve ``occupancy`` cycles, starting no earlier than now.

        ``not_before`` lets callers model work that cannot begin until some
        future cycle (e.g. a packet that is still in flight).
        """
        start = max(self._sim.now, self.free_at)
        if not_before is not None:
            start = max(start, not_before)
        self.free_at = start + int(occupancy)
        self.busy_cycles += int(occupancy)
        self.requests += 1
        return self.free_at

    def stall(self, cycles: int) -> None:
        """Push the resource's free time out by ``cycles`` (e.g. a trap)."""
        start = max(self._sim.now, self.free_at)
        self.free_at = start + int(cycles)
        self.busy_cycles += int(cycles)

    def utilization(self, elapsed: int) -> float:
        """Fraction of ``elapsed`` cycles the resource was occupied."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed)


def simulate_all(sim: Simulator, components: list[Any]) -> int:
    """Start every component (calling ``start()`` if present) and run."""
    for component in components:
        start = getattr(component, "start", None)
        if callable(start):
            start()
    return sim.run()
