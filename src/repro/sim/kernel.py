"""Discrete-event simulation kernel.

ASIM, the Alewife system simulator, advances the machine model in processor
cycles.  We reproduce it with an event-driven kernel: components schedule
callbacks at absolute cycle times, and the kernel executes them in
deterministic (time, sequence) order.  Determinism matters because the
reproduction's experiments compare protocols on *absolute execution cycles*;
two runs of the same configuration must produce identical cycle counts.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class DeadlockError(SimulationError):
    """Raised when the event queue drains while agents are still blocked."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events order by (time, seq): ties at the same cycle execute in the order
    they were scheduled, which keeps runs deterministic.
    """

    time: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent the callback from running when its time arrives."""
        self.cancelled = True


class Simulator:
    """Event queue plus the global cycle counter.

    Typical usage::

        sim = Simulator()
        sim.call_at(10, lambda: print("cycle 10"))
        sim.run()
    """

    def __init__(self, *, max_cycles: int | None = None) -> None:
        self._queue: list[Event] = []
        self._seq = 0
        self.now = 0
        self.max_cycles = max_cycles
        self.events_executed = 0
        self._running = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def call_at(self, time: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute cycle ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time}, now is {self.now}"
            )
        event = Event(int(time), self._seq, callback)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def call_after(self, delay: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self.now + int(delay), callback)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the next pending event.  Returns False when drained."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self.now:
                raise SimulationError("event queue time went backwards")
            self.now = event.time
            self.events_executed += 1
            event.callback()
            return True
        return False

    def run(self, until: int | None = None) -> int:
        """Run until the queue drains, ``until`` cycles, or ``max_cycles``.

        Returns the cycle count at which the run stopped.
        """
        limit = self.max_cycles if until is None else until
        self._running = True
        try:
            while self._queue:
                if limit is not None and self._queue[0].time > limit:
                    self.now = limit
                    break
                if not self.step():
                    break
        finally:
            self._running = False
        return self.now

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)

    def drain_check(self, describe_blocked: Callable[[], str] | None = None) -> None:
        """Raise :class:`DeadlockError` if live events remain queued."""
        if self.pending_events:
            detail = describe_blocked() if describe_blocked else ""
            raise DeadlockError(
                f"{self.pending_events} events still pending at cycle "
                f"{self.now}. {detail}"
            )


class StallableResource:
    """A serially-occupied resource (memory controller, link, ...).

    Requests reserve the resource for a number of cycles; a request arriving
    while the resource is busy starts when it frees.  ``acquire`` returns the
    cycle at which the reservation *ends* (i.e. when the work completes).
    """

    def __init__(self, sim: Simulator, name: str = "resource") -> None:
        self._sim = sim
        self.name = name
        self.free_at = 0
        self.busy_cycles = 0
        self.requests = 0

    def acquire(self, occupancy: int, *, not_before: int | None = None) -> int:
        """Reserve ``occupancy`` cycles, starting no earlier than now.

        ``not_before`` lets callers model work that cannot begin until some
        future cycle (e.g. a packet that is still in flight).
        """
        start = max(self._sim.now, self.free_at)
        if not_before is not None:
            start = max(start, not_before)
        self.free_at = start + int(occupancy)
        self.busy_cycles += int(occupancy)
        self.requests += 1
        return self.free_at

    def stall(self, cycles: int) -> None:
        """Push the resource's free time out by ``cycles`` (e.g. a trap)."""
        start = max(self._sim.now, self.free_at)
        self.free_at = start + int(cycles)
        self.busy_cycles += int(cycles)

    def utilization(self, elapsed: int) -> float:
        """Fraction of ``elapsed`` cycles the resource was occupied."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed)


def simulate_all(sim: Simulator, components: list[Any]) -> int:
    """Start every component (calling ``start()`` if present) and run."""
    for component in components:
        start = getattr(component, "start", None)
        if callable(start):
            start()
    return sim.run()
