"""LimitLESS Directories: A Scalable Cache Coherence Scheme — reproduction.

Public API:

* :class:`~repro.machine.AlewifeConfig` / :class:`~repro.machine.AlewifeMachine`
  — configure and build a simulated Alewife machine with any of the
  directory protocols (``fullmap``, ``limited``, ``limitless``,
  ``limitless_approx``, ``chained``, ``trap_always``).
* :func:`~repro.machine.run_experiment` — one-shot config + workload run.
* :mod:`repro.workloads` — Weather, Multigrid, and the microbenchmarks.
* :mod:`repro.model` — the §3.1 analytical latency model and directory
  memory-overhead model.
* :mod:`repro.stats` — figure-style reporting helpers.

Quickstart::

    from repro import AlewifeConfig, run_experiment
    from repro.workloads import WeatherWorkload

    config = AlewifeConfig(n_procs=16, protocol="limitless", pointers=4, ts=50)
    stats = run_experiment(config, WeatherWorkload(iterations=4))
    print(stats.summary())
"""

from .coherence import protocol_names
from .machine import AlewifeConfig, AlewifeMachine, MachineStats, run_experiment

__version__ = "1.0.0"

__all__ = [
    "AlewifeConfig",
    "AlewifeMachine",
    "MachineStats",
    "protocol_names",
    "run_experiment",
    "__version__",
]
