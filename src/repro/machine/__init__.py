"""Machine assembly and the experiment driver."""

from .config import AlewifeConfig
from .machine import AlewifeMachine, MachineStats, run_experiment
from .node import Node

__all__ = ["AlewifeConfig", "AlewifeMachine", "MachineStats", "Node", "run_experiment"]
