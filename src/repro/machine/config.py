"""Machine configuration.

Defaults model the Alewife node of §2: a 33 MHz SPARCLE with four hardware
contexts and an 11-cycle context switch, 64 KB direct-mapped cache with
16-byte lines, 4 MB of globally shared memory per node, a wormhole-routed
2-D mesh, and a single-chip cache/memory controller.  ``ts`` is the paper's
T_s — the LimitLESS full-map-emulation latency, estimated at 50–100 cycles
for Alewife and swept 25–150 in the evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from ..coherence.registry import protocol_names


@dataclass(frozen=True)
class AlewifeConfig:
    """Complete description of one simulated machine."""

    n_procs: int = 64
    protocol: str = "limitless"
    #: hardware pointers per directory entry (the i of Dir_iNB, the p of
    #: LimitLESS_p); ignored by fullmap/chained
    pointers: int = 4
    #: LimitLESS software emulation latency per trap (cycles)
    ts: int = 50
    #: optional additional software cost per invalidation launched by the
    #: write-termination trap handler (0 = the paper's flat-T_s model)
    ts_per_invalidation: int = 0

    # Network
    topology: str = "mesh"  # mesh | torus | omega | crossbar | ideal
    hop_latency: int = 1
    cycles_per_word: int = 1
    injection_latency: int = 1
    ideal_latency: int = 8

    # Memory system
    block_bytes: int = 16
    segment_bytes: int = 1 << 22
    cache_lines: int = 4096
    cache_hit_latency: int = 1
    dir_occupancy: int = 3
    retry_base: int = 12
    retry_cap: int = 400
    victim_policy: str = "fifo"

    # Processor
    switch_cycles: int = 11
    max_contexts: int = 4
    spin_poll_interval: int = 12
    #: "sc" = sequentially consistent (stores block, as in Alewife);
    #: "wo" = weakly ordered (stores buffered, fences/atomics order) — the
    #: §2 note that LimitLESS also works under weak ordering
    memory_model: str = "sc"
    #: outstanding-store capacity per context under "wo"
    store_buffer: int = 8

    # Fault injection (per-packet probabilities; all zero = faults off and
    # the machine is wired exactly as before, bit-identical to the goldens)
    fault_drop_rate: float = 0.0
    fault_dup_rate: float = 0.0
    fault_delay_rate: float = 0.0
    #: extra delivery delay drawn uniformly from [1, fault_delay_max] cycles
    fault_delay_max: int = 64
    fault_corrupt_rate: float = 0.0
    #: probability a LimitLESS trap-handler invocation is stalled
    fault_stall_rate: float = 0.0
    #: extra cycles added to a stalled trap invocation
    fault_stall_cycles: int = 500

    # Protocol fault tolerance (0 = derive a default when faults are on)
    #: cycles a cache waits on an outstanding RREQ/WREQ (or buffered
    #: writeback) before retransmitting
    request_timeout: int = 0
    #: cycles the directory waits on outstanding invalidation acks before
    #: retransmitting the INV round
    inv_timeout: int = 0
    #: invalidation retransmission rounds before a write transaction falls
    #: back to broadcast-invalidate directory reconstruction
    inv_retx_broadcast: int = 3
    #: liveness watchdog check period (0 = derive when faults are on)
    watchdog_interval: int = 0

    # Simulation
    #: simulation backend: "reference" is the pure-Python golden object
    #: model; "soa" stores cache/directory state in structure-of-arrays
    #: slabs and batches event execution — bit-identical results (see
    #: repro.backend / docs/BACKENDS.md)
    backend: str = "reference"
    seed: int = 42
    max_cycles: int = 50_000_000
    ipi_capacity: int = 4096
    #: recycle protocol packets through a machine-wide free list.  An
    #: allocator choice only — results are bit-identical either way; the
    #: off switch exists for debugging packet-lifetime bugs.
    packet_pool: bool = True

    # Sharded (parallel single-run) simulation
    #: number of machine shards simulated in lock-step windows; 1 = the
    #: classic serial path
    shards: int = 1
    #: network arbitration model: "atomic" reserves a packet's whole path
    #: at send time (the historical serial fabric, golden-compatible);
    #: "staged" arbitrates each link at head arrival, which is the
    #: shard-invariant model sharded runs require; "auto" picks atomic
    #: for shards=1 and staged otherwise
    fabric: str = "auto"
    #: window-bound policy: "adaptive" widens windows from exact floors on
    #: every in-flight walk and inbox bucket (plus per-node distance
    #: tables), "conservative" keeps the fixed minimum-latency increment.
    #: Results are bit-identical either way; conservative exists as the
    #: A/B baseline and a debugging fallback.
    shard_lookahead: str = "adaptive"
    #: how eagerly the forked driver flushes an accumulated handoff batch
    #: to its ring: a batch is flushed once its earliest target lands
    #: within (local bound + horizon).  0 defers maximally — flush only
    #: what peers may need this window, i.e. the fewest, biggest batches;
    #: larger values flush earlier and more often, trading batching
    #: efficiency for lower handoff latency.
    shard_flush_horizon: int = 0
    #: seconds a forked shard worker waits on its peers without progress
    #: before declaring the sync dead and unwinding (the heartbeat only
    #: arms once every peer has published its first bound; the parent
    #: supervises the build phase).  Small values make wedge detection —
    #: and tests for it — fast; large values tolerate slow machines.
    shard_heartbeat_s: float = 120.0

    @property
    def resolved_fabric(self) -> str:
        """The fabric actually built: "atomic" or "staged"."""
        if self.fabric == "auto":
            return "staged" if self.shards > 1 else "atomic"
        return self.fabric

    @property
    def faults_enabled(self) -> bool:
        """True when any fault-injection rate is non-zero."""
        return (
            self.fault_drop_rate > 0
            or self.fault_dup_rate > 0
            or self.fault_delay_rate > 0
            or self.fault_corrupt_rate > 0
            or self.fault_stall_rate > 0
        )

    def __post_init__(self) -> None:
        if self.n_procs < 1:
            raise ValueError("need at least one processor")
        if self.protocol not in protocol_names():
            raise ValueError(
                f"unknown protocol {self.protocol!r}; choose from {protocol_names()}"
            )
        if self.pointers < 0:
            raise ValueError("pointer count must be >= 0")
        if self.protocol in ("limited", "limited_broadcast") and self.pointers < 1:
            raise ValueError("limited directories need at least one pointer")
        if self.memory_model not in ("sc", "wo"):
            raise ValueError("memory_model must be 'sc' or 'wo'")
        from ..backend import backend_names  # local import: avoids a cycle

        if self.backend not in backend_names():
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                f"choose from {backend_names()}"
            )
        for rate_field in (
            "fault_drop_rate",
            "fault_dup_rate",
            "fault_delay_rate",
            "fault_corrupt_rate",
            "fault_stall_rate",
        ):
            rate = getattr(self, rate_field)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{rate_field} must be in [0, 1], got {rate}")
        if self.fault_delay_max < 1:
            raise ValueError("fault_delay_max must be >= 1")
        if self.inv_retx_broadcast < 1:
            raise ValueError("inv_retx_broadcast must be >= 1")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.fabric not in ("auto", "atomic", "staged"):
            raise ValueError("fabric must be 'auto', 'atomic' or 'staged'")
        if self.shard_lookahead not in ("adaptive", "conservative"):
            raise ValueError("shard_lookahead must be 'adaptive' or 'conservative'")
        if self.shard_flush_horizon < 0:
            raise ValueError("shard_flush_horizon must be >= 0")
        if self.shard_heartbeat_s <= 0:
            raise ValueError("shard_heartbeat_s must be > 0")
        if self.shards > 1:
            if self.fabric == "atomic":
                raise ValueError(
                    "the atomic fabric reserves whole paths at send time and "
                    "cannot be sharded; use fabric='auto' or 'staged'"
                )
            if self.topology == "omega":
                raise ValueError(
                    "omega stage links are shared by many sources and cannot "
                    "be partitioned into shards"
                )
        if self.resolved_fabric == "staged" and (
            self.hop_latency < 1 or self.injection_latency < 1
        ):
            raise ValueError(
                "the staged fabric requires hop_latency and "
                "injection_latency >= 1"
            )

    def with_(self, **changes: Any) -> "AlewifeConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    def label(self) -> str:
        """Short protocol label in the paper's notation."""
        if self.protocol == "fullmap":
            return "Full-Map"
        if self.protocol == "limited":
            return f"Dir{self.pointers}NB"
        if self.protocol == "limited_broadcast":
            return f"Dir{self.pointers}B"
        if self.protocol == "limitless":
            return f"LimitLESS{self.pointers} (Ts={self.ts})"
        if self.protocol == "limitless_approx":
            return f"LimitLESS{self.pointers}~approx (Ts={self.ts})"
        if self.protocol == "chained":
            return "Chained"
        if self.protocol == "trap_always":
            return f"Software-only (Ts={self.ts})"
        return self.protocol
