"""The Alewife machine: nodes + network + experiment driver.

``AlewifeMachine(config).run(workload)`` builds the machine, loads the
workload's programs into the processors, runs the event simulation until
every program finishes, audits the coherence invariants, and returns a
:class:`MachineStats` with the absolute execution time in cycles — the
paper's bottom-line metric ("how fast a system can run a program", §5).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Callable

from ..backend import get_backend
from ..faults import FaultInjector, LivenessWatchdog, StagedFaultGate
from ..mem.address import AddressSpace, Allocator
from ..network.fabric import (
    IdealNetwork,
    Network,
    NetworkStats,
    StagedIdealNetwork,
    StagedWormholeNetwork,
)
from ..network.packet import PacketPool
from ..network.topology import make_topology
from ..sim.kernel import SimulationError
from ..sim.rng import DeterministicRng
from ..stats.counters import Counters, Histogram
from ..verify.diagnose import LivenessError, diagnose
from ..verify.invariants import audit_machine
from .config import AlewifeConfig
from .node import Node

if TYPE_CHECKING:  # pragma: no cover
    from ..workloads.base import Workload


@dataclass
class MachineStats:
    """Results of one complete simulation."""

    config: AlewifeConfig
    cycles: int
    counters: Counters
    network: NetworkStats
    worker_sets: Histogram
    utilization: float
    mean_miss_latency: float
    traps_taken: int
    trap_cycles: int
    per_proc_finish: list[int] = field(default_factory=list)
    entries_audited: int = 0
    #: populated by sharded runs: shards, workers, windows, handoff counts
    shard_meta: dict | None = None

    @property
    def label(self) -> str:
        return self.config.label()

    def mcycles(self) -> float:
        return self.cycles / 1e6

    def summary(self) -> str:
        c = self.counters
        hits = sum(c.get(f"cache.hits.{k}") for k in ("load", "store", "rmw"))
        misses = sum(c.get(f"cache.misses.{k}") for k in ("load", "store", "rmw"))
        ratio = hits / (hits + misses) if hits + misses else 0.0
        return (
            f"{self.label}: {self.cycles} cycles | util {self.utilization:.2f} "
            f"| hit-rate {ratio:.3f} | Th≈{self.mean_miss_latency:.1f} "
            f"| traps {self.traps_taken} | packets {self.network.packets}"
        )

    def to_dict(self) -> dict:
        """JSON-serializable record of the run (the sweep cache format)."""
        return {
            "config": asdict(self.config),
            "cycles": self.cycles,
            "counters": self.counters.as_dict(),
            "network": asdict(self.network),
            "worker_sets": self.worker_sets.as_sorted_items(),
            "utilization": self.utilization,
            "mean_miss_latency": self.mean_miss_latency,
            "traps_taken": self.traps_taken,
            "trap_cycles": self.trap_cycles,
            "per_proc_finish": list(self.per_proc_finish),
            "entries_audited": self.entries_audited,
            "shard_meta": self.shard_meta,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MachineStats":
        """Rebuild stats from :meth:`to_dict` output (e.g. a cache hit)."""
        return cls(
            config=AlewifeConfig(**data["config"]),
            cycles=data["cycles"],
            counters=Counters.from_dict(data["counters"]),
            network=NetworkStats(**data["network"]),
            worker_sets=Histogram.from_items(data["worker_sets"]),
            utilization=data["utilization"],
            mean_miss_latency=data["mean_miss_latency"],
            traps_taken=data["traps_taken"],
            trap_cycles=data["trap_cycles"],
            per_proc_finish=list(data["per_proc_finish"]),
            entries_audited=data.get("entries_audited", 0),
            shard_meta=data.get("shard_meta"),
        )


class AlewifeMachine:
    """A configured machine instance, ready to run one workload.

    A shard worker builds a *partitioned* machine — ``owned`` restricts
    which node ids get Node objects, while ``shard_id``/``shard_of`` teach
    the (necessarily staged) fabric which traffic leaves the shard.  The
    default builds every node and a self-contained fabric, exactly as
    before.
    """

    def __init__(
        self,
        config: AlewifeConfig,
        *,
        shard_id: int = 0,
        shard_of=None,
        owned=None,
    ) -> None:
        self.config = config
        self.shard_id = shard_id
        self.backend = get_backend(config.backend)
        self.sim = self.backend.make_simulator(max_cycles=config.max_cycles)
        self.rng = DeterministicRng(config.seed)
        self.space = AddressSpace(
            n_nodes=config.n_procs,
            block_bytes=config.block_bytes,
            segment_bytes=config.segment_bytes,
        )
        self.allocator = Allocator(self.space)
        self.network = self._build_network(shard_id, shard_of)
        # One free list per machine instance (per shard when sharded);
        # every component reaches it through the network.
        pool_factory = self.backend.make_pool or PacketPool
        self.pool = pool_factory(enabled=config.packet_pool)
        self.network.pool = self.pool
        if config.faults_enabled:
            # The injector installs itself as network.fault_injector and
            # takes over delivery scheduling; zero-rate configs skip it
            # entirely so the fast path (and the goldens) are untouched.
            if config.resolved_fabric == "staged":
                StagedFaultGate(self.network, config)
            else:
                FaultInjector(self.network, self.rng, config)
        self._finished = 0
        self.owned = list(range(config.n_procs)) if owned is None else list(owned)
        self.partitioned = len(self.owned) != config.n_procs
        self.nodes = [
            Node(
                self.sim,
                node_id,
                config,
                self.space,
                self.network,
                self.rng,
                on_proc_done=self._proc_done,
            )
            for node_id in self.owned
        ]
        #: node id -> Node for the nodes this instance actually built
        self.node_map = {node.node_id: node for node in self.nodes}
        if self.backend.finalize is not None:
            self.backend.finalize(self)

    def _build_network(self, shard_id: int, shard_of) -> Network:
        cfg = self.config
        staged = cfg.resolved_fabric == "staged"
        if cfg.topology == "ideal":
            if staged:
                return StagedIdealNetwork(
                    self.sim,
                    cfg.n_procs,
                    latency=cfg.ideal_latency,
                    cycles_per_word=cfg.cycles_per_word,
                    shard_id=shard_id,
                    shard_of=shard_of,
                )
            return IdealNetwork(
                self.sim,
                cfg.n_procs,
                latency=cfg.ideal_latency,
                cycles_per_word=cfg.cycles_per_word,
            )
        topology = make_topology(cfg.topology, cfg.n_procs)
        if staged:
            return StagedWormholeNetwork(
                self.sim,
                topology,
                hop_latency=cfg.hop_latency,
                cycles_per_word=cfg.cycles_per_word,
                injection_latency=cfg.injection_latency,
                shard_id=shard_id,
                shard_of=shard_of,
                lookahead=cfg.shard_lookahead,
            )
        # The atomic mesh is the backend's to provide (the soa backend
        # posts deliveries straight to the destination handler); staged
        # fabrics above stay shared — sharded runs swap storage and the
        # kernel per shard, not the cross-shard arbitration model.
        return self.backend.wormhole_class(
            self.sim,
            topology,
            hop_latency=cfg.hop_latency,
            cycles_per_word=cfg.cycles_per_word,
            injection_latency=cfg.injection_latency,
        )

    def _proc_done(self, _proc) -> None:
        self._finished += 1

    # ------------------------------------------------------------------
    # Running workloads
    # ------------------------------------------------------------------

    def run(
        self,
        workload: "Workload",
        *,
        audit: bool = True,
        driver: "Callable[[AlewifeMachine], None] | None" = None,
    ) -> MachineStats:
        """Build the workload's programs, simulate to completion, audit.

        ``driver``, when given, replaces the default ``sim.run()`` with a
        caller-controlled advance loop over the same started machine —
        the seam :mod:`repro.recover` uses to pause at checkpoint
        boundaries.  A driver must return only once the event queue has
        drained (or ``max_cycles`` is exhausted); setup, the laggard
        check, the audit, and stats collection are identical either way.
        """
        if self.partitioned:
            raise SimulationError(
                "a partitioned shard machine is driven by repro.sim.shard, "
                "not run() — it cannot complete a workload alone"
            )
        programs = workload.build(self)
        threads = 0
        for proc_id, generators in programs.items():
            for gen in generators:
                self.node_map[proc_id].processor.add_thread(gen)
                threads += 1
        if not threads:
            raise SimulationError("workload produced no programs")
        for node in self.nodes:
            node.start()
        if self.config.faults_enabled:
            LivenessWatchdog(self, self.config.watchdog_interval or 25_000)
        if driver is None:
            self.sim.run()
        else:
            driver(self)
        laggards = [n.node_id for n in self.nodes if not n.processor.done]
        if laggards:
            raise LivenessError(
                f"simulation stopped at {self.sim.now} cycles with processors "
                f"{laggards[:8]} unfinished (deadlock or max_cycles too small)",
                diagnose(self),
            )
        entries = audit_machine(self) if audit else 0
        return self._collect(entries)

    def harvest(self) -> "Harvest":
        """Aggregate this instance's nodes + network into a mergeable blob."""
        h = Harvest()
        for node in self.nodes:
            h.counters.merge(node.counters)
            h.worker_sets.counts.update(
                node.directory_controller.worker_sets.counts
            )
            h.miss_total += node.cache_controller.miss_latency_total
            h.miss_count += node.cache_controller.miss_latency_count
            h.traps += node.processor.traps_taken
            h.trap_cycles += node.processor.trap_cycles
            h.busy += node.processor.busy_cycles
            h.finishes[node.node_id] = node.processor.finish_time or 0
        if self.network.fault_injector is not None:
            h.counters.merge(self.network.fault_injector.counters)
        h.network = self.network.stats
        return h

    def _collect(self, entries_audited: int) -> MachineStats:
        return self.harvest().finalize(
            self.config, entries_audited=entries_audited
        )


@dataclass
class Harvest:
    """Per-shard aggregation of run results, mergeable across shards.

    The serial path harvests one machine and finalizes; the sharded driver
    merges one harvest per worker first.  Either way the same arithmetic
    produces the :class:`MachineStats`, so the two paths cannot diverge.
    """

    counters: Counters = field(default_factory=Counters)
    worker_sets: Histogram = field(default_factory=Histogram)
    miss_total: int = 0
    miss_count: int = 0
    traps: int = 0
    trap_cycles: int = 0
    busy: int = 0
    finishes: dict[int, int] = field(default_factory=dict)
    network: NetworkStats = field(default_factory=NetworkStats)
    #: per-shard driver metrics (windows, handoffs, bytes, flushes,
    #: events), keyed by shard id.  Kept out of ``counters`` on purpose:
    #: counters participate in the shard-equivalence fingerprint and these
    #: are driver artifacts, not simulation results.
    shard_rounds: dict[int, dict] = field(default_factory=dict)

    def merge(self, other: "Harvest") -> None:
        self.counters.merge(other.counters)
        self.worker_sets.counts.update(other.worker_sets.counts)
        self.miss_total += other.miss_total
        self.miss_count += other.miss_count
        self.traps += other.traps
        self.trap_cycles += other.trap_cycles
        self.busy += other.busy
        self.finishes.update(other.finishes)
        self.network.merge(other.network)
        self.shard_rounds.update(other.shard_rounds)

    def finalize(
        self,
        config: AlewifeConfig,
        *,
        entries_audited: int = 0,
        shard_meta: dict | None = None,
    ) -> MachineStats:
        finishes = [self.finishes[n] for n in sorted(self.finishes)]
        cycles = max(finishes) if finishes else 0
        denom = cycles * len(finishes)
        return MachineStats(
            config=config,
            cycles=cycles,
            counters=self.counters,
            network=self.network,
            worker_sets=self.worker_sets,
            utilization=self.busy / denom if denom else 0.0,
            mean_miss_latency=(
                self.miss_total / self.miss_count if self.miss_count else 0.0
            ),
            traps_taken=self.traps,
            trap_cycles=self.trap_cycles,
            per_proc_finish=finishes,
            entries_audited=entries_audited,
            shard_meta=shard_meta,
        )


def run_experiment(
    config: AlewifeConfig,
    workload: "Workload",
    *,
    shard_workers: int | None = None,
) -> MachineStats:
    """Convenience one-shot: build a machine, run, return stats.

    ``config.shards > 1`` dispatches to the windowed shard driver in
    :mod:`repro.sim.shard` (``shard_workers=1`` keeps every shard in this
    process); the classic serial machine runs otherwise.
    """
    if config.shards > 1:
        from ..sim.shard import run_sharded

        return run_sharded(config, workload, workers=shard_workers)
    return AlewifeMachine(config).run(workload)
