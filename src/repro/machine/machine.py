"""The Alewife machine: nodes + network + experiment driver.

``AlewifeMachine(config).run(workload)`` builds the machine, loads the
workload's programs into the processors, runs the event simulation until
every program finishes, audits the coherence invariants, and returns a
:class:`MachineStats` with the absolute execution time in cycles — the
paper's bottom-line metric ("how fast a system can run a program", §5).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING

from ..faults import FaultInjector, LivenessWatchdog
from ..mem.address import AddressSpace, Allocator
from ..network.fabric import IdealNetwork, Network, NetworkStats, WormholeNetwork
from ..network.topology import make_topology
from ..sim.kernel import SimulationError, Simulator
from ..sim.rng import DeterministicRng
from ..stats.counters import Counters, Histogram
from ..verify.diagnose import LivenessError, diagnose
from ..verify.invariants import audit_machine
from .config import AlewifeConfig
from .node import Node

if TYPE_CHECKING:  # pragma: no cover
    from ..workloads.base import Workload


@dataclass
class MachineStats:
    """Results of one complete simulation."""

    config: AlewifeConfig
    cycles: int
    counters: Counters
    network: NetworkStats
    worker_sets: Histogram
    utilization: float
    mean_miss_latency: float
    traps_taken: int
    trap_cycles: int
    per_proc_finish: list[int] = field(default_factory=list)
    entries_audited: int = 0

    @property
    def label(self) -> str:
        return self.config.label()

    def mcycles(self) -> float:
        return self.cycles / 1e6

    def summary(self) -> str:
        c = self.counters
        hits = sum(c.get(f"cache.hits.{k}") for k in ("load", "store", "rmw"))
        misses = sum(c.get(f"cache.misses.{k}") for k in ("load", "store", "rmw"))
        ratio = hits / (hits + misses) if hits + misses else 0.0
        return (
            f"{self.label}: {self.cycles} cycles | util {self.utilization:.2f} "
            f"| hit-rate {ratio:.3f} | Th≈{self.mean_miss_latency:.1f} "
            f"| traps {self.traps_taken} | packets {self.network.packets}"
        )

    def to_dict(self) -> dict:
        """JSON-serializable record of the run (the sweep cache format)."""
        return {
            "config": asdict(self.config),
            "cycles": self.cycles,
            "counters": self.counters.as_dict(),
            "network": asdict(self.network),
            "worker_sets": self.worker_sets.as_sorted_items(),
            "utilization": self.utilization,
            "mean_miss_latency": self.mean_miss_latency,
            "traps_taken": self.traps_taken,
            "trap_cycles": self.trap_cycles,
            "per_proc_finish": list(self.per_proc_finish),
            "entries_audited": self.entries_audited,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MachineStats":
        """Rebuild stats from :meth:`to_dict` output (e.g. a cache hit)."""
        return cls(
            config=AlewifeConfig(**data["config"]),
            cycles=data["cycles"],
            counters=Counters.from_dict(data["counters"]),
            network=NetworkStats(**data["network"]),
            worker_sets=Histogram.from_items(data["worker_sets"]),
            utilization=data["utilization"],
            mean_miss_latency=data["mean_miss_latency"],
            traps_taken=data["traps_taken"],
            trap_cycles=data["trap_cycles"],
            per_proc_finish=list(data["per_proc_finish"]),
            entries_audited=data.get("entries_audited", 0),
        )


class AlewifeMachine:
    """A configured machine instance, ready to run one workload."""

    def __init__(self, config: AlewifeConfig) -> None:
        self.config = config
        self.sim = Simulator(max_cycles=config.max_cycles)
        self.rng = DeterministicRng(config.seed)
        self.space = AddressSpace(
            n_nodes=config.n_procs,
            block_bytes=config.block_bytes,
            segment_bytes=config.segment_bytes,
        )
        self.allocator = Allocator(self.space)
        self.network = self._build_network()
        if config.faults_enabled:
            # The injector installs itself as network.fault_injector and
            # takes over delivery scheduling; zero-rate configs skip it
            # entirely so the fast path (and the goldens) are untouched.
            FaultInjector(self.network, self.rng, config)
        self._finished = 0
        self.nodes = [
            Node(
                self.sim,
                node_id,
                config,
                self.space,
                self.network,
                self.rng,
                on_proc_done=self._proc_done,
            )
            for node_id in range(config.n_procs)
        ]

    def _build_network(self) -> Network:
        if self.config.topology == "ideal":
            return IdealNetwork(
                self.sim,
                self.config.n_procs,
                latency=self.config.ideal_latency,
                cycles_per_word=self.config.cycles_per_word,
            )
        topology = make_topology(self.config.topology, self.config.n_procs)
        return WormholeNetwork(
            self.sim,
            topology,
            hop_latency=self.config.hop_latency,
            cycles_per_word=self.config.cycles_per_word,
            injection_latency=self.config.injection_latency,
        )

    def _proc_done(self, _proc) -> None:
        self._finished += 1

    # ------------------------------------------------------------------
    # Running workloads
    # ------------------------------------------------------------------

    def run(self, workload: "Workload", *, audit: bool = True) -> MachineStats:
        """Build the workload's programs, simulate to completion, audit."""
        programs = workload.build(self)
        threads = 0
        for proc_id, generators in programs.items():
            for gen in generators:
                self.nodes[proc_id].processor.add_thread(gen)
                threads += 1
        if not threads:
            raise SimulationError("workload produced no programs")
        for node in self.nodes:
            node.start()
        if self.config.faults_enabled:
            LivenessWatchdog(self, self.config.watchdog_interval or 25_000)
        self.sim.run()
        laggards = [n.node_id for n in self.nodes if not n.processor.done]
        if laggards:
            raise LivenessError(
                f"simulation stopped at {self.sim.now} cycles with processors "
                f"{laggards[:8]} unfinished (deadlock or max_cycles too small)",
                diagnose(self),
            )
        entries = audit_machine(self) if audit else 0
        return self._collect(entries)

    def _collect(self, entries_audited: int) -> MachineStats:
        counters = Counters()
        worker_sets = Histogram()
        miss_total = 0
        miss_count = 0
        traps = 0
        trap_cycles = 0
        finishes = []
        for node in self.nodes:
            counters.merge(node.counters)
            worker_sets.counts.update(node.directory_controller.worker_sets.counts)
            miss_total += node.cache_controller.miss_latency_total
            miss_count += node.cache_controller.miss_latency_count
            traps += node.processor.traps_taken
            trap_cycles += node.processor.trap_cycles
            finishes.append(node.processor.finish_time or 0)
        if self.network.fault_injector is not None:
            counters.merge(self.network.fault_injector.counters)
        cycles = max(finishes) if finishes else self.sim.now
        busy = sum(n.processor.busy_cycles for n in self.nodes)
        denom = cycles * len(self.nodes)
        return MachineStats(
            config=self.config,
            cycles=cycles,
            counters=counters,
            network=self.network.stats,
            worker_sets=worker_sets,
            utilization=busy / denom if denom else 0.0,
            mean_miss_latency=miss_total / miss_count if miss_count else 0.0,
            traps_taken=traps,
            trap_cycles=trap_cycles,
            per_proc_finish=finishes,
            entries_audited=entries_audited,
        )


def run_experiment(config: AlewifeConfig, workload: "Workload") -> MachineStats:
    """Convenience one-shot: build a machine, run, return stats."""
    return AlewifeMachine(config).run(workload)
