"""One Alewife processing node (Figure 1).

A node bundles: a SPARCLE-like processor, a direct-mapped cache with its
protocol engine, a slice of globally shared memory with its directory and
memory controller, and the IPI network interface.  For software-extended
protocols the node also carries the LimitLESS trap-handler instance, whose
traps execute on this node's processor.
"""

from __future__ import annotations

from ..backend import get_backend
from ..cache.controller import CacheController
from ..coherence.limitless import LimitLessSoftware
from ..coherence.registry import SOFTWARE_PROTOCOLS, controller_class
from ..mem.address import AddressSpace
from ..mem.memory import MainMemory
from ..network.fabric import Network
from ..network.interface import NetworkInterface
from ..sim.kernel import Simulator
from ..sim.rng import DeterministicRng, ScopedRng
from ..stats.counters import Counters
from .config import AlewifeConfig


class Node:
    """A fully wired processing node."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        config: AlewifeConfig,
        space: AddressSpace,
        network: Network,
        rng: DeterministicRng,
        *,
        on_proc_done=None,
    ) -> None:
        self.node_id = node_id
        self.config = config
        self._backend = get_backend(config.backend)
        self.counters = Counters()
        if config.resolved_fabric == "staged":
            # Runtime draws (retry jitter, victim choice) must come from
            # per-node streams: a shared stream's draw order depends on how
            # nodes interleave globally, which a sharded run cannot replay.
            rng = ScopedRng(rng, f"n{node_id}")

        fault_tolerant = config.faults_enabled
        self.memory = MainMemory(space, node_id)
        # One machine-wide (per-shard, when sharded) free list, installed
        # on the network by the machine before nodes are built.
        self.pool = network.pool
        self.nic = NetworkInterface(
            sim,
            node_id,
            network,
            ipi_capacity=config.ipi_capacity,
            counters=self.counters,
            pool=self.pool,
        )
        # Payload CRCs are stamped/verified only under fault injection, so
        # fault-free runs never pay for (or are perturbed by) checksums.
        self.nic.crc_enabled = fault_tolerant
        self.directory_controller = self._build_directory_controller(
            sim, space, rng
        )
        self.cache_array = self._backend.make_cache_array(
            space, config.cache_lines
        )
        self.cache_controller = CacheController(
            sim,
            node_id,
            space,
            self.cache_array,
            self.nic,
            hit_latency=config.cache_hit_latency,
            retry_base=config.retry_base,
            retry_cap=config.retry_cap,
            rng=rng,
            counters=self.counters,
            fault_tolerant=fault_tolerant,
            request_timeout=(
                (config.request_timeout or 2000) if fault_tolerant else 0
            ),
            pool=self.pool,
        )
        self.processor = self._backend.processor_class(
            sim,
            node_id,
            space,
            self.cache_controller,
            switch_cycles=config.switch_cycles,
            max_contexts=config.max_contexts,
            memory_model=config.memory_model,
            store_buffer=config.store_buffer,
            counters=self.counters,
            on_done=on_proc_done,
        )
        self.software: LimitLessSoftware | None = None
        if config.protocol in SOFTWARE_PROTOCOLS:
            self.software = LimitLessSoftware(
                self.directory_controller,
                self.nic,
                self.processor,
                ts=config.ts,
                ts_per_invalidation=config.ts_per_invalidation,
            )
        elif config.protocol == "limitless_approx":
            # The approximation stalls the local processor directly.
            self.directory_controller.trap_engine = self.processor

    def _build_directory_controller(
        self, sim: Simulator, space: AddressSpace, rng: DeterministicRng
    ):
        cls = controller_class(self.config.protocol)
        kwargs: dict = dict(
            dir_occupancy=self.config.dir_occupancy,
            counters=self.counters,
            pool=self.pool,
        )
        directory = self._backend.make_directory(self.node_id)
        if directory is not None:
            kwargs["directory"] = directory
        if self.config.faults_enabled:
            kwargs["fault_tolerant"] = True
            kwargs["inv_timeout"] = self.config.inv_timeout or 3000
            kwargs["inv_retx_broadcast"] = self.config.inv_retx_broadcast
        if self.config.protocol in (
            "limited",
            "limited_broadcast",
            "limitless",
            "trap_always",
        ):
            kwargs["pointer_capacity"] = self.config.pointers
        if self.config.protocol == "limited":
            kwargs["victim_policy"] = self.config.victim_policy
            kwargs["rng"] = rng
        if self.config.protocol == "limitless_approx":
            kwargs["hw_pointers"] = self.config.pointers
            kwargs["ts"] = self.config.ts
        return cls(sim, self.node_id, space, self.memory, self.nic, **kwargs)

    def start(self) -> None:
        self.processor.start()
