"""Directory entries.

Each block homed at a node has one entry holding: the base protocol state,
the pointer set P, the Local Bit (§4.3 — the home node's own cached copy
never consumes a hardware pointer), the acknowledgment counter realized as
the explicit set of nodes whose invalidations are outstanding, a transaction
sequence number used to match ACKC packets to the invalidation round that
requested them, the LimitLESS meta state, and the queue of packets that
arrived while the entry was interlocked in TRANS_IN_PROGRESS.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..network.packet import Packet
from .states import DirState, MetaState


@dataclass
class DirectoryEntry:
    """Directory state for one memory block."""

    block: int
    home: int
    state: DirState = DirState.READ_ONLY
    sharers: set[int] = field(default_factory=set)
    local_bit: bool = False
    requester: int | None = None
    ack_waiting: set[int] = field(default_factory=set)
    txn: int = 0
    meta: MetaState = MetaState.NORMAL
    #: the meta state in force when the current divert happened (so the
    #: trap handler knows whether it is a first overflow, a Trap-On-Write
    #: termination, or Trap-Always software emulation)
    trap_mode: MetaState | None = None
    pending: deque[Packet] = field(default_factory=deque)
    # peak worker-set observed for this block (profiling, §6)
    peak_sharers: int = 0

    # ------------------------------------------------------------------
    # Pointer accounting
    # ------------------------------------------------------------------

    def pointers_used(self) -> int:
        """Hardware pointers consumed (the home's copy uses the Local Bit)."""
        return len(self.sharers - {self.home})

    def all_copy_holders(self) -> set[int]:
        """Every node holding a copy per this entry (pointers + local bit)."""
        holders = set(self.sharers)
        if self.local_bit:
            holders.add(self.home)
        return holders

    def add_sharer(self, node: int) -> None:
        if node == self.home:
            self.local_bit = True
        else:
            self.sharers.add(node)
        self.peak_sharers = max(self.peak_sharers, len(self.all_copy_holders()))

    def drop_sharer(self, node: int) -> None:
        if node == self.home:
            self.local_bit = False
        else:
            self.sharers.discard(node)

    def clear_sharers(self) -> None:
        self.sharers.clear()
        self.local_bit = False

    def holds(self, node: int) -> bool:
        if node == self.home:
            return self.local_bit
        return node in self.sharers

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def begin_transaction(self, requester: int, targets: set[int]) -> int:
        """Start an invalidation round; returns its transaction id."""
        self.txn += 1
        self.requester = requester
        self.ack_waiting = set(targets)
        return self.txn

    def ack_from(self, node: int, txn: int | None) -> bool:
        """Consume one outstanding invalidation if it matches.

        ``txn`` is the id echoed by an ACKC/UPDATE (None for spontaneous
        REPM).  Returns True when the ack was expected and consumed.
        """
        if node not in self.ack_waiting:
            return False
        if txn is not None and txn != self.txn:
            return False
        self.ack_waiting.discard(node)
        return True

    @property
    def acks_outstanding(self) -> int:
        return len(self.ack_waiting)

    def idle(self) -> bool:
        """True when no transaction or software interlock is active."""
        return (
            self.state in (DirState.READ_ONLY, DirState.READ_WRITE)
            and self.meta is not MetaState.TRANS_IN_PROGRESS
            and not self.pending
            and not self.ack_waiting
        )


class Directory:
    """All directory entries homed at one node (allocated on first touch)."""

    def __init__(self, home: int) -> None:
        self.home = home
        self._entries: dict[int, DirectoryEntry] = {}

    def entry(self, block: int) -> DirectoryEntry:
        found = self._entries.get(block)
        if found is None:
            found = DirectoryEntry(block=block, home=self.home)
            self._entries[block] = found
        return found

    def entries(self) -> list[DirectoryEntry]:
        return list(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)
