"""Protocol registry: build a memory controller by name.

Names follow the paper: ``fullmap``, ``limited`` (Dir_iNB),
``limitless`` (message-accurate), ``limitless_approx`` (the §5.1 ASIM
technique), ``chained``, and ``trap_always`` (software-only coherence).
"""

from __future__ import annotations

from .approx import ApproxLimitLessController
from .broadcast import BroadcastController
from .chained import ChainedController
from .controller import MemoryController
from .fullmap import FullMapController
from .limited import LimitedController
from .limitless import LimitLessController, TrapAlwaysController

PROTOCOLS = {
    "fullmap": FullMapController,
    "limited": LimitedController,
    "limited_broadcast": BroadcastController,
    "limitless": LimitLessController,
    "limitless_approx": ApproxLimitLessController,
    "chained": ChainedController,
    "trap_always": TrapAlwaysController,
}

#: protocols whose node needs a LimitLessSoftware trap handler attached
SOFTWARE_PROTOCOLS = frozenset({"limitless", "trap_always"})


def protocol_names() -> list[str]:
    return sorted(PROTOCOLS)


def controller_class(name: str) -> type[MemoryController]:
    try:
        return PROTOCOLS[name]
    except KeyError:
        raise ValueError(
            f"unknown protocol {name!r}; choose from {protocol_names()}"
        ) from None
