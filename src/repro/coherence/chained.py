"""Chained-directory coherence (James et al., SCI [9]) — comparison model.

Chained directories avoid the full-map's memory overhead and the limited
directory's thrashing by threading the sharers of each block on a linked
list distributed through the caches.  Their cost, which the paper calls out
in §1, is that "chained directories are forced to transmit invalidations
sequentially through a linked-list structure, and thus incur high write
latencies for very large machines."

Behavioural simplification (see DESIGN.md §2): we keep the list membership
at the home node but charge one full INV/ACK network round trip per list
element, serialized, so the write latency grows linearly in the worker-set
size exactly as in a cache-distributed chain.  Read latency and memory
overhead (one head pointer per entry plus one forward pointer per cache
line, counted in :mod:`repro.model.analytical`) also match.
"""

from __future__ import annotations

from ..network.packet import Packet
from .controller import MemoryController
from .entry import DirectoryEntry
from .states import DirState


class ChainedController(MemoryController):
    """Home-sequenced chained directory: serial invalidation."""

    protocol_name = "chained"

    def __init__(self, *args, **kwargs) -> None:
        kwargs["pointer_capacity"] = None  # chain membership is unbounded
        super().__init__(*args, **kwargs)
        #: invalidations not yet launched for an open write transaction
        self._inv_queue: dict[int, list[int]] = {}

    def _read_overflow(self, entry: DirectoryEntry, packet: Packet) -> None:
        raise AssertionError("chained directories cannot overflow")

    # ------------------------------------------------------------------
    # Serial invalidation
    # ------------------------------------------------------------------

    def _begin_write_transaction(
        self, entry: DirectoryEntry, requester: int, targets: set[int]
    ) -> None:
        """Walk the chain one element at a time instead of fanning out."""
        ordered = sorted(targets)
        txn = entry.begin_transaction(requester, {ordered[0]})
        entry.clear_sharers()
        entry.state = DirState.WRITE_TRANSACTION
        self._inv_queue[entry.block] = ordered[1:]
        self.worker_sets.add(len(targets) + 1)
        self._send_inv(ordered[0], entry.block, txn)
        self.counters.bump("dir.invalidations")

    def _maybe_complete_write(self, entry: DirectoryEntry) -> None:
        if entry.acks_outstanding:
            return
        queue = self._inv_queue.get(entry.block, [])
        if queue:
            nxt = queue.pop(0)
            entry.ack_waiting = {nxt}
            self._send_inv(nxt, entry.block, entry.txn)
            self.counters.bump("dir.invalidations")
            self.counters.bump("chained.serial_steps")
            return
        self._inv_queue.pop(entry.block, None)
        super()._maybe_complete_write(entry)
