"""Full-map directory (Censier & Feautrier style, distributed as in [8]).

One pointer per processor per entry: reads never overflow, so the overflow
hook is unreachable.  Memory overhead grows as O(N^2) with machine size —
the problem LimitLESS exists to solve — which the analytical model in
:mod:`repro.model.analytical` quantifies.
"""

from __future__ import annotations

from .controller import MemoryController
from .entry import DirectoryEntry
from ..network.packet import Packet


class FullMapController(MemoryController):
    """Directory with an unlimited pointer set."""

    protocol_name = "fullmap"

    def __init__(self, *args, **kwargs) -> None:
        kwargs["pointer_capacity"] = None
        super().__init__(*args, **kwargs)

    def _read_overflow(self, entry: DirectoryEntry, packet: Packet) -> None:
        raise AssertionError("full-map directories cannot overflow")
