"""Limited directory Dir_iNB (Agarwal et al. [8]).

``i`` hardware pointers, No Broadcast.  When all pointers are in use and a
new cache issues a read request, the protocol *evicts* one previously
recorded copy: it invalidates a victim pointer and reassigns it to the new
reader.  Widely shared blocks therefore thrash — constant eviction and
reassignment of directory pointers — which is exactly the hot-spot
degradation Figure 8 measures for the unoptimized Weather code.
"""

from __future__ import annotations

from ..network.packet import Packet
from .controller import MemoryController
from .entry import DirectoryEntry


class LimitedController(MemoryController):
    """Dir_iNB: ``pointer_capacity`` pointers, eviction on overflow.

    ``victim_policy`` selects which pointer to evict: ``"fifo"`` evicts the
    lowest-numbered node that is not the requester (deterministic and close
    to a hardware rotating pointer), ``"random"`` draws from the entry's
    current sharers.
    """

    protocol_name = "limited"

    def __init__(self, *args, victim_policy: str = "fifo", rng=None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if self.pointer_capacity is None or self.pointer_capacity < 1:
            raise ValueError("limited directory needs >= 1 hardware pointer")
        if victim_policy not in ("fifo", "random"):
            raise ValueError(f"unknown victim policy {victim_policy!r}")
        self.victim_policy = victim_policy
        self._rng = rng
        self._fifo_order: dict[int, list[int]] = {}

    # ------------------------------------------------------------------

    def _ro_rreq(self, entry: DirectoryEntry, packet: Packet) -> None:
        # Track insertion order for FIFO victim selection.
        order = self._fifo_order.setdefault(entry.block, [])
        if packet.src in order:
            order.remove(packet.src)
        super()._ro_rreq(entry, packet)
        if entry.holds(packet.src):
            if packet.src != entry.home and packet.src not in order:
                order.append(packet.src)

    def _read_overflow(self, entry: DirectoryEntry, packet: Packet) -> None:
        """Evict a pointer, then service the read with the freed slot."""
        victim = self._choose_victim(entry, packet.src)
        self.counters.bump("dir.pointer_evictions")
        # Eviction invalidate carries no transaction id: the resulting ACKC
        # is dropped as stray (the pointer is already reassigned).  Under
        # fault injection the INV (or its ACKC) can be lost, so remember
        # the victim until *some* ack from it arrives — it stays a target
        # of future invalidation rounds and a recorded holder meanwhile.
        if self.fault_tolerant:
            self._pending_evictions.setdefault(entry.block, set()).add(victim)
        self._send_inv(victim, entry.block, None)
        entry.drop_sharer(victim)
        order = self._fifo_order.get(entry.block, [])
        if victim in order:
            order.remove(victim)
        entry.add_sharer(packet.src)
        if packet.src != entry.home:
            order.append(packet.src)
        self._send_rdata(entry, packet.src)

    def _choose_victim(self, entry: DirectoryEntry, requester: int) -> int:
        candidates = sorted(entry.sharers - {requester})
        if not candidates:
            raise AssertionError("overflow with no evictable pointer")
        if self.victim_policy == "random" and self._rng is not None:
            return self._rng.choice("dir.victim", candidates)
        order = self._fifo_order.get(entry.block, [])
        for node in order:
            if node in candidates:
                return node
        return candidates[0]
