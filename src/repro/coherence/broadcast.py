"""Limited directory with broadcast: Dir_iB (Agarwal et al. [8]).

The paper's limited directory is Dir_iNB (*No Broadcast*): overflowing
reads evict a pointer.  The other member of the cited taxonomy, Dir_iB,
sets a *broadcast bit* instead: additional readers are granted copies
without being recorded, and the next write invalidates **every cache in
the machine**, collecting an acknowledgment from each.  Broadcast trades
read-side thrashing for write-side invalidation storms — the trade
LimitLESS avoids paying on either side.  Included as a comparison point
for the overflow-policy ablation.
"""

from __future__ import annotations

from ..network.packet import Packet
from .controller import MemoryController
from .entry import DirectoryEntry
from .states import DirState


class BroadcastController(MemoryController):
    """Dir_iB: ``pointer_capacity`` pointers plus a broadcast bit."""

    protocol_name = "limited_broadcast"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if self.pointer_capacity is None or self.pointer_capacity < 1:
            raise ValueError("Dir_iB needs >= 1 hardware pointer")
        #: blocks whose sharer set is only bounded by the machine size
        self._broadcast: set[int] = set()

    def _read_overflow(self, entry: DirectoryEntry, packet: Packet) -> None:
        """Grant the copy unrecorded and arm the broadcast bit."""
        if entry.block not in self._broadcast:
            self._broadcast.add(entry.block)
            self.counters.bump("dir.broadcast_armed")
        self.counters.bump("dir.unrecorded_grants")
        self._send_rdata(entry, packet.src)

    def _ro_wreq(self, entry: DirectoryEntry, packet: Packet) -> None:
        if entry.block in self._broadcast:
            self._broadcast_invalidate(entry, packet)
            return
        super()._ro_wreq(entry, packet)

    def _broadcast_invalidate(self, entry: DirectoryEntry, packet: Packet) -> None:
        """The broadcast write: invalidate every cache, await every ack."""
        targets = set(range(self.nic.network.n_nodes)) - {packet.src}
        self._broadcast.discard(entry.block)
        self.counters.bump("dir.broadcast_invalidates")
        self._begin_write_transaction(entry, packet.src, targets)

    def recorded_holders(self, entry: DirectoryEntry) -> set[int] | None:
        if entry.block in self._broadcast:
            return None  # any cache may legitimately hold a copy
        return super().recorded_holders(entry)
