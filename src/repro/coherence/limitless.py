"""The LimitLESS directory protocol (paper §3–§4).

LimitLESS = a **Limit**ed directory that is **L**ocally **E**xtended through
**S**oftware **S**upport.  The hardware keeps ``p`` pointers per entry.  On
a read that overflows them, the memory controller diverts the request packet
into the IPI input queue and interrupts the local processor; the trap
handler empties the hardware pointers into a full-map bit vector kept in a
hash table in local memory, answers the read itself, and leaves the entry in
Trap-On-Write mode so hardware keeps servicing reads until the pointers fill
again.  A write request to an overflowed entry traps too: the handler merges
pointers into the vector, launches the invalidations, sets the
acknowledgment counter, and returns the entry to hardware control in the
Write-Transaction state so the hardware finishes the protocol (§4.4).

The software side costs ``ts`` processor cycles per trap (the paper's
``T_s`` parameter, swept 25–150 in Figures 9/10) and runs *on the
application processor*, which both delays that node's thread and — at very
low ``ts`` — produces the mild back-off effect that let LimitLESS(25) beat
full-map in Figure 9.
"""

from __future__ import annotations

from typing import Callable

from ..network.interface import NetworkInterface
from ..network.packet import Op, Packet
from ..sim.kernel import Simulator, StallableResource
from .controller import MemoryController
from .entry import DirectoryEntry
from .states import DirState, MetaState, ProtocolError


class TrapEngine:
    """Where LimitLESS traps execute: the node's processor.

    ``request_trap(cycles, callback)`` must serialize traps, charge the
    processor ``cycles`` of trap time, and then invoke ``callback`` with the
    directory mutation.  The Processor model implements this; tests and
    processor-less rigs can use :class:`FreeRunningTrapEngine`.
    """

    def request_trap(self, cycles: int, callback: Callable[[], None]) -> None:
        raise NotImplementedError


class FreeRunningTrapEngine(TrapEngine):
    """A trap engine with no application workload to displace."""

    def __init__(self, sim: Simulator, name: str = "trapengine") -> None:
        self.sim = sim
        self._resource = StallableResource(sim, name)
        self.traps_taken = 0
        self.trap_cycles = 0

    def request_trap(self, cycles: int, callback: Callable[[], None]) -> None:
        self.traps_taken += 1
        self.trap_cycles += cycles
        done_at = self._resource.acquire(cycles)
        self.sim.post(done_at, callback)


class LimitLessController(MemoryController):
    """Hardware half of LimitLESS: p pointers + divert-on-overflow."""

    protocol_name = "limitless"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if self.pointer_capacity is None or self.pointer_capacity < 0:
            raise ValueError("LimitLESS needs a hardware pointer count >= 0")

    def _read_overflow(self, entry: DirectoryEntry, packet: Packet) -> None:
        """Pointer-array overflow: hand the read to software (§4.3)."""
        self.counters.bump("limitless.overflow_diverts")
        self.divert(entry, packet)


class TrapAlwaysController(LimitLessController):
    """Software-only coherence: every protocol packet traps (§3.1's
    ``m = 1`` migration-path limit and §6's profiling mode)."""

    protocol_name = "trap_always"

    def _meta_intercept(self, entry: DirectoryEntry, packet: Packet) -> bool:
        if entry.meta is MetaState.TRANS_IN_PROGRESS:
            entry.pending.append(packet)
            self._retained = True
            self.counters.bump("dir.interlocked")
            return True
        # Force every block into Trap-Always mode on first touch.
        if entry.meta is MetaState.NORMAL:
            entry.meta = MetaState.TRAP_ALWAYS
        self.divert(entry, packet)
        return True


class LimitLessSoftware:
    """The LimitLESS trap handler: full-map emulation in local memory.

    One instance per node.  It watches the node's IPI input queue, charges
    ``ts`` cycles of processor time per diverted packet, and applies the
    §4.4 handler at trap completion.
    """

    def __init__(
        self,
        controller: MemoryController,
        nic: NetworkInterface,
        engine: TrapEngine,
        *,
        ts: int = 50,
        ts_per_invalidation: int = 0,
    ) -> None:
        self.controller = controller
        self.nic = nic
        self.engine = engine
        self.ts = ts
        self.ts_per_invalidation = ts_per_invalidation
        #: the software directory: block -> full-map bit vector, "allocated
        #: in local memory and entered into a hash table" (§4.4)
        self.vectors: dict[int, set[int]] = {}
        self.counters = controller.counters
        # §6 extension hooks (installed by repro.extensions.*):
        #: called with every packet handled in software (profiling)
        self.profile_hook: Callable[[Packet], None] | None = None
        #: blocks whose transaction-time requests are buffered FIFO instead
        #: of bounced with BUSY (FIFO lock data type)
        self.fifo_blocks: set[int] = set()
        #: the software FIFO request queues for those blocks
        self.fifo_queues: dict[int, list[Packet]] = {}
        #: blocks using update (rather than invalidate) coherence
        self.update_blocks: set[int] = set()
        #: handler for interrupt-class (software-defined) packets — the
        #: IPI message-passing path of §4.2; installed by
        #: repro.extensions.messaging
        self.interrupt_handler: Callable[[Packet], None] | None = None
        nic.set_trap_handler(self._on_ipi_interrupt)

    # ------------------------------------------------------------------
    # Interrupt plumbing
    # ------------------------------------------------------------------

    def _on_ipi_interrupt(self) -> None:
        """A packet entered the IPI queue; schedule one trap per packet."""
        packet = self.nic.ipi_head()
        cost = self.ts
        if packet is not None and packet.opcode is Op.WREQ:
            vector = self.vectors.get(packet.address, set())
            cost += self.ts_per_invalidation * len(vector)
        # Injected trap-handler stall/overrun: the handler still runs
        # to completion, just late — modeling a software handler that
        # took an unrelated interrupt or a TLB miss mid-trap.
        cost += self.nic.trap_stall()
        self.counters.bump("limitless.traps")
        self.engine.request_trap(cost, self._run_handler)

    def _run_handler(self) -> None:
        packet = self.nic.ipi_pop()
        if packet.is_interrupt:
            # Interprocessor message, not coherence traffic: hand it to the
            # registered software handler (dropped with a counter if none).
            if self.interrupt_handler is not None:
                self.interrupt_handler(packet)
            else:
                self.counters.bump("limitless.interrupts_dropped")
            return
        controller = self.controller
        entry = controller.directory.entry(packet.address)
        if entry.meta is not MetaState.TRANS_IN_PROGRESS:
            raise ProtocolError("trap handler ran on a non-interlocked entry")
        mode = entry.trap_mode or MetaState.NORMAL
        entry.trap_mode = None
        controller._retained = False
        if mode is MetaState.TRAP_ALWAYS:
            self._software_fullmap(entry, packet)
        elif packet.opcode is Op.RREQ:
            self._handle_read_overflow(entry, packet)
        elif packet.opcode is Op.WREQ:
            self._handle_write_termination(entry, packet)
        else:
            # UPDATE/REPM trapped in Trap-On-Write: made irrelevant by an
            # earlier software transition; drop and restore the mode.
            self.counters.bump("limitless.sw_stray")
            entry.meta = mode
        controller.replay_pending(entry)
        if not controller._retained:
            controller.pool.release(packet)

    # ------------------------------------------------------------------
    # §4.4 trap handler proper
    # ------------------------------------------------------------------

    def _empty_pointers_into_vector(self, entry: DirectoryEntry) -> set[int]:
        vector = self.vectors.setdefault(entry.block, set())
        # update(), not |=: the stored vector must be mutated in place.
        # entry.sharers may be a non-set MutableSet (the soa backend's
        # PointerSet view), and `plain_set |= other` then falls back to
        # Set.__ror__, rebinding the local to a fresh set and silently
        # dropping the merge from self.vectors.
        vector.update(entry.sharers)
        entry.sharers.clear()
        return vector

    def _handle_read_overflow(self, entry: DirectoryEntry, packet: Packet) -> None:
        """First (or repeated) overflow trap: §4.4 paragraph 1."""
        if entry.state is not DirState.READ_ONLY:
            raise ProtocolError("read overflow trap outside READ_ONLY")
        vector = self._empty_pointers_into_vector(entry)
        vector.add(packet.src)
        entry.peak_sharers = max(
            entry.peak_sharers, len(vector) + (1 if entry.local_bit else 0)
        )
        # The handler launches the data reply itself through the IPI
        # transmit interface.
        self.controller._send_rdata(entry, packet.src)
        entry.meta = MetaState.TRAP_ON_WRITE
        self.counters.bump("limitless.read_overflow_traps")

    def _handle_write_termination(self, entry: DirectoryEntry, packet: Packet) -> None:
        """Write request to an overflowed entry: §4.4 paragraph 2.

        Empty pointers into the vector, record the requester, set the
        acknowledgment counter, return the entry to hardware control in
        WRITE_TRANSACTION, send the invalidations, free the vector.
        """
        if entry.state is not DirState.READ_ONLY:
            raise ProtocolError("write termination trap outside READ_ONLY")
        vector = self._empty_pointers_into_vector(entry)
        if entry.local_bit:
            vector.add(entry.home)
            entry.local_bit = False
        targets = vector - {packet.src}
        self.vectors.pop(entry.block, None)  # the vector may now be freed
        self.controller.worker_sets.add(len(vector | {packet.src}))
        entry.meta = MetaState.NORMAL  # memory line returns to hardware
        if not targets:
            entry.clear_sharers()
            entry.add_sharer(packet.src)
            entry.state = DirState.READ_WRITE
            self.controller._send_wdata(entry, packet.src)
        else:
            txn = entry.begin_transaction(packet.src, targets)
            entry.clear_sharers()
            entry.state = DirState.WRITE_TRANSACTION
            for node in sorted(targets):
                self.controller._send_inv(node, entry.block, txn)
            self.counters.bump("dir.invalidations", len(targets))
            self.controller._arm_inv_timer(entry)
        self.counters.bump("limitless.write_termination_traps")

    # ------------------------------------------------------------------
    # Trap-Always software emulation
    # ------------------------------------------------------------------

    def _software_fullmap(self, entry: DirectoryEntry, packet: Packet) -> None:
        """Run the ordinary FSM in software with unlimited pointers.

        The §6 extensions plug in here: profiling sees every packet; FIFO
        blocks buffer requests that hardware would bounce with BUSY; update
        blocks propagate new data to sharers instead of invalidating them.
        """
        entry.meta = MetaState.TRAP_ALWAYS
        if self.profile_hook is not None:
            self.profile_hook(packet)
        if packet.address in self.update_blocks and packet.opcode is Op.UPDATE:
            self._propagate_update(entry, packet)
            self.counters.bump("limitless.software_fsm")
            return
        if (
            packet.address in self.fifo_blocks
            and (packet.opcode is Op.RREQ or packet.opcode is Op.WREQ)
            and entry.state
            in (DirState.READ_TRANSACTION, DirState.WRITE_TRANSACTION)
        ):
            # FIFO lock data type: buffer instead of BUSY.  The request
            # rests in a software queue (not entry.pending, which would
            # spin it through a trap per replay) until the open transaction
            # completes, then is granted in arrival order.
            self.fifo_queues.setdefault(packet.address, []).append(packet)
            self.controller._retained = True
            self.counters.bump("limitless.fifo_buffered")
            return
        self.controller._software_pass = True
        try:
            self.controller.dispatch(entry, packet)
        finally:
            self.controller._software_pass = False
        self.counters.bump("limitless.software_fsm")
        self._drain_fifo_queue(entry)

    def _drain_fifo_queue(self, entry: DirectoryEntry) -> None:
        """Re-inject the oldest buffered request once the block is free."""
        queue = self.fifo_queues.get(entry.block)
        if not queue:
            return
        if entry.state in (DirState.READ_TRANSACTION, DirState.WRITE_TRANSACTION):
            return
        oldest = queue.pop(0)
        if not queue:
            self.fifo_queues.pop(entry.block, None)
        done_at = self.controller.occupancy.acquire(self.controller.dir_occupancy)
        self.controller.sim.post(done_at, self.controller.process, oldest)

    def _propagate_update(self, entry: DirectoryEntry, packet: Packet) -> None:
        """Update-mode coherence: write memory, push new data to sharers."""
        self.controller.memory.write_block(entry.block, packet.data)
        entry.add_sharer(packet.src)
        targets = entry.all_copy_holders() - {packet.src}
        for node in sorted(targets):
            self.nic.send(
                self.controller.pool.protocol(
                    self.controller.node_id,
                    node,
                    Op.UPDATE_DATA,
                    entry.block,
                    data=packet.data.copy(),
                )
            )
        self.counters.bump("limitless.updates_propagated", max(1, len(targets)))
