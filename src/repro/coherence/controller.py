"""Memory-side coherence controller: the Figure 2 / Table 2 state machine.

One controller per node services all protocol packets for blocks homed
there.  The controller is a serial resource — each packet occupies it for
``dir_occupancy`` cycles — which is what serializes hot-spot traffic at a
popular home node even when the network itself has spare bandwidth.

Transition numbers in comments refer to Table 2 of the paper.

The state machine is compiled, once per controller at construction, into a
dense per-(state, opcode) dispatch table: ``_table[DirState][Op]`` holds the
bound handler for that cell, so the steady state is two list indexes and a
call — no string compares, no if/elif chains, and fault-tolerance variants
are chosen at build time instead of branching per packet.  Subclasses
specialize cells by overriding the per-cell hook methods (``_ro_rreq`` and
friends); the table binds through ``self`` so overrides are live.

Race handling (beyond the paper's table, which assumes idealized delivery):

* Both networks preserve per-(src, dst) FIFO order, like a deterministic
  wormhole mesh, so a node's REPM always precedes its later RREQ.
* ACKC and UPDATE echo the transaction id of the INV that caused them; the
  directory only consumes acks whose id matches the current round *and*
  whose sender is still awaited.  Stray acks (from eviction invalidates or
  superseded rounds) are counted and dropped.
* A cache that receives INV for a block it silently replaced acknowledges
  anyway; a REPM that crosses an in-flight INV counts as that node's ack.

Fault tolerance (``fault_tolerant=True``) extends the table for lossy
delivery:

* every UPDATE/REPM receipt is acknowledged with DACK at the network entry
  point (exactly once per delivery), so the sending cache can retire its
  write-back buffer; duplicates of already-consumed write-backs become
  counted strays rather than protocol errors;
* an invalidation round that stops making progress is retransmitted to the
  still-awaited nodes with backoff; after ``inv_retx_broadcast`` fruitless
  rounds a write transaction falls back to *broadcast reconstruction* —
  INV to every node except the requester under the *same* transaction id
  (a new id would orphan a dirty owner's in-flight UPDATE), rebuilding the
  entry from universal acknowledgment;
* a dataless ACKC matching a read transaction's awaited owner means the
  owner lost its grant (the WDATA was dropped before it ever held data) or
  already wrote back — either way memory is current, so the read completes
  from memory instead of raising.
"""

from __future__ import annotations

from typing import Callable

from ..mem.address import AddressSpace
from ..mem.memory import MainMemory
from ..network.interface import NetworkInterface
from ..network.packet import DISABLED_POOL, N_OPS, Op, Packet, PacketPool
from ..sim.component import Component
from ..sim.kernel import Simulator, StallableResource
from ..stats.counters import Counters, Histogram, counter_slot
from .entry import Directory, DirectoryEntry
from .states import N_DIR_STATES, DirState, MetaState, ProtocolError

Handler = Callable[[DirectoryEntry, Packet], None]

#: Opcodes that trap in TRAP_ON_WRITE mode (Table 4's write class).
_WRITE_CLASS = (Op.WREQ, Op.UPDATE, Op.REPM)

_DIR_PACKETS_SLOT = counter_slot("dir.packets")


class MemoryController(Component):
    """Base directory controller.

    Subclasses specialize the pointer-overflow policy (`_read_overflow`)
    and, for LimitLESS, the meta-state divert path.  ``pointer_capacity``
    is the number of hardware pointers per entry (None = unlimited, i.e.
    the full-map directory).
    """

    protocol_name = "base"

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        space: AddressSpace,
        memory: MainMemory,
        nic: NetworkInterface,
        *,
        pointer_capacity: int | None = None,
        dir_occupancy: int = 3,
        counters: Counters | None = None,
        fault_tolerant: bool = False,
        inv_timeout: int = 0,
        inv_retx_broadcast: int = 3,
        pool: PacketPool | None = None,
        directory=None,
    ) -> None:
        super().__init__(sim, f"dir{node_id}")
        self.node_id = node_id
        self.space = space
        self.memory = memory
        self.nic = nic
        self.pointer_capacity = pointer_capacity
        self.dir_occupancy = dir_occupancy
        #: entry storage is swappable (repro.backend hands SoA-backed
        #: directories in through ``directory``); None keeps the
        #: reference per-entry objects
        self.directory = directory if directory is not None else Directory(node_id)
        self.occupancy = StallableResource(sim, f"dirres{node_id}")
        self.counters = counters if counters is not None else Counters()
        self._slots = self.counters.slot_view()
        #: survive dropped/duplicated packets (see module docstring)
        self.fault_tolerant = fault_tolerant
        #: recycle terminally consumed packets (a disabled pool no-ops)
        self.pool = pool if pool is not None else DISABLED_POOL
        #: set by any cell that keeps the current packet alive past its
        #: dispatch (interlock queue, IPI divert, deferred dispatch) so
        #: ``process`` knows not to release it to the pool
        self._retained = False
        #: cycles before an unacknowledged invalidation round is resent;
        #: 0 disables timers (the model checker drives retransmission as
        #: explicit transitions instead)
        self.inv_timeout = inv_timeout
        self.inv_retx_broadcast = inv_retx_broadcast
        #: block -> completed retransmission rounds for the open round
        self._inv_rounds: dict[int, int] = {}
        #: block -> nodes sent a fire-and-forget eviction INV that has not
        #: been acknowledged yet (limited-directory pointer replacement
        #: under fault_tolerant).  Until a node acks *some* INV for the
        #: block its stale read-only copy may still be live, so these
        #: nodes join every subsequent invalidation round and count as
        #: recorded holders for auditing.
        self._pending_evictions: dict[int, set[int]] = {}
        self.worker_sets = Histogram()
        #: set while the software trap handler executes the FSM on the
        #: processor: software emulates a *full-map* directory, so pointer
        #: capacity does not apply during a software pass
        self._software_pass = False
        self._table = self._build_dispatch_table()
        nic.set_memory_handler(self.receive)

    # ------------------------------------------------------------------
    # Dispatch-table construction
    # ------------------------------------------------------------------

    def _build_dispatch_table(self) -> list[list[Handler]]:
        """Compile Table 2 into a dense ``[DirState][Op] -> handler`` grid.

        Binding happens through ``self`` so a subclass override of any
        cell hook lands in the table; fault-tolerance cell variants are
        resolved here, once, instead of per packet.
        """
        ft = self.fault_tolerant
        table: list[list[Handler]] = [[None] * N_OPS for _ in range(N_DIR_STATES)]  # type: ignore[list-item]

        def fill(
            state: DirState,
            cells: dict[Op, Handler],
            *,
            packet_in_error: bool,
        ) -> None:
            unexpected = self._make_unexpected(state, packet_in_error)
            row = table[state]
            for op in Op:
                row[op] = cells.get(op, unexpected)

        ro: dict[Op, Handler] = {
            Op.RREQ: self._ro_rreq,
            Op.WREQ: self._ro_wreq,
            Op.ACKC: self._stray,  # late ack from an eviction INV
            Op.REPM: self._stray,  # superseded by a completed transaction
        }
        if ft:
            # A duplicate or retransmission of an invalidation answer whose
            # original was already consumed (the transaction completed, or
            # this state could not have been reached); its data is already
            # home or superseded.
            ro[Op.UPDATE] = self._stray
        fill(DirState.READ_ONLY, ro, packet_in_error=True)

        rw: dict[Op, Handler] = {
            Op.RREQ: self._rw_rreq_ft if ft else self._rw_rreq,
            Op.WREQ: self._rw_wreq,
            Op.REPM: self._rw_repm,
            Op.ACKC: self._rw_stray,
        }
        if ft:
            # The invalidation round this answered already completed (via
            # a duplicate of this answer, a write-back-buffer re-answer,
            # or the REPM wildcard) with identical data; drop the echo.
            rw[Op.UPDATE] = self._rw_stray
        fill(DirState.READ_WRITE, rw, packet_in_error=True)

        fill(
            DirState.WRITE_TRANSACTION,
            {
                Op.RREQ: self._txn_busy,  # Transition 7: BUSY -> j
                Op.WREQ: self._txn_busy,
                Op.ACKC: self._wt_ackc,
                Op.UPDATE: self._wt_update,
                Op.REPM: self._wt_repm,
            },
            packet_in_error=False,
        )
        fill(
            DirState.READ_TRANSACTION,
            {
                Op.RREQ: self._txn_busy,  # Transition 9: BUSY -> j
                Op.WREQ: self._txn_busy,
                Op.UPDATE: self._rt_update,
                Op.REPM: self._rt_repm,
                Op.ACKC: self._rt_ackc,
            },
            packet_in_error=False,
        )
        return table

    def _make_unexpected(self, state: DirState, packet_in_error: bool) -> Handler:
        label = state.name

        def unexpected(entry: DirectoryEntry, packet: Packet) -> None:
            tail = f" for {packet}" if packet_in_error else ""
            raise ProtocolError(
                f"{self.name}: {packet.opcode} in {label}{tail}"
            )

        return unexpected

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def receive(self, packet: Packet) -> None:
        """A protocol packet arrived from the network for a block homed here."""
        if self.space.home_of(packet.address) != self.node_id:
            raise ProtocolError(f"{self.name}: {packet} not homed here")
        if packet.address != self.space.block_of(packet.address):
            raise ProtocolError(f"{self.name}: {packet} not block aligned")
        if self.fault_tolerant and (
            packet.opcode is Op.UPDATE or packet.opcode is Op.REPM
        ):
            # Acknowledge dirty data at the network entry point — exactly
            # once per delivery, whether the packet is then consumed,
            # interlocked and replayed, or dropped as stray.  The sending
            # cache retires its write-back buffer on the DACK.
            self.counters.bump("dir.dacks_sent")
            self.nic.send(
                self.pool.protocol(self.node_id, packet.src, Op.DACK, packet.address)
            )
        done_at = self.occupancy.acquire(self.dir_occupancy)
        self.sim.post(done_at, self.process, packet)

    def process(self, packet: Packet) -> None:
        """Dispatch a packet once the controller pipeline reaches it."""
        entry = self.directory.entry(packet.address)
        self._slots[_DIR_PACKETS_SLOT] += 1
        if self.fault_tolerant and packet.opcode is Op.ACKC:
            # Any acknowledgment from a node proves its copy is gone (a
            # cache only ACKCs after invalidating), so it settles any
            # outstanding fire-and-forget eviction too.
            pending = self._pending_evictions.get(entry.block)
            if pending is not None:
                pending.discard(packet.src)
                if not pending:
                    del self._pending_evictions[entry.block]
        self._retained = False
        if not self._meta_intercept(entry, packet):
            self.dispatch(entry, packet)
        if not self._retained:
            self.pool.release(packet)

    def replay_pending(self, entry: DirectoryEntry) -> None:
        """Re-inject packets queued while the entry was interlocked.

        Packets are rescheduled in arrival order; if an early one
        re-interlocks the entry, the later ones simply re-queue behind it
        (``process`` checks the meta state again), preserving order.
        """
        while entry.pending:
            packet = entry.pending.popleft()
            self.counters.bump("dir.replayed")
            done_at = self.occupancy.acquire(self.dir_occupancy)
            self.sim.post(done_at, self.process, packet)

    # ------------------------------------------------------------------
    # Meta states (LimitLESS modes; NORMAL for pure-hardware protocols)
    # ------------------------------------------------------------------

    def _meta_intercept(self, entry: DirectoryEntry, packet: Packet) -> bool:
        """Returns True when the packet was queued or diverted to software."""
        meta = entry.meta
        if not meta:  # NORMAL == 0: the overwhelmingly common case
            return False
        if meta is MetaState.TRANS_IN_PROGRESS:
            entry.pending.append(packet)
            self._retained = True
            self.counters.bump("dir.interlocked")
            return True
        if meta is MetaState.TRAP_ALWAYS:
            self.divert(entry, packet)
            return True
        if meta is MetaState.TRAP_ON_WRITE and packet.opcode in _WRITE_CLASS:
            self.divert(entry, packet)
            return True
        return False

    def divert(self, entry: DirectoryEntry, packet: Packet) -> None:
        """Forward a packet to the IPI input queue for software handling."""
        entry.trap_mode = entry.meta
        entry.meta = MetaState.TRANS_IN_PROGRESS
        self._retained = True
        self.counters.bump("dir.diverted")
        self.nic.divert_to_ipi(packet)

    # ------------------------------------------------------------------
    # The Table 2 state machine
    # ------------------------------------------------------------------

    def dispatch(self, entry: DirectoryEntry, packet: Packet) -> None:
        self._table[entry.state][packet.opcode](entry, packet)

    # -- READ_ONLY ------------------------------------------------------

    def _ro_rreq(self, entry: DirectoryEntry, packet: Packet) -> None:
        # Transition 1: P = P + {i}; RDATA -> i
        src = packet.src
        if entry.holds(src) or self._pointer_available(entry, src):
            entry.add_sharer(src)
            self._send_rdata(entry, src)
        else:
            self.counters.bump("dir.read_overflow")
            self._read_overflow(entry, packet)

    def _ro_wreq(self, entry: DirectoryEntry, packet: Packet) -> None:
        src = packet.src
        others = entry.all_copy_holders() - {src}
        if self.fault_tolerant:
            # Nodes with an unacknowledged eviction INV may still hold
            # a stale read-only copy; the write round must cover them.
            others |= self._pending_evictions.get(entry.block, set()) - {src}
        if not others:
            # Transition 2: P = {i}; WDATA -> i
            entry.clear_sharers()
            entry.add_sharer(src)
            entry.state = DirState.READ_WRITE
            self._send_wdata(entry, src)
        else:
            # Transition 3: AckCtr = |P - {i}|; INV -> each k
            self._begin_write_transaction(entry, src, others)

    # -- READ_WRITE -----------------------------------------------------

    def _rw_owner(self, entry: DirectoryEntry) -> int:
        holders = entry.all_copy_holders()
        if len(holders) != 1:
            raise ProtocolError(f"{self.name}: READ_WRITE with holders={holders}")
        return next(iter(holders))

    def _rw_rreq(self, entry: DirectoryEntry, packet: Packet) -> None:
        # Transition 5: INV -> owner, enter READ_TRANSACTION
        owner = self._rw_owner(entry)
        txn = entry.begin_transaction(packet.src, {owner})
        entry.state = DirState.READ_TRANSACTION
        entry.clear_sharers()
        self._send_inv(owner, entry.block, txn)
        self._arm_inv_timer(entry)

    def _rw_rreq_ft(self, entry: DirectoryEntry, packet: Packet) -> None:
        if packet.src == self._rw_owner(entry):
            # Always a stale duplicate: a live read miss from the
            # recorded owner is impossible (a lost WDATA leaves a
            # write MSHR that retransmits WREQ, and an evicted copy
            # holds re-requests until the REPM is acknowledged), and
            # tearing the owner down through a read transaction for a
            # duplicate would thrash a healthy exclusive copy.
            self._stray(entry, packet)
            return
        self._rw_rreq(entry, packet)

    def _rw_wreq(self, entry: DirectoryEntry, packet: Packet) -> None:
        src = packet.src
        owner = self._rw_owner(entry)
        if src == owner:
            # Owner already exclusive; re-grant (lost-WDATA retry path).
            self._send_wdata(entry, src)
            self.counters.bump("dir.regrant")
        else:
            # Transition 4: INV -> owner, enter WRITE_TRANSACTION
            txn = entry.begin_transaction(src, {owner})
            entry.state = DirState.WRITE_TRANSACTION
            entry.clear_sharers()
            self._send_inv(owner, entry.block, txn)
            self._arm_inv_timer(entry)

    def _rw_repm(self, entry: DirectoryEntry, packet: Packet) -> None:
        if packet.src == self._rw_owner(entry):
            # Transition 6: owner replaced its modified copy
            self.memory.write_block(entry.block, packet.data)
            entry.clear_sharers()
            entry.state = DirState.READ_ONLY
        else:
            self._stray(entry, packet)

    def _rw_stray(self, entry: DirectoryEntry, packet: Packet) -> None:
        self._rw_owner(entry)  # preserve the holders invariant check
        self._stray(entry, packet)

    # -- WRITE_TRANSACTION ------------------------------------------------

    def _txn_busy(self, entry: DirectoryEntry, packet: Packet) -> None:
        # Transitions 7/9: a request during a transaction bounces BUSY.
        self._send_busy(packet.src, entry.block)

    def _wt_ackc(self, entry: DirectoryEntry, packet: Packet) -> None:
        # Transitions 7/8: count the ack; last one releases WDATA.
        # An ACKC without a txn answers an *eviction* INV, never this
        # round's transactional INV (those always echo the id), so it
        # must not wildcard-match — the evictee may since have
        # re-entered the pointer set and owe a real ack.
        txn = packet.meta.get("txn")
        if txn is not None and entry.ack_from(packet.src, txn):
            self._maybe_complete_write(entry)
        else:
            self._stray(entry, packet)

    def _wt_update(self, entry: DirectoryEntry, packet: Packet) -> None:
        # A dirty owner answered INV with its data (transition 8).
        if entry.ack_from(packet.src, packet.meta.get("txn")):
            self.memory.write_block(entry.block, packet.data)
            self._maybe_complete_write(entry)
        else:
            self._stray(entry, packet)

    def _wt_repm(self, entry: DirectoryEntry, packet: Packet) -> None:
        # Transition 7: a replacement crossing our INV counts as its ack.
        if entry.ack_from(packet.src, None):
            self.memory.write_block(entry.block, packet.data)
            self._maybe_complete_write(entry)
        else:
            self._stray(entry, packet)

    def _maybe_complete_write(self, entry: DirectoryEntry) -> None:
        if entry.acks_outstanding:
            return
        requester = entry.requester
        if requester is None:
            raise ProtocolError(f"{self.name}: write transaction lost requester")
        entry.clear_sharers()
        entry.add_sharer(requester)
        entry.state = DirState.READ_WRITE
        entry.requester = None
        self._inv_rounds.pop(entry.block, None)
        self._send_wdata(entry, requester)
        self.counters.bump("dir.write_transactions_done")

    # -- READ_TRANSACTION -------------------------------------------------

    def _rt_update(self, entry: DirectoryEntry, packet: Packet) -> None:
        # Transition 10: data comes back; RDATA -> requester
        if entry.ack_from(packet.src, packet.meta.get("txn")):
            self.memory.write_block(entry.block, packet.data)
            self._complete_read(entry)
        else:
            self._stray(entry, packet)

    def _rt_repm(self, entry: DirectoryEntry, packet: Packet) -> None:
        if entry.ack_from(packet.src, None):
            self.memory.write_block(entry.block, packet.data)
            self._complete_read(entry)
        else:
            self._stray(entry, packet)

    def _rt_ackc(self, entry: DirectoryEntry, packet: Packet) -> None:
        # The awaited owner must answer with data (UPDATE/REPM); a
        # matching ACKC here indicates a protocol bug.  A txn-less
        # ACKC is a late eviction ack and may arrive from any node —
        # even one that has since become the owner — so it is stray.
        txn = packet.meta.get("txn")
        if txn is not None and entry.ack_from(packet.src, txn):
            if self.fault_tolerant:
                # "Ownerless" acknowledgment: the awaited owner answered
                # without data, so it holds no modified copy — its WDATA
                # grant was lost before it ever filled, or its dirty
                # data already came home (write-backs are buffered and
                # retransmitted until DACKed, and the buffer re-answers
                # INV in our place).  Either way memory is current;
                # complete the read from it.
                self.counters.bump("dir.ownerless_reads")
                self._complete_read(entry)
                return
            raise ProtocolError(
                f"{self.name}: dataless ACKC from owner in READ_TRANSACTION"
            )
        self._stray(entry, packet)

    def _complete_read(self, entry: DirectoryEntry) -> None:
        requester = entry.requester
        if requester is None:
            raise ProtocolError(f"{self.name}: read transaction lost requester")
        entry.clear_sharers()
        entry.add_sharer(requester)
        entry.state = DirState.READ_ONLY
        entry.requester = None
        self._inv_rounds.pop(entry.block, None)
        self._send_rdata(entry, requester)
        self.counters.bump("dir.read_transactions_done")

    # ------------------------------------------------------------------
    # Policy hooks
    # ------------------------------------------------------------------

    def _pointer_available(self, entry: DirectoryEntry, src: int) -> bool:
        """Can ``src`` be recorded without overflowing hardware pointers?"""
        if src == entry.home:
            return True  # the Local Bit is always available (§4.3)
        if self.pointer_capacity is None or self._software_pass:
            return True
        return entry.pointers_used() < self.pointer_capacity

    def _read_overflow(self, entry: DirectoryEntry, packet: Packet) -> None:
        """Pointer-array overflow on a read request.  Subclasses decide."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Message helpers
    # ------------------------------------------------------------------

    def _begin_write_transaction(
        self, entry: DirectoryEntry, requester: int, targets: set[int]
    ) -> None:
        txn = entry.begin_transaction(requester, targets)
        entry.clear_sharers()
        entry.state = DirState.WRITE_TRANSACTION
        self.worker_sets.add(len(targets) + 1)
        for node in sorted(targets):
            self._send_inv(node, entry.block, txn)
        self.counters.bump("dir.invalidations", len(targets))
        self._arm_inv_timer(entry)

    # ------------------------------------------------------------------
    # Invalidation-round recovery (fault tolerance)
    # ------------------------------------------------------------------

    def _arm_inv_timer(self, entry: DirectoryEntry) -> None:
        """Watch the open invalidation round; resend if it stalls."""
        if not self.inv_timeout:
            return
        txn = entry.txn
        rounds = self._inv_rounds.get(entry.block, 0)
        delay = self.inv_timeout * (2 ** min(rounds, 4))
        self.schedule(delay, lambda: self._inv_timer_fired(entry, txn))

    def _inv_timer_fired(self, entry: DirectoryEntry, txn: int) -> None:
        if (
            entry.txn != txn
            or not entry.ack_waiting
            or entry.state
            not in (DirState.READ_TRANSACTION, DirState.WRITE_TRANSACTION)
        ):
            return  # the round completed or was superseded
        if entry.meta is MetaState.TRANS_IN_PROGRESS:
            # Interlocked in software; check again later.
            self._arm_inv_timer(entry)
            return
        rounds = self._inv_rounds.get(entry.block, 0) + 1
        self._inv_rounds[entry.block] = rounds
        if (
            entry.state is DirState.WRITE_TRANSACTION
            and rounds >= self.inv_retx_broadcast
        ):
            self.broadcast_reconstruct(entry)
        else:
            self.retransmit_invalidations(entry)
        self._arm_inv_timer(entry)

    def retransmit_invalidations(self, entry: DirectoryEntry) -> int:
        """Resend INV to every still-awaited node (same transaction id)."""
        targets = sorted(entry.ack_waiting)
        for node in targets:
            self._send_inv(node, entry.block, entry.txn)
        self.counters.bump("dir.inv_retx", len(targets))
        return len(targets)

    def broadcast_reconstruct(self, entry: DirectoryEntry) -> None:
        """Rebuild an unrecoverable write transaction by broadcast.

        When targeted retransmission keeps failing, the entry's record of
        who owes an acknowledgment can no longer be trusted.  Invalidate
        *every* node except the requester under the **same** transaction
        id — a fresh id would turn a dirty owner's in-flight UPDATE into a
        stray and lose its data — and require universal acknowledgment.
        Any node holding dirty data answers UPDATE (possibly from its
        write-back buffer); everyone else answers ACKC; the last ack
        releases the requester's WDATA exactly as in transition 8.
        """
        targets = set(range(self.space.n_nodes)) - {entry.requester}
        entry.ack_waiting |= targets
        for node in sorted(targets):
            self._send_inv(node, entry.block, entry.txn)
        self.counters.bump("dir.broadcast_reconstructs")
        self.counters.bump("dir.invalidations", len(targets))

    def _send_rdata(self, entry: DirectoryEntry, dst: int) -> None:
        self.nic.send(
            self.pool.protocol(
                self.node_id,
                dst,
                Op.RDATA,
                entry.block,
                data=self.memory.read_block(entry.block),
            )
        )

    def _send_wdata(self, entry: DirectoryEntry, dst: int) -> None:
        self.nic.send(
            self.pool.protocol(
                self.node_id,
                dst,
                Op.WDATA,
                entry.block,
                data=self.memory.read_block(entry.block),
            )
        )

    def _send_inv(self, dst: int, block: int, txn: int | None) -> None:
        self.nic.send(self.pool.protocol(self.node_id, dst, Op.INV, block, txn=txn))

    def _send_busy(self, dst: int, block: int) -> None:
        self.counters.bump("dir.busy_sent")
        self.nic.send(self.pool.protocol(self.node_id, dst, Op.BUSY, block))

    def _stray(self, entry: DirectoryEntry, packet: Packet) -> None:
        """Count and drop a packet made irrelevant by a race."""
        self.counters.bump("dir.stray_dropped")
        self.counters.bump(f"dir.stray.{packet.opcode}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def idle(self) -> bool:
        """True when no entry has an open transaction or queued packet."""
        return all(e.idle() for e in self.directory.entries())

    def recorded_holders(self, entry: DirectoryEntry) -> set[int] | None:
        """Nodes this directory believes may hold a copy (for auditing).

        ``None`` means "any node" (a broadcast-mode entry deliberately
        stops recording individual sharers).
        """
        holders = entry.all_copy_holders()
        pending = self._pending_evictions.get(entry.block)
        if pending:
            holders = holders | pending
        return holders

    def busiest_blocks(self, top: int = 5) -> list[tuple[int, int]]:
        ranked = sorted(
            ((e.peak_sharers, e.block) for e in self.directory.entries()),
            reverse=True,
        )
        return [(block, peak) for peak, block in ranked[:top]]
