"""Protocol states (paper Tables 1 and 4).

Directory states follow Figure 2's transition diagram; an uncached block is
the READ_ONLY state with an empty pointer set, as in the paper's
specification.  Meta states are the LimitLESS directory *modes* layered on
top of the base states (Table 4): they decide whether the hardware
controller or the software trap handler services each incoming packet.

All three are interned as dense ``IntEnum``\\ s: directory states index the
controllers' per-(state, opcode) dispatch tables, and the zero values are
chosen so the common cases (``MetaState.NORMAL``, ``CacheState.INVALID``)
are falsy — the hot paths test them with a truthiness check instead of an
identity compare.
"""

from __future__ import annotations

from enum import IntEnum


class _NamedIntEnum(IntEnum):
    """IntEnum that still prints its member name (reports, error text)."""

    def __str__(self) -> str:
        return self._name_

    def __format__(self, spec: str) -> str:
        return format(self._name_, spec)


class DirState(_NamedIntEnum):
    """Memory-side directory state for one block (Table 1)."""

    READ_ONLY = 0         # some number of caches hold read-only copies
    READ_WRITE = 1        # exactly one cache holds a read-write copy
    READ_TRANSACTION = 2  # holding a read request, update in progress
    WRITE_TRANSACTION = 3 # holding a write request, invalidation in progress


N_DIR_STATES = len(DirState)


class CacheState(_NamedIntEnum):
    """Cache-side state for one block (Table 1)."""

    INVALID = 0
    READ_ONLY = 1
    READ_WRITE = 2


class MetaState(_NamedIntEnum):
    """LimitLESS directory modes (Table 4)."""

    NORMAL = 0             # handled entirely by hardware
    TRANS_IN_PROGRESS = 1  # interlock: software processing in progress
    TRAP_ON_WRITE = 2      # trap for WREQ, UPDATE and REPM
    TRAP_ALWAYS = 3        # trap for all incoming protocol packets


class ProtocolError(RuntimeError):
    """A packet arrived that the specification does not permit."""
