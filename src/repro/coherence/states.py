"""Protocol states (paper Tables 1 and 4).

Directory states follow Figure 2's transition diagram; an uncached block is
the READ_ONLY state with an empty pointer set, as in the paper's
specification.  Meta states are the LimitLESS directory *modes* layered on
top of the base states (Table 4): they decide whether the hardware
controller or the software trap handler services each incoming packet.
"""

from __future__ import annotations

from enum import Enum, auto


class DirState(Enum):
    """Memory-side directory state for one block (Table 1)."""

    READ_ONLY = auto()        # some number of caches hold read-only copies
    READ_WRITE = auto()       # exactly one cache holds a read-write copy
    READ_TRANSACTION = auto() # holding a read request, update in progress
    WRITE_TRANSACTION = auto()# holding a write request, invalidation in progress


class CacheState(Enum):
    """Cache-side state for one block (Table 1)."""

    INVALID = auto()
    READ_ONLY = auto()
    READ_WRITE = auto()


class MetaState(Enum):
    """LimitLESS directory modes (Table 4)."""

    NORMAL = auto()            # handled entirely by hardware
    TRANS_IN_PROGRESS = auto() # interlock: software processing in progress
    TRAP_ON_WRITE = auto()     # trap for WREQ, UPDATE and REPM
    TRAP_ALWAYS = auto()       # trap for all incoming protocol packets


class ProtocolError(RuntimeError):
    """A packet arrived that the specification does not permit."""
