"""The paper's ASIM evaluation approximation of LimitLESS (§5.1).

For the published measurements the authors did *not* run the full
software-extended protocol: ASIM "simulates an ordinary full-map protocol,
but when the simulator encounters a pointer array overflow, it stalls both
the memory controller and the processor that would handle the LimitLESS
interrupt for Ts cycles."

We reproduce that technique exactly so it can be compared, as an ablation,
against our message-accurate LimitLESS implementation
(:mod:`repro.coherence.limitless`): the two agreeing is evidence that the
paper's approximation was sound.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..network.packet import Op, Packet
from .controller import MemoryController
from .entry import DirectoryEntry
from .fullmap import FullMapController
from .limitless import TrapEngine
from .states import DirState


@dataclass
class _EmulatedEntry:
    """Hardware pointer-array occupancy emulated alongside full-map state."""

    hw_count: int = 0
    trap_on_write: bool = False


class ApproxLimitLessController(FullMapController):
    """Full-map directory + Ts-cycle stalls on emulated pointer overflow."""

    protocol_name = "limitless_approx"

    def __init__(
        self,
        *args,
        hw_pointers: int = 4,
        ts: int = 50,
        trap_engine: TrapEngine | None = None,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if hw_pointers < 0:
            raise ValueError("hw_pointers must be >= 0")
        self.hw_pointers = hw_pointers
        self.ts = ts
        self.trap_engine = trap_engine
        self._emulated: dict[int, _EmulatedEntry] = {}

    def _emu(self, block: int) -> _EmulatedEntry:
        found = self._emulated.get(block)
        if found is None:
            found = _EmulatedEntry()
            self._emulated[block] = found
        return found

    # ------------------------------------------------------------------

    def dispatch(self, entry: DirectoryEntry, packet: Packet) -> None:
        stall = self._account(entry, packet)
        if stall:
            # Stall the memory controller and the local processor for Ts,
            # then service the packet with ordinary full-map logic.  The
            # packet stays live across the stall, so keep it out of the
            # pool until the deferred dispatch consumes it.
            self.counters.bump("limitless.traps")
            self.occupancy.stall(self.ts)
            if self.trap_engine is not None:
                self.trap_engine.request_trap(self.ts, lambda: None)
            self._retained = True
            self.sim.call_after(
                self.ts, lambda: self._resume_dispatch(entry, packet)
            )
            return
        super().dispatch(entry, packet)

    def _resume_dispatch(self, entry: DirectoryEntry, packet: Packet) -> None:
        """Service a stalled packet with ordinary full-map logic."""
        self._retained = False
        MemoryController.dispatch(self, entry, packet)
        if not self._retained:
            self.pool.release(packet)

    def _account(self, entry: DirectoryEntry, packet: Packet) -> bool:
        """Update the emulated pointer array; True => take an overflow stall."""
        if entry.meta:  # any mode but NORMAL
            return False
        emu = self._emu(entry.block)
        src = packet.src
        op = packet.opcode
        if entry.state in (DirState.READ_TRANSACTION, DirState.WRITE_TRANSACTION):
            return False  # request will get BUSY; no pointer activity
        if op is Op.RREQ and entry.state is DirState.READ_ONLY:
            if src == entry.home or entry.holds(src):
                return False
            if emu.hw_count >= self.hw_pointers:
                # Overflow: trap empties all pointers into the software
                # vector; the requester is recorded in software (§4.4).
                emu.hw_count = 0
                emu.trap_on_write = True
                self.counters.bump("limitless.read_overflow_traps")
                return True
            emu.hw_count += 1
            return False
        if op is Op.RREQ and entry.state is DirState.READ_WRITE:
            emu.hw_count = 0 if src == entry.home else 1
            return False
        if op is Op.WREQ:
            trapped = emu.trap_on_write
            emu.trap_on_write = False
            emu.hw_count = 0 if src == entry.home else 1
            if trapped:
                self.counters.bump("limitless.write_termination_traps")
            return trapped
        if op is Op.REPM and entry.state is DirState.READ_WRITE:
            emu.hw_count = 0
            return False
        return False
