"""Directory-based cache coherence: the protocols of the paper."""

from .approx import ApproxLimitLessController
from .chained import ChainedController
from .controller import MemoryController
from .entry import Directory, DirectoryEntry
from .fullmap import FullMapController
from .limited import LimitedController
from .limitless import (
    FreeRunningTrapEngine,
    LimitLessController,
    LimitLessSoftware,
    TrapAlwaysController,
    TrapEngine,
)
from .registry import PROTOCOLS, SOFTWARE_PROTOCOLS, controller_class, protocol_names
from .states import CacheState, DirState, MetaState, ProtocolError

__all__ = [
    "ApproxLimitLessController",
    "CacheState",
    "ChainedController",
    "Directory",
    "DirectoryEntry",
    "DirState",
    "FreeRunningTrapEngine",
    "FullMapController",
    "LimitedController",
    "LimitLessController",
    "LimitLessSoftware",
    "MemoryController",
    "MetaState",
    "PROTOCOLS",
    "ProtocolError",
    "SOFTWARE_PROTOCOLS",
    "TrapAlwaysController",
    "TrapEngine",
    "controller_class",
    "protocol_names",
]
