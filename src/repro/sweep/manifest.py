"""Write-ahead campaign manifest: crash-safe sweep bookkeeping.

The result cache makes *completed* points crash-safe (their stats
survive on disk), but a crashed sweep loses everything else: which
points were mid-flight when the process died, and which point keeps
killing the campaign.  The manifest closes that gap with an append-only
NDJSON log in the cache directory — one ``start`` record *before* a
point executes (the write-ahead), one ``done``/``failed`` record after.
A point whose ``start`` has no matching terminal record was in flight
when the process died; it counts as one crashed attempt on resume, and
a point that accumulates more failed/crashed attempts than the retry
budget is *quarantined* — reported as a failure without executing —
instead of crashing the campaign again.

Keys are the content-addressed job keys (config + workload + source
fingerprint), so a source edit or config change naturally starts a
fresh ledger for the affected points; the log itself is harmless to
share across campaigns.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

#: Manifest record schema version.
MANIFEST_VERSION = 1


@dataclass
class PointState:
    """Everything the log knows about one job key."""

    attempts: int = 0  # terminal failures recorded
    inflight: int = 0  # starts with no terminal record (process died)
    done: bool = False
    label: str = ""
    last_error: Optional[str] = None

    @property
    def crashed_attempts(self) -> int:
        """Failed attempts plus attempts that died without a record."""
        return self.attempts + self.inflight


class CampaignManifest:
    """Append-only write-ahead log of sweep point execution.

    Appends flush eagerly so every record survives the process; a torn
    final line (the crash landed mid-write) is ignored on load.
    """

    def __init__(self, path: Path | str):
        self.path = Path(path)
        self._fh = None

    def _append(self, record: dict) -> None:
        record["v"] = MANIFEST_VERSION
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def start(self, key: str, label: str, attempt: int) -> None:
        """Write-ahead: the point is about to execute."""
        self._append(
            {"event": "start", "key": key, "label": label, "attempt": attempt}
        )

    def done(self, key: str) -> None:
        self._append({"event": "done", "key": key})

    def failed(self, key: str, attempt: int, error: str) -> None:
        self._append(
            {
                "event": "failed",
                "key": key,
                "attempt": attempt,
                "error": str(error)[:500],
            }
        )

    def quarantined(self, key: str, label: str, reason: str) -> None:
        """Visibility record: the point was skipped as poisoned."""
        self._append(
            {"event": "quarantined", "key": key, "label": label, "reason": reason}
        )

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CampaignManifest":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def load(self) -> dict[str, PointState]:
        """Replay the log into per-key state (empty if no log yet)."""
        states: dict[str, PointState] = {}
        inflight: dict[str, int] = {}
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except OSError:
            return states
        for line in lines:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                break  # torn tail from a crash mid-append; ignore the rest
            key = record.get("key")
            if not key:
                continue
            state = states.setdefault(key, PointState())
            event = record.get("event")
            if event == "start":
                state.label = record.get("label", state.label)
                inflight[key] = inflight.get(key, 0) + 1
            elif event == "done":
                state.done = True
                if inflight.get(key):
                    inflight[key] -= 1
            elif event == "failed":
                state.attempts += 1
                state.last_error = record.get("error")
                if inflight.get(key):
                    inflight[key] -= 1
            # "quarantined" records are informational only
        for key, open_starts in inflight.items():
            states[key].inflight = max(0, open_starts)
        return states
