"""Content-addressed on-disk cache of experiment results.

Every simulation is deterministic — same config, same workload, same
source tree means bit-identical :class:`MachineStats` — so results can be
cached forever under a key that hashes all three (see
:func:`repro.sweep.spec.job_key`).  Entries are one JSON file per key in
``$REPRO_SWEEP_CACHE`` (default ``~/.cache/repro-sweep``); editing
anything under ``src/repro`` changes the source fingerprint and therefore
misses cleanly, no manual invalidation needed.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
from pathlib import Path

from ..machine import MachineStats

#: Cache format version; bump when the entry schema changes.
CACHE_VERSION = 1


def default_cache_dir() -> Path:
    """``$REPRO_SWEEP_CACHE`` or ``~/.cache/repro-sweep``."""
    env = os.environ.get("REPRO_SWEEP_CACHE")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro-sweep"


def compute_source_fingerprint(root: Path | None = None) -> str:
    """SHA-256 over every ``.py`` file of the installed ``repro`` package.

    The simulator's source *is* part of every result's identity, since
    timing-model changes alter cycle counts.  This is the uncached
    computation; :class:`SourceFingerprint` memoizes it.
    """
    if root is None:
        import repro

        root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(path.read_bytes())
    return digest.hexdigest()


class SourceFingerprint:
    """Memoized source-tree fingerprint with an explicit invalidation hook.

    Long-running processes (the ``repro serve`` server) hold one of these
    per :class:`ResultCache` instead of a module global: the hash is
    computed on first use, reused for every subsequent key, and
    recomputed after :meth:`invalidate` — e.g. when the source tree
    changed under a live server and stale keys must not be served.
    """

    def __init__(self, root: Path | None = None):
        self._root = root
        self._value: str | None = None

    def value(self) -> str:
        if self._value is None:
            self._value = compute_source_fingerprint(self._root)
        return self._value

    def invalidate(self) -> None:
        """Drop the memoized hash; the next :meth:`value` recomputes."""
        self._value = None


def source_fingerprint() -> str:
    """Backward-compatible wrapper: compute the fingerprint afresh.

    Callers that key many lookups should hold a :class:`SourceFingerprint`
    (or use ``ResultCache.fingerprint``) so the hash is memoized in an
    object they control rather than process-global state.
    """
    return compute_source_fingerprint()


class ResultCache:
    """Keyed MachineStats store with hit/miss accounting.

    ``enabled=False`` turns every operation into a no-op, so callers can
    thread one object through unconditionally (the ``--no-cache`` path).

    Every cache owns a :class:`SourceFingerprint` (injectable for tests
    and embedders); the runner keys jobs through it so there is no
    process-global sweep state — a long-lived service can invalidate or
    swap the fingerprint on its own cache without touching any other.
    """

    def __init__(
        self,
        directory: Path | str | None = None,
        *,
        enabled: bool = True,
        fingerprint: SourceFingerprint | None = None,
    ):
        self.directory = Path(directory) if directory else default_cache_dir()
        self.enabled = enabled
        self.fingerprint = fingerprint or SourceFingerprint()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: failed store attempts (OSError: read-only/full cache dir).  The
        #: cache degrades to disabled after the first one, but the count
        #: stays visible — sweep summaries and serve /metrics surface it
        #: so the degradation is never silent.
        self.write_errors = 0

    def invalidate(self) -> None:
        """Invalidate derived state (the memoized source fingerprint).

        On-disk entries stay: they are keyed by fingerprint, so a changed
        source tree simply misses them.
        """
        self.fingerprint.invalidate()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def lookup(self, key: str) -> MachineStats | None:
        if not self.enabled:
            return None
        path = self._path(key)
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if entry.get("version") != CACHE_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        return MachineStats.from_dict(entry["stats"])

    def store(self, key: str, stats: MachineStats, *, wall_seconds: float, label: str = "") -> None:
        if not self.enabled:
            return
        entry = {
            "version": CACHE_VERSION,
            "label": label,
            "created": time.time(),
            "wall_seconds": wall_seconds,
            "stats": stats.to_dict(),
        }
        path = self._path(key)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            # Write-then-rename so a crashed run never leaves a torn entry.
            tmp = path.with_suffix(".tmp")
            tmp.write_text(json.dumps(entry))
            tmp.replace(path)
        except OSError as exc:
            # A read-only or full cache directory must not kill a sweep
            # that already computed its results; degrade to cacheless —
            # but count it, so the summary/metrics make the loss visible.
            self.write_errors += 1
            self.enabled = False
            warnings.warn(
                f"result cache disabled: cannot write {path} ({exc})",
                RuntimeWarning,
                stacklevel=2,
            )
            return
        self.stores += 1

    def clear(self) -> int:
        """Delete every entry (and any orphaned temp file from a crashed
        write); returns the number of entries removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
            for path in self.directory.glob("*.tmp"):
                path.unlink(missing_ok=True)
        return removed

    def summary(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        if self.write_errors:
            state = f"DISABLED after {self.write_errors} write error(s)"
        return (
            f"cache {state} at {self.directory} "
            f"(hits {self.hits}, misses {self.misses}, stores {self.stores}"
            f", write errors {self.write_errors})"
        )
