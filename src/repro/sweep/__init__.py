"""Parallel sweep runner with content-addressed result caching.

The paper's evaluation is a grid of scheme x workload x parameter
experiments; this package runs such grids over a process pool, caches
every deterministic result on disk keyed by (config, workload spec,
source fingerprint), and reproduces the figure reports.  See
``repro sweep --help`` for the CLI.
"""

from .cache import (
    ResultCache,
    SourceFingerprint,
    compute_source_fingerprint,
    default_cache_dir,
    source_fingerprint,
)
from .grids import figure_grids, run_figure_suite
from .runner import JobResult, ProgressPrinter, ProgressTracker, run_jobs
from .spec import WORKLOAD_REGISTRY, Job, WorkloadSpec, job_key

__all__ = [
    "Job",
    "JobResult",
    "ProgressPrinter",
    "ProgressTracker",
    "ResultCache",
    "SourceFingerprint",
    "WORKLOAD_REGISTRY",
    "WorkloadSpec",
    "compute_source_fingerprint",
    "default_cache_dir",
    "figure_grids",
    "job_key",
    "run_figure_suite",
    "run_jobs",
    "source_fingerprint",
]
