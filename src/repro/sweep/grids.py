"""The paper's figure grids as declarative job lists, plus the suite
driver shared by ``repro sweep`` and ``benchmarks/run_figures.py``.

Each grid mirrors one figure of §5 / §6 exactly as the serial harness ran
it; the driver flattens them, runs the whole set through the parallel
cached runner (shared baselines like Full-Map/Weather simulate once), and
reassembles per-figure reports in paper order.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable

from ..machine import AlewifeConfig
from ..stats.report import bar_chart, format_table
from .cache import ResultCache
from .manifest import CampaignManifest
from .runner import JobResult, ProgressPrinter, run_jobs
from .spec import Job, WorkloadSpec


def figure_grids(
    procs: int = 64,
    iters: int = 8,
    *,
    shards: int = 1,
    fabric: str = "auto",
) -> dict[str, list[Job]]:
    """Ordered figure-title -> jobs mapping for the full evaluation.

    ``shards``/``fabric`` flow into every grid point's config, so whole
    figure suites can run through the sharded driver (and its results
    are cached under distinct keys — the staged fabric is a different
    machine model than the atomic one).
    """

    def weather(**kw) -> WorkloadSpec:
        return WorkloadSpec("weather", {"iterations": iters, **kw})

    multigrid = WorkloadSpec(
        "multigrid", {"levels": (3, 3, 2), "points_per_proc": 48}
    )

    def cfg(protocol: str, **extras) -> AlewifeConfig:
        return AlewifeConfig(
            n_procs=procs, protocol=protocol, shards=shards, fabric=fabric,
            **extras,
        )

    grids: dict[str, list[Job]] = {}
    grids["Figure 7: Static Multigrid"] = [
        Job("Dir4NB", cfg("limited", pointers=4), multigrid),
        Job("LimitLESS4 Ts=100", cfg("limitless", pointers=4, ts=100), multigrid),
        Job("LimitLESS4 Ts=50", cfg("limitless", pointers=4, ts=50), multigrid),
        Job("Full-Map", cfg("fullmap"), multigrid),
    ]
    grids["Figure 8: Weather, limited and full-map"] = [
        Job("Dir1NB", cfg("limited", pointers=1), weather()),
        Job("Dir2NB", cfg("limited", pointers=2), weather()),
        Job("Dir4NB", cfg("limited", pointers=4), weather()),
        Job("Full-Map", cfg("fullmap"), weather()),
    ]
    grids["§5.2: optimized Weather"] = [
        Job("Dir4NB (optimized)", cfg("limited", pointers=4), weather(optimized=True)),
        Job("Full-Map (optimized)", cfg("fullmap"), weather(optimized=True)),
    ]
    grids["Figure 9: Weather, LimitLESS Ts sweep"] = [
        Job("Dir4NB", cfg("limited", pointers=4), weather()),
        *[
            Job(f"LimitLESS4 Ts={ts}", cfg("limitless", pointers=4, ts=ts), weather())
            for ts in (150, 100, 50, 25)
        ],
        Job("Full-Map", cfg("fullmap"), weather()),
    ]
    grids["Figure 10: Weather, pointer sweep"] = [
        Job("Dir4NB", cfg("limited", pointers=4), weather()),
        *[
            Job(f"LimitLESS{p} Ts=50", cfg("limitless", pointers=p, ts=50), weather())
            for p in (1, 2, 4)
        ],
        Job("Full-Map", cfg("fullmap"), weather()),
    ]
    grids["Ablation: exact vs approximation"] = [
        Job("LimitLESS4 exact", cfg("limitless", pointers=4, ts=50), weather()),
        Job("LimitLESS4 approx", cfg("limitless_approx", pointers=4, ts=50), weather()),
        Job("Full-Map", cfg("fullmap"), weather()),
    ]
    return grids


def _figure_report(title: str, results: list[JobResult]) -> str:
    # Failed/quarantined points have no stats; chart what succeeded and
    # name the rest so a degraded sweep still renders every figure.
    rows = [(r.job.label, r.stats) for r in results if r.stats is not None]
    failed = [r.job.label for r in results if r.stats is None]
    out = []
    if rows:
        out.append(bar_chart(title, [(label, s.mcycles()) for label, s in rows]))
    else:
        out.append(f"{title}: no successful points")
    if failed:
        out.append("  failed/quarantined: " + ", ".join(failed))
    baseline = dict(rows).get("Full-Map")
    if baseline:
        table = [
            (label, f"{s.cycles:,}", f"{s.cycles / baseline.cycles:.2f}x")
            for label, s in rows
        ]
        out.append(format_table(["scheme", "cycles", "vs Full-Map"], table))
    return "\n\n".join(out)


def run_figure_suite(
    procs: int = 64,
    iters: int = 8,
    *,
    workers: int = 1,
    cache: ResultCache | None = None,
    only: list[str] | None = None,
    out: Path | str | None = None,
    echo: Callable[[str], None] = print,
    timeout: float | None = None,
    shards: int = 1,
    fabric: str = "auto",
    manifest: CampaignManifest | None = None,
    resume: bool = False,
    retries: int = 0,
    retry_backoff: float = 0.5,
) -> dict:
    """Run the figure grids and return the ``BENCH_figures.json`` record.

    ``only`` filters figures by substring match on their titles (e.g.
    ``["Figure 9"]``).  ``timeout`` bounds each grid point's wall clock
    (a hung point fails loudly instead of wedging the sweep).  The
    artifact records per-job wall-clock, cache hits, and cycle counts —
    the trajectory of the whole run.

    ``manifest``/``resume``/``retries`` make the campaign crash-safe
    (see :func:`repro.sweep.runner.run_jobs`): a resumed sweep skips
    completed points via the cache, re-queues points that were in
    flight when the process died, and quarantines points that keep
    failing instead of aborting the campaign — so the suite runs with
    ``on_error="record"`` when a manifest is present, and failed points
    surface in the report and the artifact rather than as an exception.
    """
    grids = figure_grids(procs, iters, shards=shards, fabric=fabric)
    if only:
        grids = {
            title: jobs
            for title, jobs in grids.items()
            if any(sel.lower() in title.lower() for sel in only)
        }
        if not grids:
            raise ValueError(f"no figure matches {only!r}")
    flat: list[Job] = [job for jobs in grids.values() for job in jobs]
    bounds: list[tuple[str, int, int]] = []
    offset = 0
    for title, jobs in grids.items():
        bounds.append((title, offset, offset + len(jobs)))
        offset += len(jobs)

    echo(
        f"repro sweep: {len(flat)} grid points, {procs} processors, "
        f"{workers} worker(s)"
    )
    start = time.perf_counter()
    results = run_jobs(
        flat,
        workers=workers,
        cache=cache,
        progress=ProgressPrinter(),
        timeout=timeout,
        on_error="record" if manifest is not None else "raise",
        manifest=manifest,
        resume=resume,
        retries=retries,
        retry_backoff=retry_backoff,
    )
    wall = time.perf_counter() - start

    for title, lo, hi in bounds:
        echo("")
        echo(_figure_report(title, results[lo:hi]))
    executed = sum(1 for r in results if not r.cached)
    failed = sum(1 for r in results if not r.ok)
    quarantined = sum(
        1 for r in results if r.error and r.error.startswith("quarantined")
    )
    echo(
        f"\n{len(results)} grid points in {wall:.1f}s wall "
        f"({executed} simulated, {len(results) - executed} from cache/dedup)"
    )
    if failed:
        echo(
            f"  {failed} point(s) FAILED"
            + (f", {quarantined} of them quarantined" if quarantined else "")
        )
    if cache is not None:
        echo(cache.summary())

    artifact = {
        "suite": "figures",
        "procs": procs,
        "iters": iters,
        "shards": shards,
        "fabric": fabric,
        "workers": workers,
        "wall_seconds": round(wall, 3),
        "simulated": executed,
        "reused": len(results) - executed,
        "failed": failed,
        "quarantined": quarantined,
        "resumed": resume,
        "cache": {
            "enabled": bool(cache and cache.enabled),
            "dir": str(cache.directory) if cache else None,
            "hits": cache.hits if cache else 0,
            "misses": cache.misses if cache else 0,
            "write_errors": cache.write_errors if cache else 0,
        },
        "figures": [
            {
                "title": title,
                "rows": [
                    {
                        "label": r.job.label,
                        "key": r.key,
                        "cycles": r.stats.cycles if r.stats else None,
                        "traps": r.stats.traps_taken if r.stats else None,
                        "packets": r.stats.network.packets if r.stats else None,
                        "cached": r.cached,
                        "wall_seconds": round(r.wall_seconds, 3),
                        "error": r.error,
                    }
                    for r in results[lo:hi]
                ],
            }
            for title, lo, hi in bounds
        ],
    }
    if out:
        Path(out).write_text(json.dumps(artifact, indent=2))
        echo(f"wrote {out}")
    return artifact
