"""Declarative experiment jobs: config + workload *description*.

The parallel runner ships jobs to worker processes and keys the result
cache on job content, so a job cannot hold a live :class:`Workload`
instance (generator state is neither picklable nor hashable).  Instead a
:class:`WorkloadSpec` names a registered workload class plus its
constructor parameters; ``build()`` instantiates a fresh workload in
whatever process runs the job.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any

from ..machine import AlewifeConfig
from ..workloads import (
    ButterflyWorkload,
    HotSpotWorkload,
    LatencyToleranceWorkload,
    MatmulWorkload,
    MigratoryWorkload,
    MultigridWorkload,
    ProducerConsumerWorkload,
    SyntheticSharingWorkload,
    WeatherWorkload,
    Workload,
)

#: Workload classes constructible from JSON-serializable keyword params.
WORKLOAD_REGISTRY: dict[str, type] = {
    "weather": WeatherWorkload,
    "multigrid": MultigridWorkload,
    "hotspot": HotSpotWorkload,
    "migratory": MigratoryWorkload,
    "producer-consumer": ProducerConsumerWorkload,
    "matmul": MatmulWorkload,
    "synthetic": SyntheticSharingWorkload,
    "butterfly": ButterflyWorkload,
    "latency": LatencyToleranceWorkload,
}


@dataclass
class WorkloadSpec:
    """A picklable, hashable-by-content description of one workload."""

    name: str
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.name not in WORKLOAD_REGISTRY:
            raise ValueError(
                f"unknown workload {self.name!r}; choose from "
                f"{sorted(WORKLOAD_REGISTRY)}"
            )

    def build(self) -> Workload:
        """Instantiate a fresh workload (call once per run)."""
        return WORKLOAD_REGISTRY[self.name](**self.params)

    def key_dict(self) -> dict[str, Any]:
        """Canonical content for cache-key hashing (tuples -> lists)."""
        return json.loads(json.dumps({"name": self.name, "params": self.params}))

    def describe(self) -> str:
        params = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.name}({params})"


@dataclass
class Job:
    """One grid point: a machine configuration running one workload."""

    label: str
    config: AlewifeConfig
    workload: WorkloadSpec


def job_key(config: AlewifeConfig, workload: WorkloadSpec, fingerprint: str) -> str:
    """Content-addressed cache key for one job.

    Hashes the full machine configuration, the workload spec, and a
    fingerprint of the simulator's own source tree — any change to
    ``src/repro`` invalidates every cached result, which is the only safe
    policy for a simulator whose timing model is the thing under study.
    """
    payload = {
        "config": asdict(config),
        "workload": workload.key_dict(),
        "source": fingerprint,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
