"""The ``repro sweep`` subcommand: parallel cached figure sweeps.

Examples::

    python -m repro sweep                        # full grid, serial, cached
    python -m repro sweep --workers 4            # cold cache, 4 processes
    python -m repro sweep --figures "Figure 9"   # one figure only
    python -m repro sweep --no-cache --procs 16  # small fresh run
    python -m repro sweep --resume               # pick up a crashed campaign
    python -m repro sweep --clear-cache          # drop every cached result
"""

from __future__ import annotations

import argparse

from .cache import ResultCache, default_cache_dir
from .grids import figure_grids, run_figure_suite
from .manifest import CampaignManifest


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--procs", type=int, default=64, help="simulated processors")
    parser.add_argument("--iters", type=int, default=8, help="Weather iterations")
    parser.add_argument(
        "--workers", type=int, default=1, help="worker processes (default serial)"
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="shard every grid point's machine K ways (default 1 = serial)",
    )
    parser.add_argument(
        "--fabric",
        choices=["auto", "atomic", "staged"],
        default="auto",
        help="network arbitration model for every grid point (default auto)",
    )
    parser.add_argument(
        "--figures",
        nargs="+",
        metavar="MATCH",
        help="only figures whose title contains MATCH (case-insensitive)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per grid point (default: unlimited)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="ignore and bypass the result cache"
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume a crashed campaign: completed points come back from "
        "the cache, points that were in flight when the process died are "
        "re-queued, and points past the retry budget are quarantined",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="retry budget per grid point, counted across resumes "
        "(default 1; a point is quarantined once its crashed/failed "
        "attempts exceed it)",
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="linear backoff between in-run retry rounds (default 0.5)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"cache location (default $REPRO_SWEEP_CACHE or {default_cache_dir()})",
    )
    parser.add_argument(
        "--out",
        default="BENCH_figures.json",
        help="trajectory artifact path ('' to skip writing)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list the figure grids and exit"
    )
    parser.add_argument(
        "--clear-cache", action="store_true", help="delete cached results and exit"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro sweep",
        description=(
            "Reproduce the paper's evaluation figures through the parallel "
            "sweep runner with content-addressed result caching."
        ),
    )
    add_arguments(parser)
    return parser


def run_from_args(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir, enabled=not args.no_cache)
    if args.clear_cache:
        removed = cache.clear()
        print(f"removed {removed} cached results from {cache.directory}")
        return 0
    if args.list:
        listing = figure_grids(
            args.procs, args.iters, shards=args.shards, fabric=args.fabric
        )
        for title, jobs in listing.items():
            print(f"{title} ({len(jobs)} points)")
            for job in jobs:
                print(f"  {job.label:28s} {job.workload.describe()}")
        return 0
    # The write-ahead manifest lives next to the cached results so a
    # crashed campaign can be resumed with `repro sweep --resume`.  With
    # a manifest present the suite records failures instead of raising;
    # the exit code reports them.
    manifest = CampaignManifest(cache.directory / "sweep-manifest.ndjson")
    try:
        with manifest:
            artifact = run_figure_suite(
                args.procs,
                args.iters,
                workers=args.workers,
                cache=cache,
                only=args.figures,
                out=args.out or None,
                timeout=args.timeout,
                shards=args.shards,
                fabric=args.fabric,
                manifest=manifest,
                resume=args.resume,
                retries=args.retries,
                retry_backoff=args.retry_backoff,
            )
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    return 0 if artifact["failed"] == 0 else 1


def main(argv: list[str] | None = None) -> int:
    return run_from_args(build_parser().parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
