"""Parallel, cached execution of experiment grids.

``run_jobs`` is the engine behind ``repro sweep`` and
``benchmarks/run_figures.py``: it deduplicates identical grid points (the
paper's figures share several baselines, e.g. Full-Map/Weather appears in
Figures 8, 9 and 10), satisfies what it can from the on-disk result cache,
and fans the remainder out over a ``multiprocessing`` pool.  Each job
builds a fresh machine in its worker process, so parallelism cannot
perturb simulated cycle counts — determinism is the contract, wall-clock
is the only thing that changes.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
from dataclasses import dataclass
from typing import Callable, Sequence, TextIO

from ..machine import MachineStats, run_experiment
from .cache import ResultCache, source_fingerprint
from .spec import Job, job_key


@dataclass
class JobResult:
    """Outcome of one grid point."""

    job: Job
    stats: MachineStats
    cached: bool
    wall_seconds: float
    key: str


ProgressFn = Callable[[JobResult, int, int], None]


def _execute(payload: tuple[int, Job]) -> tuple[int, MachineStats, float]:
    """Worker-process entry point: run one job, return its stats."""
    index, job = payload
    start = time.perf_counter()
    stats = run_experiment(job.config, job.workload.build())
    return index, stats, time.perf_counter() - start


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork keeps worker start cheap (no re-import); fall back where absent.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def run_jobs(
    jobs: Sequence[Job],
    *,
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: ProgressFn | None = None,
) -> list[JobResult]:
    """Run every job, in the order given, returning one result per job.

    Identical jobs (same config + workload + source) run once and share
    their stats; cached jobs never run at all.  ``progress`` fires once
    per job as its result becomes available (cache hits first).
    """
    if cache is None:
        cache = ResultCache(enabled=False)
    fingerprint = source_fingerprint()
    keys = [job_key(job.config, job.workload, fingerprint) for job in jobs]
    total = len(jobs)
    results: list[JobResult | None] = [None] * total
    done = 0

    # First occurrence of each key runs (or hits the cache); duplicates
    # share its stats without re-simulating.
    primary: dict[str, int] = {}
    pending: list[tuple[int, Job]] = []
    for index, (job, key) in enumerate(zip(jobs, keys)):
        if key in primary:
            continue
        primary[key] = index
        stats = cache.lookup(key)
        if stats is not None:
            results[index] = JobResult(job, stats, True, 0.0, key)
            done += 1
            if progress is not None:
                progress(results[index], done, total)
        else:
            pending.append((index, job))

    def record(index: int, stats: MachineStats, wall: float) -> None:
        nonlocal done
        job = jobs[index]
        key = keys[index]
        cache.store(key, stats, wall_seconds=wall, label=job.label)
        results[index] = JobResult(job, stats, False, wall, key)
        done += 1
        if progress is not None:
            progress(results[index], done, total)

    if pending:
        if workers > 1 and len(pending) > 1:
            ctx = _pool_context()
            with ctx.Pool(min(workers, len(pending))) as pool:
                for index, stats, wall in pool.imap_unordered(
                    _execute, pending, chunksize=1
                ):
                    record(index, stats, wall)
        else:
            for payload in pending:
                index, stats, wall = _execute(payload)
                record(index, stats, wall)

    # Fill duplicates from their primary's stats.
    for index, key in enumerate(keys):
        if results[index] is None:
            origin = results[primary[key]]
            assert origin is not None
            results[index] = JobResult(jobs[index], origin.stats, True, 0.0, key)
            done += 1
            if progress is not None:
                progress(results[index], done, total)
    return [r for r in results if r is not None]


class ProgressPrinter:
    """Live per-job progress with a wall-clock ETA for the remainder."""

    def __init__(self, stream: TextIO | None = None):
        self.stream = stream or sys.stderr
        self.start = time.perf_counter()
        self.executed_wall = 0.0
        self.executed = 0

    def __call__(self, result: JobResult, done: int, total: int) -> None:
        if not result.cached:
            self.executed += 1
            self.executed_wall += result.wall_seconds
        remaining = total - done
        if self.executed and remaining:
            eta = f"  ETA {self.executed_wall / self.executed * remaining:.0f}s"
        else:
            eta = ""
        source = "cached" if result.cached else f"{result.wall_seconds:.1f}s"
        print(
            f"  [{done}/{total}] {result.job.label:28s} "
            f"{result.stats.cycles:>12,} cycles  ({source}){eta}",
            file=self.stream,
            flush=True,
        )
