"""Parallel, cached execution of experiment grids.

``run_jobs`` is the engine behind ``repro sweep`` and
``benchmarks/run_figures.py``: it deduplicates identical grid points (the
paper's figures share several baselines, e.g. Full-Map/Weather appears in
Figures 8, 9 and 10), satisfies what it can from the on-disk result cache,
and fans the remainder out over a ``multiprocessing`` pool.  Each job
builds a fresh machine in its worker process, so parallelism cannot
perturb simulated cycle counts — determinism is the contract, wall-clock
is the only thing that changes.
"""

from __future__ import annotations

import multiprocessing
import signal
import sys
import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, TextIO

from ..machine import MachineStats, run_experiment
from .cache import ResultCache
from .manifest import CampaignManifest
from .spec import Job, job_key


class JobTimeout(Exception):
    """A grid point exceeded its wall-clock budget."""


@dataclass
class JobResult:
    """Outcome of one grid point.

    ``stats`` is None — and ``error`` holds the rendered exception — when
    the job failed or timed out under ``on_error="record"``.
    """

    job: Job
    stats: Optional[MachineStats]
    cached: bool
    wall_seconds: float
    key: str
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


ProgressFn = Callable[[JobResult, int, int], None]


def _on_alarm(signum, frame):  # pragma: no cover - fires inside workers
    raise JobTimeout("wall-clock budget exceeded")


def _execute(
    payload: tuple[int, Job, Optional[float], Optional[int]]
) -> tuple[int, Optional[MachineStats], float, Optional[str]]:
    """Worker-process entry point: run one job, return its stats.

    Failures (including the SIGALRM wall-clock timeout) come back as a
    rendered error string instead of poisoning the whole pool; the parent
    decides whether to raise or record them.
    """
    index, job, timeout, shard_workers = payload
    start = time.perf_counter()
    armed = timeout is not None and hasattr(signal, "SIGALRM")
    old_handler = None
    try:
        if armed:
            old_handler = signal.signal(signal.SIGALRM, _on_alarm)
            signal.alarm(max(1, int(timeout)))
        if shard_workers is None:
            stats = run_experiment(job.config, job.workload.build())
        else:
            stats = run_experiment(
                job.config, job.workload.build(), shard_workers=shard_workers
            )
        return index, stats, time.perf_counter() - start, None
    except JobTimeout:
        wall = time.perf_counter() - start
        return index, None, wall, f"JobTimeout: exceeded {timeout:g}s wall clock"
    except Exception as exc:
        wall = time.perf_counter() - start
        return index, None, wall, f"{type(exc).__name__}: {exc}"
    finally:
        if armed:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, old_handler)


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork keeps worker start cheap (no re-import); fall back where absent.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def run_jobs(
    jobs: Sequence[Job],
    *,
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: ProgressFn | None = None,
    timeout: float | None = None,
    on_error: str = "raise",
    manifest: CampaignManifest | None = None,
    resume: bool = False,
    retries: int = 0,
    retry_backoff: float = 0.5,
) -> list[JobResult]:
    """Run every job, in the order given, returning one result per job.

    Identical jobs (same config + workload + source) run once and share
    their stats; cached jobs never run at all.  ``progress`` fires once
    per job as its result becomes final (cache hits first).

    ``timeout`` bounds each grid point's wall-clock seconds (SIGALRM in
    the worker, so even a hung simulation is reclaimed).  A failed or
    timed-out point raises by default; ``on_error="record"`` instead
    returns it as a ``JobResult`` with ``stats=None`` and the error
    string — the fault-campaign oracle treats those as survival failures.

    ``manifest`` adds crash-safe bookkeeping: a write-ahead ``start``
    record before each attempt and a terminal record after it.  With
    ``resume=True`` the prior log is replayed first — completed points
    come back from the result cache as usual, points that were in flight
    when the previous process died count one crashed attempt each, and a
    point whose crashed/failed attempts already exceed ``retries`` is
    *quarantined*: reported as a failed result without executing (and
    without raising, even under ``on_error="raise"``), so one poisoned
    point cannot kill every resume of a campaign.  ``retries`` also
    grants each failed point that many in-run retry rounds, spaced by
    ``retry_backoff * round`` seconds.
    """
    if on_error not in ("raise", "record"):
        raise ValueError(f"on_error must be 'raise' or 'record', not {on_error!r}")
    if cache is None:
        cache = ResultCache(enabled=False)
    # The fingerprint is memoized per-cache, not per-process: a long-lived
    # embedder (the serve layer) controls staleness via cache.invalidate().
    fingerprint = cache.fingerprint.value()
    keys = [job_key(job.config, job.workload, fingerprint) for job in jobs]
    total = len(jobs)
    results: list[JobResult | None] = [None] * total
    done = 0

    # Replay the write-ahead log so a resumed campaign knows how many
    # attempts each point already burned (terminal failures plus starts
    # that never got a terminal record — the process died mid-point).
    prior = manifest.load() if (manifest is not None and resume) else {}
    attempt_no: dict[str, int] = {}

    # First occurrence of each key runs (or hits the cache); duplicates
    # share its stats without re-simulating.
    primary: dict[str, int] = {}
    pending: list[tuple[int, Job, Optional[float], Optional[int]]] = []
    for index, (job, key) in enumerate(zip(jobs, keys)):
        if key in primary:
            continue
        primary[key] = index
        state = prior.get(key)
        attempt_no[key] = state.crashed_attempts if state is not None else 0
        stats = cache.lookup(key)
        if stats is not None:
            results[index] = JobResult(job, stats, True, 0.0, key)
            done += 1
            if progress is not None:
                progress(results[index], done, total)
            continue
        if state is not None and not state.done and state.crashed_attempts > retries:
            # Poisoned point: across previous runs of this campaign it has
            # already failed or crashed the process more times than the
            # retry budget allows.  Quarantine it — record the failure
            # without executing and without raising — so it cannot kill
            # the campaign yet again on every resume.
            reason = (
                f"quarantined: {state.crashed_attempts} crashed/failed "
                f"attempt(s) exceed the retry budget ({retries})"
            )
            if state.last_error:
                reason += f"; last error: {state.last_error}"
            if manifest is not None:
                manifest.quarantined(key, job.label, reason)
            results[index] = JobResult(job, None, False, 0.0, key, error=reason)
            done += 1
            if progress is not None:
                progress(results[index], done, total)
            continue
        pending.append((index, job, timeout, None))

    def launch(payload: tuple[int, Job, Optional[float], Optional[int]]) -> None:
        """Write-ahead: log the attempt before it executes."""
        key = keys[payload[0]]
        attempt_no[key] += 1
        if manifest is not None:
            manifest.start(key, payload[1].label, attempt_no[key])

    def record(
        index: int, stats: Optional[MachineStats], wall: float, error: Optional[str]
    ) -> None:
        """Finalize one point: cache + manifest + result + progress."""
        nonlocal done
        job = jobs[index]
        key = keys[index]
        if error is not None:
            if manifest is not None:
                manifest.failed(key, attempt_no[key], error)
            if on_error == "raise":
                raise RuntimeError(f"grid point {job.label!r} failed: {error}")
        if stats is not None:
            # Failed points are never cached: a transient failure must not
            # satisfy a future lookup.
            cache.store(key, stats, wall_seconds=wall, label=job.label)
            if manifest is not None:
                manifest.done(key)
        results[index] = JobResult(job, stats, False, wall, key, error=error)
        done += 1
        if progress is not None:
            progress(results[index], done, total)

    retry_queue: list[tuple[int, Job, Optional[float], Optional[int]]] = []

    def settle(
        payload: tuple[int, Job, Optional[float], Optional[int]],
        stats: Optional[MachineStats],
        wall: float,
        error: Optional[str],
        *,
        retries_left: int,
    ) -> None:
        """Finalize a point, or queue it for another round if budget remains."""
        if error is not None and retries_left > 0:
            if manifest is not None:
                manifest.failed(keys[payload[0]], attempt_no[keys[payload[0]]], error)
            retry_queue.append(payload)
            return
        record(payload[0], stats, wall, error)

    # Sharded grid points fork their own worker processes, so handing them
    # to the pool would oversubscribe the core budget K-fold.  They run
    # one at a time in this process instead, with the whole budget as
    # their internal workers (in-process stepping when the budget is one
    # core); serial points fan out over the pool as before.
    serial_pending = [p for p in pending if p[1].config.shards <= 1]
    sharded_pending = [p for p in pending if p[1].config.shards > 1]
    payload_by_index = {p[0]: p for p in serial_pending}

    if serial_pending:
        if workers > 1 and len(serial_pending) > 1:
            ctx = _pool_context()
            n = min(workers, len(serial_pending))
            with ctx.Pool(n) as pool:
                # Submit in waves of pool size so the write-ahead records
                # only cover points that are genuinely executing: a crash
                # then charges at most one attempt to each of ~n points,
                # not to the whole campaign.
                for wave_start in range(0, len(serial_pending), n):
                    wave = serial_pending[wave_start : wave_start + n]
                    for payload in wave:
                        launch(payload)
                    for index, stats, wall, error in pool.imap_unordered(
                        _execute, wave, chunksize=1
                    ):
                        settle(
                            payload_by_index[index],
                            stats,
                            wall,
                            error,
                            retries_left=retries,
                        )
        else:
            for payload in serial_pending:
                launch(payload)
                index, stats, wall, error = _execute(payload)
                settle(payload, stats, wall, error, retries_left=retries)

    for index, job, job_timeout, _ in sharded_pending:
        shard_workers = 1 if workers <= 1 else None
        payload = (index, job, job_timeout, shard_workers)
        launch(payload)
        index, stats, wall, error = _execute(payload)
        settle(payload, stats, wall, error, retries_left=retries)

    # Retry rounds: failed points re-execute serially in this process,
    # spaced by a linear backoff, until they succeed or the budget is
    # spent (the last round finalizes via ``record``, which raises under
    # ``on_error="raise"``).
    round_no = 0
    while retry_queue and round_no < retries:
        round_no += 1
        batch, retry_queue = retry_queue, []
        for payload in batch:
            if retry_backoff > 0:
                time.sleep(retry_backoff * round_no)
            launch(payload)
            index, stats, wall, error = _execute(payload)
            settle(payload, stats, wall, error, retries_left=retries - round_no)

    # Fill duplicates from their primary's stats (or error).
    for index, key in enumerate(keys):
        if results[index] is None:
            origin = results[primary[key]]
            assert origin is not None
            results[index] = JobResult(
                jobs[index], origin.stats, True, 0.0, key, error=origin.error
            )
            done += 1
            if progress is not None:
                progress(results[index], done, total)
    return [r for r in results if r is not None]


class ProgressTracker:
    """Turns the ``ProgressFn`` stream into structured progress records.

    One tracker follows one run: feed it every ``(result, done, total)``
    callback and it returns a JSON-serializable dict per grid point —
    label, outcome, wall clock, elapsed time and a guarded ETA.  The ETA
    is ``None`` until at least one point has actually executed (cache
    hits carry no timing signal) and clamps at ``0.0`` for degenerate
    zero-wall executions, so consumers never divide by zero or see a
    negative estimate.  ``ProgressPrinter`` derives its human line from
    these records; the serve layer streams them as NDJSON.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self.start = clock()
        self.executed_wall = 0.0
        self.executed = 0

    def eta_seconds(self, remaining: int) -> Optional[float]:
        """Projected wall seconds for ``remaining`` points; None if unknown."""
        if remaining <= 0:
            return 0.0
        if self.executed <= 0:
            return None  # nothing has executed yet: no rate to project from
        return max(0.0, self.executed_wall / self.executed * remaining)

    def record(self, result: JobResult, done: int, total: int) -> dict:
        if not result.cached:
            self.executed += 1
            self.executed_wall += max(0.0, result.wall_seconds)
        return {
            "event": "point",
            "done": done,
            "total": total,
            "label": result.job.label,
            "key": result.key,
            "cached": result.cached,
            "ok": result.ok,
            "cycles": result.stats.cycles if result.stats is not None else None,
            "wall_seconds": round(max(0.0, result.wall_seconds), 6),
            "elapsed_seconds": round(max(0.0, self._clock() - self.start), 6),
            "eta_seconds": self.eta_seconds(total - done),
            "error": result.error,
        }

    @staticmethod
    def describe(record: dict) -> str:
        """The human progress line for one structured record."""
        if record["eta_seconds"] is not None and record["done"] < record["total"]:
            eta = f"  ETA {record['eta_seconds']:.0f}s"
        else:
            eta = ""
        source = "cached" if record["cached"] else f"{record['wall_seconds']:.1f}s"
        if record["cycles"] is None:
            outcome = f"FAILED: {record['error']}"
        else:
            outcome = f"{record['cycles']:>12,} cycles"
        return (
            f"  [{record['done']}/{record['total']}] {record['label']:28s} "
            f"{outcome}  ({source}){eta}"
        )


class ProgressPrinter:
    """Live per-job progress with a wall-clock ETA for the remainder.

    A thin formatting shell over :class:`ProgressTracker`: every callback
    produces one structured record (kept on ``self.records``) and prints
    its derived human line.
    """

    def __init__(self, stream: TextIO | None = None):
        self.stream = stream or sys.stderr
        self.tracker = ProgressTracker()
        self.records: list[dict] = []

    def __call__(self, result: JobResult, done: int, total: int) -> None:
        record = self.tracker.record(result, done, total)
        self.records.append(record)
        print(ProgressTracker.describe(record), file=self.stream, flush=True)
