"""Checkpointed runs and verified resume.

Both drivers pause the simulation only at globally consistent instants —
the serial kernel between events at an exact cycle, the sharded
in-process driver at a post-absorb window boundary — write a replay
marker there, and continue.  Resume replays the run from cycle zero
(generator-based workload programs cannot be serialized), verifies the
state digest when it passes the marker, and runs to completion; the
final stats are therefore bit-identical to an uninterrupted run, and
the digest check turns "should be identical" into "verified identical".

Checkpointing a sharded config forces in-process stepping (the forked
driver has no global boundary to pause at); the forked driver's crash
story is supervision + restart-from-marker, exercised by
:mod:`repro.recover.chaos`.
"""

from __future__ import annotations

from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from ..machine.config import AlewifeConfig
from ..machine.machine import AlewifeMachine, MachineStats
from ..sweep.cache import SourceFingerprint
from ..sweep.spec import WorkloadSpec
from .snapshot import (
    Snapshot,
    list_snapshots,
    make_snapshot,
    read_snapshot,
    snapshot_path,
    state_digest,
)

if TYPE_CHECKING:  # pragma: no cover
    pass


class CheckpointError(Exception):
    """A checkpoint/resume request that cannot be honored."""


class SnapshotDrift(CheckpointError):
    """The replay diverged from the snapshot — nondeterminism or a
    changed source tree/config.  The resume refuses to continue rather
    than silently produce different numbers."""


class CheckpointInterrupted(Exception):
    """Control-flow exception for the ``stop_after`` crash-emulation hook
    (tests and the chaos supervisor's in-process mode): the run stopped
    cleanly right after writing ``snapshot``."""

    def __init__(self, snapshot: Path, cycle: int):
        super().__init__(
            f"run interrupted at cycle {cycle} after writing {snapshot}"
        )
        self.snapshot = snapshot
        self.cycle = cycle


def latest_snapshot(directory: Path | str) -> Optional[Path]:
    """The most recent snapshot in a checkpoint directory, or None."""
    snaps = list_snapshots(directory)
    return snaps[-1] if snaps else None


class _Checkpointer:
    """Shared boundary logic for both drivers: verify-then-write.

    While a resume marker is pending, every boundary below its cycle is
    skipped, the boundary *at* its cycle must reproduce its digest, and
    overshooting it is drift (the replay no longer visits the instant the
    snapshot was taken at).  Once verified — or from the start of a fresh
    run — a snapshot is written at the first boundary at or past each
    ``every``-cycle deadline.
    """

    def __init__(
        self,
        config: AlewifeConfig,
        spec: WorkloadSpec,
        *,
        every: Optional[int],
        out_dir: Path,
        fingerprint: str,
        driver: str,
        stop_after: Optional[int] = None,
        resume_from: Optional[Snapshot] = None,
    ):
        self.config = config
        self.spec = spec
        self.every = every
        self.out_dir = Path(out_dir)
        self.fingerprint = fingerprint
        self.driver = driver
        self.stop_after = stop_after
        self.resume_from = resume_from
        self.verified = resume_from is None
        self.written = 0
        if resume_from is not None:
            self.next_due = resume_from.cycle + (every or 0)
        else:
            self.next_due = every or 0

    @property
    def resume_cycle(self) -> Optional[int]:
        return None if self.resume_from is None else self.resume_from.cycle

    def boundary(self, cycle: int, machines: list) -> None:
        """Called at every consistent instant with work still remaining."""
        if not self.verified:
            snap = self.resume_from
            assert snap is not None
            if cycle < snap.cycle:
                return
            if cycle > snap.cycle:
                raise SnapshotDrift(
                    f"replay reached boundary {cycle} without passing the "
                    f"snapshot's cycle {snap.cycle} — the run no longer "
                    f"visits the instant the snapshot was taken at"
                )
            digest = state_digest(machines)
            if digest != snap.digest:
                raise SnapshotDrift(
                    f"state digest mismatch at cycle {cycle}: snapshot "
                    f"{snap.digest[:16]}…, replay {digest[:16]}… — the "
                    f"simulation did not reproduce the checkpointed state"
                )
            self.verified = True
            return
        if self.every is None or cycle < self.next_due:
            return
        snap = make_snapshot(
            self.config,
            self.spec.key_dict(),
            machines,
            cycle,
            fingerprint=self.fingerprint,
            driver=self.driver,
        )
        path = snap.write(snapshot_path(self.out_dir, cycle))
        self.written += 1
        self.next_due = cycle + self.every
        if self.stop_after is not None and self.written >= self.stop_after:
            raise CheckpointInterrupted(path, cycle)

    def finish(self) -> None:
        """Sanity hook after the run drains: an unverified resume means
        the replay finished before ever reaching the marker."""
        if not self.verified:
            snap = self.resume_from
            assert snap is not None
            raise SnapshotDrift(
                f"replay completed without reaching snapshot cycle "
                f"{snap.cycle} — source tree or configuration drift"
            )


def _serial_driver(machine: AlewifeMachine, cp: _Checkpointer) -> None:
    """Checkpoint-aware replacement for ``sim.run()`` on a serial machine.

    Pausing ``run(until=...)`` at exact cycles never reorders events, so
    the executed event sequence — and every statistic — is identical to
    an unpaused run.
    """
    sim = machine.sim
    max_cycles = machine.config.max_cycles
    target = cp.resume_cycle
    if target is not None and target > sim.now:
        sim.run(until=min(target, max_cycles))
        cp.boundary(sim.now, [machine])
    while True:
        if cp.every is None:
            sim.run()
            return
        limit = min(((sim.now // cp.every) + 1) * cp.every, max_cycles)
        sim.run(until=limit)
        if not sim.pending_events or limit >= max_cycles:
            # Drained (done) or budget exhausted (the caller's laggard
            # check reports it) — either way, no more boundaries.
            return
        cp.boundary(limit, [machine])


def _resolve_spec(workload: dict) -> WorkloadSpec:
    return WorkloadSpec(workload["name"], dict(workload.get("params", {})))


def run_with_checkpoints(
    config: AlewifeConfig,
    spec: WorkloadSpec,
    *,
    every: Optional[int] = None,
    out_dir: Path | str,
    stop_after: Optional[int] = None,
    resume_from: Snapshot | Path | str | None = None,
    check_source: bool = True,
) -> MachineStats:
    """Run one experiment, writing a snapshot every ``every`` cycles.

    ``resume_from`` (a :class:`Snapshot` or a path to one) replays the
    run and verifies the marker's digest on the way through; drift raises
    :class:`SnapshotDrift` instead of continuing.  ``stop_after=N``
    emulates a crash by raising :class:`CheckpointInterrupted` right
    after the N-th snapshot is written.  ``every=None`` with a resume
    marker verifies without writing further snapshots.
    """
    if every is not None and every <= 0:
        raise CheckpointError("checkpoint interval must be a positive cycle count")
    if every is None and resume_from is None:
        raise CheckpointError("nothing to do: no interval and no resume marker")
    snap: Optional[Snapshot] = None
    if resume_from is not None:
        snap = (
            resume_from
            if isinstance(resume_from, Snapshot)
            else read_snapshot(resume_from)
        )
        if snap.config != asdict(config):
            raise CheckpointError(
                "snapshot was taken under a different machine configuration; "
                "resume with the snapshot's own config (repro run --resume "
                "does this automatically)"
            )
        if snap.workload != spec.key_dict():
            raise CheckpointError(
                f"snapshot records workload {snap.workload!r}, "
                f"not {spec.key_dict()!r}"
            )
    fingerprint = SourceFingerprint().value()
    if snap is not None and check_source and snap.fingerprint != fingerprint:
        raise SnapshotDrift(
            "the simulator source tree changed since the snapshot was "
            "written; its digest is no longer comparable (re-run from "
            "scratch, or pass check_source=False to gamble)"
        )

    sharded = config.shards > 1
    if sharded:
        from ..sim.shard import ShardPlan, _run_inprocess

        plan = ShardPlan(config)
        sharded = plan.n_shards > 1
    driver_tag = "shards" if sharded else "serial"
    if snap is not None and snap.driver != driver_tag:
        raise CheckpointError(
            f"snapshot was taken by the {snap.driver!r} driver but this "
            f"config selects {driver_tag!r}; their boundaries differ"
        )
    cp = _Checkpointer(
        config,
        spec,
        every=every,
        out_dir=Path(out_dir),
        fingerprint=fingerprint,
        driver=driver_tag,
        stop_after=stop_after,
        resume_from=snap,
    )
    if sharded:
        stats = _run_inprocess(
            config,
            spec.build(),
            plan,
            on_boundary=lambda limit, shards: cp.boundary(
                limit, [s.machine for s in shards]
            ),
        )
    else:
        stats = AlewifeMachine(config).run(
            spec.build(), driver=lambda machine: _serial_driver(machine, cp)
        )
    cp.finish()
    return stats


def resume_run(
    snapshot: Path | str | Snapshot,
    *,
    every: Optional[int] = None,
    out_dir: Path | str | None = None,
    stop_after: Optional[int] = None,
    check_source: bool = True,
) -> MachineStats:
    """Resume a run from a snapshot file; config and workload come from
    the marker itself, so the caller cannot accidentally diverge."""
    path: Optional[Path] = None
    if isinstance(snapshot, Snapshot):
        snap = snapshot
    else:
        path = Path(snapshot)
        snap = read_snapshot(path)
    if out_dir is None:
        out_dir = path.parent if path is not None else Path(".")
    config = AlewifeConfig(**snap.config)
    spec = _resolve_spec(snap.workload)
    return run_with_checkpoints(
        config,
        spec,
        every=every,
        out_dir=out_dir,
        stop_after=stop_after,
        resume_from=snap,
        check_source=check_source,
    )
