"""Crash-safety layer: checkpoints, resume, and process-level chaos.

The simulator's determinism is the recovery primitive.  A workload's
programs are live Python generators, so machine state cannot be pickled;
instead a checkpoint is a *replay marker* — the run's full identity
(config + workload spec + source fingerprint) plus a digest of the
machine state at a consistent instant.  Resuming replays the run from
cycle zero and verifies the digest when it passes the marker, so a
resumed run is bit-identical to an uninterrupted one *by construction*
and any nondeterminism or source drift fails loudly instead of silently
producing different numbers.  ``docs/RECOVERY.md`` spells out the
format, the guarantees, and the honest limitation (resume re-simulates;
it buys verified continuation, not saved wall-clock).
"""

from .checkpoint import (
    CheckpointError,
    CheckpointInterrupted,
    SnapshotDrift,
    latest_snapshot,
    resume_run,
    run_with_checkpoints,
)
from .snapshot import SNAPSHOT_VERSION, Snapshot, read_snapshot, state_digest

__all__ = [
    "SNAPSHOT_VERSION",
    "Snapshot",
    "read_snapshot",
    "state_digest",
    "CheckpointError",
    "CheckpointInterrupted",
    "SnapshotDrift",
    "latest_snapshot",
    "resume_run",
    "run_with_checkpoints",
]
