"""Versioned on-disk snapshot format + the machine-state digest.

A snapshot file is one JSON object (write-then-rename, so a crash never
leaves a torn file) recording everything needed to *reproduce* the run —
the full machine configuration, the workload spec, the source
fingerprint — plus the cycle it was taken at and a SHA-256 digest of the
live machine state at that cycle.  The digest folds in the kernel clock
and event-queue accounting, every node's counters, the machine-wide
cache-holdings map, directory-entry worker sets, network stats, and the
positions of every RNG substream: any divergence between the original
run and its replay perturbs at least one of these with overwhelming
probability, so the resume path can *verify* determinism rather than
assume it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..verify.invariants import cache_holdings

if TYPE_CHECKING:  # pragma: no cover
    from ..machine.machine import AlewifeMachine

#: Snapshot format version; bump when the schema or digest recipe changes
#: (a digest from another recipe must never be compared against ours).
SNAPSHOT_VERSION = 1


def _machine_state(machine: "AlewifeMachine") -> dict:
    """The digestible state of one machine (or one shard's partition)."""
    sim = machine.sim
    counters = {
        node.node_id: node.counters.as_dict() for node in machine.nodes
    }
    worker_sets: dict[int, list] = {
        node.node_id: sorted(
            node.directory_controller.worker_sets.counts.items()
        )
        for node in machine.nodes
    }
    procs = {
        node.node_id: [
            node.processor.done,
            node.processor.busy_cycles,
            node.processor.traps_taken,
            node.processor.trap_cycles,
        ]
        for node in machine.nodes
    }
    rng = hashlib.sha256()
    for name in sorted(machine.rng._streams):
        rng.update(name.encode())
        rng.update(repr(machine.rng._streams[name].getstate()).encode())
    return {
        "shard": machine.shard_id,
        "sim": [
            sim.now,
            sim._seq,
            sim.events_executed,
            sim.pending_events,
        ],
        "counters": counters,
        "worker_sets": worker_sets,
        "procs": procs,
        "holdings": cache_holdings(machine.nodes),
        "network": asdict(machine.network.stats),
        "rng": rng.hexdigest(),
    }


def state_digest(machines: list) -> str:
    """SHA-256 over the canonical state of one machine or all shards.

    The machines must sit at a globally consistent instant (the serial
    driver between events, the sharded driver at a post-absorb window
    boundary); shard partition does not affect the digest inputs other
    than through ``shard`` ordering, which is deterministic.
    """
    payload = [_machine_state(m) for m in machines]
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class Snapshot:
    """One replay marker: run identity + consistent-instant digest."""

    config: dict
    workload: dict  # {"name": ..., "params": {...}} (WorkloadSpec shape)
    cycle: int
    digest: str
    fingerprint: str
    version: int = SNAPSHOT_VERSION
    #: "serial" or "shards" — which driver geometry took the snapshot
    #: (their window boundaries differ, so markers are not interchangeable)
    driver: str = "serial"
    meta: dict = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True, indent=1)

    @classmethod
    def from_json(cls, text: str) -> "Snapshot":
        data = json.loads(text)
        version = data.get("version")
        if version != SNAPSHOT_VERSION:
            raise ValueError(
                f"snapshot version {version!r} is not supported "
                f"(this build reads version {SNAPSHOT_VERSION})"
            )
        return cls(**data)

    def write(self, path: Path | str) -> Path:
        """Atomic write (tmp + rename) so a crash never leaves a torn file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(self.to_json())
        tmp.replace(path)
        return path


def read_snapshot(path: Path | str) -> Snapshot:
    return Snapshot.from_json(Path(path).read_text())


def snapshot_path(directory: Path | str, cycle: int) -> Path:
    return Path(directory) / f"snap-{cycle:012d}.json"


def list_snapshots(directory: Path | str) -> list[Path]:
    """Snapshot files in a checkpoint directory, oldest first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob("snap-*.json"))


def make_snapshot(
    config: Any,
    workload: dict,
    machines: list,
    cycle: int,
    *,
    fingerprint: str,
    driver: str,
) -> Snapshot:
    from dataclasses import asdict as config_asdict

    return Snapshot(
        config=config_asdict(config),
        workload=workload,
        cycle=cycle,
        digest=state_digest(machines),
        fingerprint=fingerprint,
        driver=driver,
        meta={"shards": len(machines)},
    )
