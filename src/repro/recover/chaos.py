"""Process-level chaos: SIGKILL the simulation at seeded times, recover.

Two kill targets, matching the two crash stories:

``process``
    The whole simulation process is killed mid-run.  Recovery is the
    checkpoint layer: every attempt resumes from the latest snapshot on
    disk (verifying its digest on the way through) — or starts fresh if
    the kill landed before the first checkpoint.

``worker``
    A *forked shard worker* (a grandchild) is killed mid-window.  The
    parent driver's supervision detects the death (naming the signal,
    see ``repro.sim.shard._death_cause``), unwinds cleanly, and the
    supervisor restarts the attempt.

Either way the oracle is total: the recovered run's full
``MachineStats.to_dict()`` must equal a zero-chaos baseline computed in
the supervising process, so any divergence — one counter, one packet —
fails the point.  Kill times are drawn from a seeded RNG, so a campaign
replays exactly.
"""

from __future__ import annotations

import json
import os
import random
import time
from dataclasses import asdict
from multiprocessing import get_all_start_methods, get_context
from pathlib import Path
from typing import Callable, Optional, Sequence

from ..machine.config import AlewifeConfig
from ..machine.machine import run_experiment
from ..sweep.spec import WorkloadSpec
from .checkpoint import latest_snapshot, resume_run, run_with_checkpoints


def _write_result(result_path: Path, payload: dict) -> None:
    tmp = result_path.with_suffix(".tmp")
    tmp.write_text(json.dumps(payload))
    tmp.replace(result_path)


def _checkpoint_child(
    config_dict: dict, workload: dict, out_dir: str, every: int, result: str
) -> None:
    """Chaos child for ``process`` kills: run (or resume) with checkpoints."""
    config = AlewifeConfig(**config_dict)
    spec = WorkloadSpec(workload["name"], dict(workload.get("params", {})))
    marker = latest_snapshot(out_dir)
    if marker is not None:
        stats = resume_run(marker, every=every, out_dir=out_dir)
    else:
        stats = run_with_checkpoints(config, spec, every=every, out_dir=out_dir)
    _write_result(Path(result), stats.to_dict())


def _forked_child(config_dict: dict, workload: dict, result: str) -> None:
    """Chaos child for ``worker`` kills: the forked shard driver, whose
    own supervision is the recovery mechanism under test."""
    config = AlewifeConfig(**config_dict)
    spec = WorkloadSpec(workload["name"], dict(workload.get("params", {})))
    stats = run_experiment(config, spec.build())
    _write_result(Path(result), stats.to_dict())


def _grandchildren(pid: int) -> list[int]:
    """PIDs of ``pid``'s direct children via /proc (the forked workers)."""
    pids: list[int] = []
    try:
        for children in Path(f"/proc/{pid}/task").glob("*/children"):
            pids.extend(int(p) for p in children.read_text().split())
    except OSError:
        pass
    return sorted(pids)


def run_chaos_point(
    label: str,
    config: AlewifeConfig,
    spec: WorkloadSpec,
    *,
    kills: int,
    seed: int,
    workdir: Path,
    every: int = 400,
    kill_target: str = "process",
    kill_window: tuple[float, float] = (0.05, 0.4),
    grace: float = 120.0,
) -> dict:
    """One chaos point: kill ``kills`` times at seeded delays, recover,
    and return a record with the recovered stats (or the failure)."""
    if kill_target not in ("process", "worker"):
        raise ValueError("kill_target must be 'process' or 'worker'")
    if kill_target == "worker" and config.shards <= 1:
        raise ValueError("worker kills need a sharded config (shards > 1)")
    rng = random.Random(f"{seed}:{label}")
    delays = [rng.uniform(*kill_window) for _ in range(kills)]
    slug = label.replace("/", "_").replace(" ", "_")
    point_dir = Path(workdir) / slug
    snap_dir = point_dir / "snaps"
    result_path = point_dir / "result.json"
    point_dir.mkdir(parents=True, exist_ok=True)
    ctx = get_context("fork")
    workload = spec.key_dict()

    attempts: list[dict] = []
    killed = 0
    stats_dict: Optional[dict] = None
    error: Optional[str] = None
    # Every kill costs at most one attempt, plus one clean attempt to
    # finish; anything beyond that is a real failure, not chaos.
    for attempt in range(1, kills + 2):
        if kill_target == "process":
            proc = ctx.Process(
                target=_checkpoint_child,
                args=(
                    asdict(config),
                    workload,
                    str(snap_dir),
                    every,
                    str(result_path),
                ),
            )
        else:
            proc = ctx.Process(
                target=_forked_child,
                args=(asdict(config), workload, str(result_path)),
            )
        proc.start()
        record = {"attempt": attempt, "killed": False, "victim": None}
        if killed < kills:
            time.sleep(delays[killed])
            victim = proc.pid
            if kill_target == "worker":
                workers = _grandchildren(proc.pid)
                if workers:
                    victim = rng.choice(workers)
            try:
                os.kill(victim, 9)  # SIGKILL: no cleanup, the real thing
                record.update(killed=True, victim=victim)
                killed += 1
            except ProcessLookupError:
                pass  # finished (or worker exited) before the kill landed
        proc.join(grace)
        if proc.is_alive():
            proc.kill()
            proc.join(5.0)
            record["exitcode"] = "hung"
            attempts.append(record)
            error = f"attempt {attempt} hung past {grace:g}s and was killed"
            break
        record["exitcode"] = proc.exitcode
        attempts.append(record)
        if result_path.exists():
            stats_dict = json.loads(result_path.read_text())
            break
        if not record["killed"] and kill_target == "process":
            # A clean (unkilled) checkpoint attempt must succeed.
            error = f"attempt {attempt} failed (exit {proc.exitcode}) without a kill"
            break
    else:
        error = f"no attempt completed within {kills + 1} tries"
    if stats_dict is None and error is None:
        error = "run never produced a result"
    return {
        "label": label,
        "kill_target": kill_target,
        "kills_requested": kills,
        "kills_delivered": killed,
        "delays": [round(d, 4) for d in delays],
        "attempts": attempts,
        "snapshots": [p.name for p in sorted(snap_dir.glob("snap-*.json"))],
        "stats": stats_dict,
        "error": error,
    }


def chaos_points(
    *,
    procs: int = 16,
    protocols: Sequence[str] = ("fullmap", "limitless"),
    workloads: Sequence[str] = ("weather",),
    shards: Sequence[int] = (1, 2),
    iters: int = 2,
    pointers: int = 4,
    ts: int = 50,
) -> list[tuple[str, AlewifeConfig, WorkloadSpec]]:
    """The default campaign grid: workload × protocol × shard count."""
    from ..faults.campaign import workload_spec

    points = []
    for wname in workloads:
        spec = workload_spec(wname, procs, iters)
        for protocol in protocols:
            for k in shards:
                config = AlewifeConfig(
                    n_procs=procs,
                    protocol=protocol,
                    pointers=pointers,
                    ts=ts,
                    shards=k,
                )
                points.append((f"{protocol}/{wname}-K{k}", config, spec))
    return points


def run_chaos_campaign(
    points: Sequence[tuple[str, AlewifeConfig, WorkloadSpec]],
    *,
    kills: int = 2,
    seed: int = 0,
    every: int = 400,
    kill_target: str = "process",
    workdir: Path | str,
    kill_window: tuple[float, float] = (0.05, 0.4),
    out: Path | str | None = "BENCH_process_chaos.json",
    echo: Callable[[str], None] = print,
) -> dict:
    """Run the process-chaos grid; every point must recover to a
    zero-chaos baseline computed fresh in this process (total equality
    of ``MachineStats.to_dict()``)."""
    if "fork" not in get_all_start_methods():  # pragma: no cover
        raise RuntimeError("process chaos needs the fork start method")
    echo(
        f"repro faults --process-chaos: {len(points)} points, "
        f"{kills} kill(s) each at seeded times (seed {seed}, "
        f"target {kill_target})"
    )
    start = time.perf_counter()
    rows: list[dict] = []
    for label, config, spec in points:
        target = kill_target
        if target == "worker" and config.shards <= 1:
            target = "process"  # serial points have no workers to kill
        # JSON round-trip the baseline so tuple-vs-list artifacts of the
        # result file cannot mask (or fake) a real divergence.
        golden = json.loads(
            json.dumps(
                run_experiment(config, spec.build(), shard_workers=1).to_dict()
            )
        )
        row = run_chaos_point(
            label,
            config,
            spec,
            kills=kills,
            seed=seed,
            workdir=Path(workdir),
            every=every,
            kill_target=target,
            kill_window=kill_window,
        )
        row["golden_cycles"] = golden["cycles"]
        # shard_meta holds driver-efficiency artifacts (windows, handoff
        # bytes, worker count) that legitimately differ between the forked
        # and in-process drivers; everything else must match exactly.
        recovered = (
            None if row["stats"] is None else dict(row["stats"], shard_meta=None)
        )
        row["recovered"] = (
            recovered is not None and recovered == dict(golden, shard_meta=None)
        )
        if row["stats"] is not None and not row["recovered"]:
            row["error"] = row["error"] or (
                "recovered stats differ from the zero-chaos baseline"
            )
        status = "recovered" if row["recovered"] else f"FAILED ({row['error']})"
        echo(
            f"  {label:28s} {row['kills_delivered']} kill(s), "
            f"{len(row['attempts'])} attempt(s): {status}"
        )
        row.pop("stats", None)  # full stats are bulky; the verdict remains
        rows.append(row)
    wall = time.perf_counter() - start
    survived = sum(r["recovered"] for r in rows)
    echo(
        f"\n{survived}/{len(rows)} chaos points recovered bit-identically "
        f"in {wall:.1f}s wall"
    )
    artifact = {
        "suite": "process_chaos",
        "kills": kills,
        "seed": seed,
        "every": every,
        "kill_target": kill_target,
        "wall_seconds": round(wall, 3),
        "summary": {
            "points": len(rows),
            "recovered": survived,
            "failed": len(rows) - survived,
        },
        "points": rows,
    }
    if out:
        Path(out).write_text(json.dumps(artifact, indent=2))
        echo(f"wrote {out}")
    return artifact
