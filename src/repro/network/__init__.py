"""Interconnection network: packets, topologies, fabric, IPI interface."""

from .fabric import IdealNetwork, Network, NetworkStats, WormholeNetwork
from .interface import IpiQueueOverflow, NetworkInterface
from .packet import (
    CACHE_TO_MEMORY,
    DATA_BEARING_OPCODES,
    MEMORY_TO_CACHE,
    PROTOCOL_OPCODES,
    Packet,
    interrupt_packet,
    protocol_packet,
)
from .topology import Crossbar, Mesh2D, Omega, Topology, Torus2D, make_topology

__all__ = [
    "CACHE_TO_MEMORY",
    "Crossbar",
    "DATA_BEARING_OPCODES",
    "IdealNetwork",
    "IpiQueueOverflow",
    "MEMORY_TO_CACHE",
    "Mesh2D",
    "Network",
    "NetworkInterface",
    "NetworkStats",
    "Omega",
    "PROTOCOL_OPCODES",
    "Packet",
    "Topology",
    "Torus2D",
    "WormholeNetwork",
    "interrupt_packet",
    "make_topology",
    "protocol_packet",
]
