"""Interconnect topologies and deterministic routing.

Alewife uses a 2-D mesh with dimension-ordered wormhole routing; ASIM's
network module can also model Omega (multistage) interconnects.  We provide
both, plus a torus and a zero-hop crossbar used for ablations.

A topology's job is purely structural: map (src, dst) to an ordered list of
directed *link ids*.  The fabric layers timing and contention on top.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Sequence

LinkId = Hashable


class Topology:
    """Structural interconnect: nodes and routes between them."""

    n_nodes: int

    def route(self, src: int, dst: int) -> list[LinkId]:
        """Ordered directed links a packet traverses from src to dst."""
        raise NotImplementedError

    def hops(self, src: int, dst: int) -> int:
        return len(self.route(src, dst))

    def average_distance(self) -> float:
        """Mean hop count over all ordered pairs (src != dst)."""
        total = 0
        pairs = 0
        for s in range(self.n_nodes):
            for d in range(self.n_nodes):
                if s != d:
                    total += self.hops(s, d)
                    pairs += 1
        return total / pairs if pairs else 0.0

    def check_node(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range 0..{self.n_nodes - 1}")


@dataclass(frozen=True)
class _MeshGeometry:
    width: int
    height: int

    def coords(self, node: int) -> tuple[int, int]:
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        return y * self.width + x


class Mesh2D(Topology):
    """2-D mesh with dimension-ordered (X then Y) routing.

    Link ids are ``(node, direction)`` tuples where direction is one of
    ``"E" | "W" | "N" | "S"`` — each physical channel is unidirectional,
    as in a wormhole-routed mesh.
    """

    DIRECTIONS = ("E", "W", "N", "S")

    def __init__(self, width: int, height: int | None = None) -> None:
        if height is None:
            height = width
        if width < 1 or height < 1:
            raise ValueError("mesh dimensions must be positive")
        self.geometry = _MeshGeometry(width, height)
        self.n_nodes = width * height

    @classmethod
    def square_for(cls, n_nodes: int) -> "Mesh2D":
        """Smallest near-square mesh holding ``n_nodes`` (exact fit only)."""
        side = int(math.isqrt(n_nodes))
        if side * side == n_nodes:
            return cls(side, side)
        # fall back to a W x H factorization closest to square
        for w in range(side, 0, -1):
            if n_nodes % w == 0:
                return cls(w, n_nodes // w)
        raise ValueError(f"cannot factor {n_nodes} into a mesh")

    def route(self, src: int, dst: int) -> list[LinkId]:
        self.check_node(src)
        self.check_node(dst)
        x0, y0 = self.geometry.coords(src)
        x1, y1 = self.geometry.coords(dst)
        links: list[LinkId] = []
        x, y = x0, y0
        while x != x1:  # X dimension first
            if x < x1:
                links.append((self.geometry.node_at(x, y), "E"))
                x += 1
            else:
                links.append((self.geometry.node_at(x, y), "W"))
                x -= 1
        while y != y1:  # then Y
            if y < y1:
                links.append((self.geometry.node_at(x, y), "S"))
                y += 1
            else:
                links.append((self.geometry.node_at(x, y), "N"))
                y -= 1
        return links


class Torus2D(Mesh2D):
    """2-D torus: dimension-ordered routing with wraparound shortcuts."""

    def route(self, src: int, dst: int) -> list[LinkId]:
        self.check_node(src)
        self.check_node(dst)
        width = self.geometry.width
        height = self.geometry.height
        x0, y0 = self.geometry.coords(src)
        x1, y1 = self.geometry.coords(dst)
        links: list[LinkId] = []

        def steps(frm: int, to: int, size: int) -> tuple[int, int]:
            """(count, direction) along a ring; +1 means increasing index."""
            forward = (to - frm) % size
            backward = (frm - to) % size
            if forward <= backward:
                return forward, 1
            return backward, -1

        count, sign = steps(x0, x1, width)
        x, y = x0, y0
        for _ in range(count):
            links.append((self.geometry.node_at(x, y), "E" if sign > 0 else "W"))
            x = (x + sign) % width
        count, sign = steps(y0, y1, height)
        for _ in range(count):
            links.append((self.geometry.node_at(x, y), "S" if sign > 0 else "N"))
            y = (y + sign) % height
        return links


class Omega(Topology):
    """Omega (multistage shuffle-exchange) network for N = 2^k nodes.

    Packets traverse ``k`` switch stages; the link id at stage ``s`` is
    ``("omega", s, switch_input)``.  Routing is destination-tag: at stage
    ``s`` the packet exits on the port given by destination bit ``k-1-s``.
    """

    def __init__(self, n_nodes: int) -> None:
        k = n_nodes.bit_length() - 1
        if n_nodes < 2 or (1 << k) != n_nodes:
            raise ValueError("Omega network requires a power-of-two node count")
        self.n_nodes = n_nodes
        self.stages = k

    @staticmethod
    def _shuffle(value: int, k: int) -> int:
        """Perfect shuffle: rotate the k-bit address left by one."""
        msb = (value >> (k - 1)) & 1
        return ((value << 1) | msb) & ((1 << k) - 1)

    def route(self, src: int, dst: int) -> list[LinkId]:
        self.check_node(src)
        self.check_node(dst)
        links: list[LinkId] = []
        current = src
        for stage in range(self.stages):
            current = self._shuffle(current, self.stages)
            # Exchange: set the low bit to the routing bit of dst.
            bit = (dst >> (self.stages - 1 - stage)) & 1
            current = (current & ~1) | bit
            links.append(("omega", stage, current))
        return links


class Crossbar(Topology):
    """Full crossbar: one dedicated link per ordered pair (no contention
    between distinct pairs).  Used for ideal-network ablations."""

    def __init__(self, n_nodes: int) -> None:
        if n_nodes < 1:
            raise ValueError("need at least one node")
        self.n_nodes = n_nodes

    def route(self, src: int, dst: int) -> list[LinkId]:
        self.check_node(src)
        self.check_node(dst)
        if src == dst:
            return []
        return [("xbar", src, dst)]


def make_topology(kind: str, n_nodes: int) -> Topology:
    """Factory used by machine configuration."""
    kind = kind.lower()
    if kind == "mesh":
        return Mesh2D.square_for(n_nodes)
    if kind == "torus":
        mesh = Mesh2D.square_for(n_nodes)
        return Torus2D(mesh.geometry.width, mesh.geometry.height)
    if kind == "omega":
        return Omega(n_nodes)
    if kind == "crossbar":
        return Crossbar(n_nodes)
    raise ValueError(f"unknown topology {kind!r}")
