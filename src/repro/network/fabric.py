"""Network fabric: timing and contention on top of a topology.

The model approximates wormhole routing: a packet's head advances one router
per ``hop_latency`` cycles while each traversed link stays occupied for the
packet's serialization time (its length in words times ``cycles_per_word``).
A packet arriving at a busy link waits until the link frees — this is what
produces the hot-spot serialization that dominates the paper's Weather
results (Figure 8).

Because links are reserved in event order and reservations are monotone,
two packets between the same (src, dst) pair are delivered in the order
they were sent, matching a deterministic dimension-ordered wormhole mesh.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..sim.kernel import Simulator
from .packet import Packet
from .topology import LinkId, Topology

Handler = Callable[[Packet], None]


@dataclass
class NetworkStats:
    """Aggregate traffic accounting."""

    packets: int = 0
    words: int = 0
    hops: int = 0
    total_latency: int = 0
    contention_cycles: int = 0
    per_opcode: dict[str, int] = field(default_factory=dict)

    def record(
        self,
        packet: Packet,
        hops: int,
        latency: int,
        waited: int,
        words: int | None = None,
    ) -> None:
        self.packets += 1
        # Senders that already computed the packet length (for serialization
        # timing) pass it in so the property is not evaluated twice.
        self.words += packet.length_words if words is None else words
        self.hops += hops
        self.total_latency += latency
        self.contention_cycles += waited
        self.per_opcode[packet.opcode] = self.per_opcode.get(packet.opcode, 0) + 1

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.packets if self.packets else 0.0


class Network:
    """Base class: attach per-node receive handlers and send packets."""

    def __init__(self, sim: Simulator, n_nodes: int) -> None:
        self.sim = sim
        self.n_nodes = n_nodes
        # Indexed by node id: a list beats a dict lookup on the per-packet
        # delivery path, and node ids are dense by construction.
        self._handlers: list[Handler | None] = [None] * n_nodes
        self.stats = NetworkStats()
        self.in_flight = 0
        # Installed by repro.faults.FaultInjector when any fault rate is
        # non-zero; None keeps delivery on the zero-overhead direct path.
        self.fault_injector = None
        # Bind once: delivery schedules this method with the packet as the
        # event argument, so the hot path allocates no lambda per packet.
        self._on_deliver = self._deliver

    def attach(self, node_id: int, handler: Handler) -> None:
        """Register the receive handler for ``node_id``."""
        if self._handlers[node_id] is not None:
            raise ValueError(f"node {node_id} already attached")
        self._handlers[node_id] = handler

    def send(self, packet: Packet) -> None:
        raise NotImplementedError

    def _deliver_at(self, time: int, packet: Packet) -> None:
        if self.fault_injector is not None:
            self.fault_injector.admit(time, packet)
            return
        self.in_flight += 1
        self.sim.post(time, self._on_deliver, packet)

    def _deliver(self, packet: Packet) -> None:
        self.in_flight -= 1
        handler = self._handlers[packet.dst]
        if handler is None:
            raise KeyError(f"no handler attached for node {packet.dst}")
        handler(packet)


class WormholeNetwork(Network):
    """Contended dimension-ordered wormhole approximation."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        *,
        hop_latency: int = 1,
        cycles_per_word: int = 1,
        injection_latency: int = 1,
    ) -> None:
        super().__init__(sim, topology.n_nodes)
        self.topology = topology
        self.hop_latency = hop_latency
        self.cycles_per_word = cycles_per_word
        self.injection_latency = injection_latency
        self._link_free_at: dict[LinkId, int] = {}
        self.link_busy_cycles: dict[LinkId, int] = {}
        # Routes are a pure function of the (static) topology; memoize them
        # per (src, dst) so steady-state sends never re-walk the route.
        self._route_cache: dict[tuple[int, int], list[LinkId]] = {}

    def send(self, packet: Packet) -> None:
        now = self.sim.now
        packet.sent_at = now
        src = packet.src
        dst = packet.dst
        if src == dst:
            # Local traffic stays inside the node (cache <-> memory
            # controller over the node bus) and never enters the mesh.
            self.stats.record(packet, 0, 2, 0)
            self._deliver_at(now + 2, packet)
            return
        path = self._route_cache.get((src, dst))
        if path is None:
            path = self.topology.route(src, dst)
            self._route_cache[(src, dst)] = path
        words = packet.length_words
        serialization = words * self.cycles_per_word
        head = now + self.injection_latency
        waited = 0
        link_free_at = self._link_free_at
        link_busy = self.link_busy_cycles
        hop_latency = self.hop_latency
        for link in path:
            start = link_free_at.get(link, 0)
            if start < head:
                start = head
            else:
                waited += start - head
            link_free_at[link] = start + serialization
            link_busy[link] = link_busy.get(link, 0) + serialization
            head = start + hop_latency
        arrival = head + serialization  # tail drains into the destination
        # stats.record, inlined: one packet per call makes the method
        # dispatch and re-derived packet length measurable at 64 procs.
        stats = self.stats
        stats.packets += 1
        stats.words += words
        stats.hops += len(path)
        stats.total_latency += arrival - now
        stats.contention_cycles += waited
        per_opcode = stats.per_opcode
        opcode = packet.opcode
        per_opcode[opcode] = per_opcode.get(opcode, 0) + 1
        self._deliver_at(arrival, packet)

    def hottest_links(self, top: int = 5) -> list[tuple[LinkId, int]]:
        """Links ranked by cumulative busy cycles (hot-spot diagnosis)."""
        ranked = sorted(
            self.link_busy_cycles.items(), key=lambda kv: kv[1], reverse=True
        )
        return ranked[:top]


class IdealNetwork(Network):
    """Uncontended network with a fixed latency plus serialization.

    Used for ablations: it removes the hot-spot queueing effects while
    keeping message counts identical, isolating protocol behaviour from
    network behaviour.
    """

    def __init__(
        self,
        sim: Simulator,
        n_nodes: int,
        *,
        latency: int = 8,
        cycles_per_word: int = 1,
    ) -> None:
        super().__init__(sim, n_nodes)
        self.latency = latency
        self.cycles_per_word = cycles_per_word
        # Per-(src,dst) FIFO clamp keeps ordering identical to the mesh.
        self._pair_last: dict[tuple[int, int], int] = {}

    def send(self, packet: Packet) -> None:
        now = self.sim.now
        packet.sent_at = now
        words = packet.length_words
        if packet.src == packet.dst:
            # Local traffic never enters the network: zero hops, matching
            # WormholeNetwork so mean-hop stats are comparable across
            # fabrics in the network ablations.
            arrival = now + 1
            hops = 0
        else:
            arrival = now + self.latency + words * self.cycles_per_word
            hops = 1
        key = (packet.src, packet.dst)
        arrival = max(arrival, self._pair_last.get(key, 0))
        self._pair_last[key] = arrival
        stats = self.stats
        stats.packets += 1
        stats.words += words
        stats.hops += hops
        stats.total_latency += arrival - now
        per_opcode = stats.per_opcode
        opcode = packet.opcode
        per_opcode[opcode] = per_opcode.get(opcode, 0) + 1
        self._deliver_at(arrival, packet)
