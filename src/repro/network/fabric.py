"""Network fabric: timing and contention on top of a topology.

The model approximates wormhole routing: a packet's head advances one router
per ``hop_latency`` cycles while each traversed link stays occupied for the
packet's serialization time (its length in words times ``cycles_per_word``).
A packet arriving at a busy link waits until the link frees — this is what
produces the hot-spot serialization that dominates the paper's Weather
results (Figure 8).

Because links are reserved in event order and reservations are monotone,
two packets between the same (src, dst) pair are delivered in the order
they were sent, matching a deterministic dimension-ordered wormhole mesh.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from operator import itemgetter
from typing import Callable

from ..sim.kernel import Simulator
from .packet import DISABLED_POOL, OP_NAMES, Op, Packet
from .topology import LinkId, Topology

Handler = Callable[[Packet], None]


@dataclass(slots=True)
class NetworkStats:
    """Aggregate traffic accounting."""

    packets: int = 0
    words: int = 0
    hops: int = 0
    total_latency: int = 0
    contention_cycles: int = 0
    per_opcode: dict[str, int] = field(default_factory=dict)

    def record(
        self,
        packet: Packet,
        hops: int,
        latency: int,
        waited: int,
        words: int | None = None,
    ) -> None:
        self.packets += 1
        # Senders that already computed the packet length (for serialization
        # timing) pass it in so the property is not evaluated twice.
        self.words += packet.length_words if words is None else words
        self.hops += hops
        self.total_latency += latency
        self.contention_cycles += waited
        # per_opcode keys stay *names* (interned opcodes map back through
        # OP_NAMES) so harvested stats and their JSON form are unchanged.
        opcode = packet.opcode
        key = OP_NAMES[opcode] if opcode.__class__ is Op else opcode
        self.per_opcode[key] = self.per_opcode.get(key, 0) + 1

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.packets if self.packets else 0.0

    def merge(self, other: "NetworkStats") -> None:
        """Fold another shard's traffic accounting into this one.

        Every contribution (a packet's send-side counts, its delivery-side
        hop/latency/contention counts) happens on exactly one shard, so
        summing the per-shard structures reproduces the serial totals.
        """
        self.packets += other.packets
        self.words += other.words
        self.hops += other.hops
        self.total_latency += other.total_latency
        self.contention_cycles += other.contention_cycles
        for opcode, count in other.per_opcode.items():
            self.per_opcode[opcode] = self.per_opcode.get(opcode, 0) + count


class Network:
    """Base class: attach per-node receive handlers and send packets."""

    def __init__(self, sim: Simulator, n_nodes: int) -> None:
        self.sim = sim
        self.n_nodes = n_nodes
        # Indexed by node id: a list beats a dict lookup on the per-packet
        # delivery path, and node ids are dense by construction.
        self._handlers: list[Handler | None] = [None] * n_nodes
        self.stats = NetworkStats()
        self.in_flight = 0
        # Installed by repro.faults.FaultInjector when any fault rate is
        # non-zero; None keeps delivery on the zero-overhead direct path.
        self.fault_injector = None
        # Replaced by the machine when packet pooling is enabled; fault
        # paths that drop or duplicate packets go through it.
        self.pool = DISABLED_POOL
        # Bind once: delivery schedules this method with the packet as the
        # event argument, so the hot path allocates no lambda per packet.
        self._on_deliver = self._deliver

    def attach(self, node_id: int, handler: Handler) -> None:
        """Register the receive handler for ``node_id``."""
        if self._handlers[node_id] is not None:
            raise ValueError(f"node {node_id} already attached")
        self._handlers[node_id] = handler

    def send(self, packet: Packet) -> None:
        raise NotImplementedError

    def _deliver_at(self, time: int, packet: Packet) -> None:
        if self.fault_injector is not None:
            self.fault_injector.admit(time, packet)
            return
        self.in_flight += 1
        self.sim.post(time, self._on_deliver, packet)

    def _deliver(self, packet: Packet) -> None:
        self.in_flight -= 1
        handler = self._handlers[packet.dst]
        if handler is None:
            raise KeyError(f"no handler attached for node {packet.dst}")
        handler(packet)


class WormholeNetwork(Network):
    """Contended dimension-ordered wormhole approximation."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        *,
        hop_latency: int = 1,
        cycles_per_word: int = 1,
        injection_latency: int = 1,
    ) -> None:
        super().__init__(sim, topology.n_nodes)
        self.topology = topology
        self.hop_latency = hop_latency
        self.cycles_per_word = cycles_per_word
        self.injection_latency = injection_latency
        # Links are interned to dense integers the first time a route
        # touches them, so the per-hop reservation loop indexes flat lists
        # instead of hashing (node, direction) tuples.
        self._link_ids: dict[LinkId, int] = {}
        self._link_names: list[LinkId] = []
        self._link_free_at: list[int] = []
        self._link_busy: list[int] = []
        # Routes are a pure function of the (static) topology; memoize them
        # per (src, dst) — as interned link indices — so steady-state sends
        # never re-walk the route.
        self._route_cache: dict[tuple[int, int], list[int]] = {}

    def _intern_route(self, src: int, dst: int) -> list[int]:
        link_ids = self._link_ids
        path: list[int] = []
        for link in self.topology.route(src, dst):
            idx = link_ids.get(link)
            if idx is None:
                idx = len(self._link_names)
                link_ids[link] = idx
                self._link_names.append(link)
                self._link_free_at.append(0)
                self._link_busy.append(0)
            path.append(idx)
        self._route_cache[(src, dst)] = path
        return path

    @property
    def link_busy_cycles(self) -> dict[LinkId, int]:
        """Cumulative busy cycles per link (reporting view)."""
        names = self._link_names
        return {
            names[idx]: busy
            for idx, busy in enumerate(self._link_busy)
            if busy
        }

    def send(self, packet: Packet) -> None:
        now = self.sim.now
        packet.sent_at = now
        src = packet.src
        dst = packet.dst
        # length_words, inlined (header + address operand = 2): the
        # property call is measurable at steady-state send rates.
        data = packet.data
        words = 2 + len(packet.meta) + (len(data.words) if data is not None else 0)
        if src == dst:
            # Local traffic stays inside the node (cache <-> memory
            # controller over the node bus) and never enters the mesh.
            # stats.record, inlined: single-node-homed workloads make this
            # the fabric's hottest branch.
            stats = self.stats
            stats.packets += 1
            stats.words += words
            stats.total_latency += 2
            per_opcode = stats.per_opcode
            opcode = packet.opcode
            key = OP_NAMES[opcode] if opcode.__class__ is Op else opcode
            per_opcode[key] = per_opcode.get(key, 0) + 1
            # _deliver_at, inlined for the same reason.
            if self.fault_injector is not None:
                self.fault_injector.admit(now + 2, packet)
                return
            self.in_flight += 1
            self.sim.post(now + 2, self._on_deliver, packet)
            return
        path = self._route_cache.get((src, dst))
        if path is None:
            path = self._intern_route(src, dst)
        serialization = words * self.cycles_per_word
        head = now + self.injection_latency
        waited = 0
        link_free_at = self._link_free_at
        link_busy = self._link_busy
        hop_latency = self.hop_latency
        for link in path:
            start = link_free_at[link]
            if start < head:
                start = head
            else:
                waited += start - head
            link_free_at[link] = start + serialization
            link_busy[link] += serialization
            head = start + hop_latency
        arrival = head + serialization  # tail drains into the destination
        # stats.record, inlined: one packet per call makes the method
        # dispatch and re-derived packet length measurable at 64 procs.
        stats = self.stats
        stats.packets += 1
        stats.words += words
        stats.hops += len(path)
        stats.total_latency += arrival - now
        stats.contention_cycles += waited
        per_opcode = stats.per_opcode
        opcode = packet.opcode
        key = OP_NAMES[opcode] if opcode.__class__ is Op else opcode
        per_opcode[key] = per_opcode.get(key, 0) + 1
        self._deliver_at(arrival, packet)

    def hottest_links(self, top: int = 5) -> list[tuple[LinkId, int]]:
        """Links ranked by cumulative busy cycles (hot-spot diagnosis)."""
        ranked = sorted(
            self.link_busy_cycles.items(), key=lambda kv: kv[1], reverse=True
        )
        return ranked[:top]


class IdealNetwork(Network):
    """Uncontended network with a fixed latency plus serialization.

    Used for ablations: it removes the hot-spot queueing effects while
    keeping message counts identical, isolating protocol behaviour from
    network behaviour.
    """

    def __init__(
        self,
        sim: Simulator,
        n_nodes: int,
        *,
        latency: int = 8,
        cycles_per_word: int = 1,
    ) -> None:
        super().__init__(sim, n_nodes)
        self.latency = latency
        self.cycles_per_word = cycles_per_word
        # Per-(src,dst) FIFO clamp keeps ordering identical to the mesh.
        self._pair_last: dict[tuple[int, int], int] = {}

    def send(self, packet: Packet) -> None:
        now = self.sim.now
        packet.sent_at = now
        words = packet.length_words
        if packet.src == packet.dst:
            # Local traffic never enters the network: zero hops, matching
            # WormholeNetwork so mean-hop stats are comparable across
            # fabrics in the network ablations.
            arrival = now + 1
            hops = 0
        else:
            arrival = now + self.latency + words * self.cycles_per_word
            hops = 1
        key = (packet.src, packet.dst)
        arrival = max(arrival, self._pair_last.get(key, 0))
        self._pair_last[key] = arrival
        stats = self.stats
        stats.packets += 1
        stats.words += words
        stats.hops += hops
        stats.total_latency += arrival - now
        per_opcode = stats.per_opcode
        opcode = packet.opcode
        key = OP_NAMES[opcode] if opcode.__class__ is Op else opcode
        per_opcode[key] = per_opcode.get(key, 0) + 1
        self._deliver_at(arrival, packet)


# ----------------------------------------------------------------------
# Staged (shardable) fabrics
# ----------------------------------------------------------------------
#
# The atomic fabrics above reserve a packet's whole path at send time, so
# link arbitration order equals global send order — a zero-lookahead
# coupling that cannot be partitioned without changing results.  The
# staged fabrics arbitrate each link *when the packet's head reaches it*:
# requests land in a per-(link, cycle) bucket and the bucket drains at
# that cycle in canonical (src, per-source send seq) order.  All state a
# cycle's events touch is then either per-node, per-link, or canonically
# sorted, so the simulated outcome is identical no matter how the mesh is
# partitioned into shards — including the K=1 "shards disabled" case,
# which is the serial baseline the equivalence goldens pin.
#
# Per-packet arithmetic is unchanged (start = max(link_free, head);
# head' = start + hop; arrival = last start + hop + serialization); only
# *tie-breaking between contending packets* differs from the atomic
# fabric, so staged cycle counts are close to — but not bit-identical
# with — atomic ones.  ``--shards 1`` therefore keeps the atomic fabric
# and the historical goldens; sharded runs compare staged-vs-staged.

#: wire formats for cross-shard handoffs: a walk continuing on a foreign
#: link, and a finished packet delivered to a foreign node's inbox
_HANDOFF_WALK = "w"
_HANDOFF_DELIVERY = "d"

#: no packet is shorter than header + address operand
_MIN_WORDS = 2

_walk_sort_key = itemgetter(4)
_inbox_sort_key = itemgetter(0)


class _ShardedDeliveryMixin:
    """Per-node delivery inboxes + handoff plumbing shared by staged nets."""

    def _init_sharding(self, shard_id: int, shard_of) -> None:
        self.shard_id = shard_id
        self._shard_of = shard_of if shard_of is not None else (lambda node: 0)
        #: staged-mode fault filter (repro.faults.StagedFaultGate) or None
        self.fault_gate = None
        #: (dest_shard, handoff) tuples accumulated during the window
        self.outbox: list[tuple[int, tuple]] = []
        self.handoffs_out = 0
        self.handoffs_in = 0
        self._send_seq = [0] * self.n_nodes
        self._node_buckets: dict[tuple[int, int], list[tuple]] = {}
        self._drain_node_cb = self._drain_node
        #: influence tracking (the adaptive lookahead's exact floors) is
        #: only paid for by genuinely sharded fabrics; the wormhole fabric
        #: turns it on after computing its distance tables
        self._track = False
        self._infl: list[int] = []
        self._delta: list[int] = []

    def _inbox(self, node: int, time: int, key: tuple, packet: Packet) -> None:
        gate = self.fault_gate
        if gate is None:
            self._inbox_raw(node, time, key, packet)
            return
        for when, subkey, copy in gate.filter(time, key, packet):
            self._inbox_raw(node, when, subkey, copy)

    def _inbox_raw(self, node: int, time: int, key: tuple, packet: Packet) -> None:
        self.in_flight += 1
        bucket_key = (node, time)
        bucket = self._node_buckets.get(bucket_key)
        if bucket is None:
            self._node_buckets[bucket_key] = [(key, packet)]
            self.sim.post_front(time, self._drain_node_cb, bucket_key)
            if self._track:
                # One floor per inbox bucket: whatever the handler does at
                # ``time``, its earliest cross-shard consequence is the
                # node's static distance-to-foreign floor away.
                heapq.heappush(self._infl, time + self._delta[node])
        else:
            bucket.append((key, packet))

    def _drain_node(self, bucket_key: tuple[int, int]) -> None:
        entries = self._node_buckets.pop(bucket_key)
        if len(entries) > 1:
            entries.sort(key=_inbox_sort_key)
        handler = self._handlers[bucket_key[0]]
        if handler is None:
            raise KeyError(f"no handler attached for node {bucket_key[0]}")
        for _key, packet in entries:
            self.in_flight -= 1
            handler(packet)

    def take_outbox(self) -> list[tuple[int, tuple]]:
        """Drain and return this window's cross-shard handoffs."""
        out = self.outbox
        self.outbox = []
        return out


class StagedWormholeNetwork(_ShardedDeliveryMixin, Network):
    """Dimension-ordered wormhole fabric with head-arrival arbitration."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        *,
        hop_latency: int = 1,
        cycles_per_word: int = 1,
        injection_latency: int = 1,
        shard_id: int = 0,
        shard_of=None,
        lookahead: str = "adaptive",
    ) -> None:
        if hop_latency < 1 or injection_latency < 1:
            # Strictly-future link arbitration is what guarantees every
            # same-cycle request is bucketed before its drain runs.
            raise ValueError("staged fabric requires hop/injection latency >= 1")
        super().__init__(sim, topology.n_nodes)
        self.topology = topology
        self.hop_latency = hop_latency
        self.cycles_per_word = cycles_per_word
        self.injection_latency = injection_latency
        self._init_sharding(shard_id, shard_of)
        self._link_free: dict[LinkId, int] = {}
        self.link_busy_cycles: dict[LinkId, int] = {}
        self._route_cache: dict[tuple[int, int], list[LinkId]] = {}
        #: pending requests per (link, head-arrival cycle); drained at that
        #: cycle in canonical (src, send seq) order
        self._link_buckets: dict[tuple[LinkId, int], list[list]] = {}
        #: earliest a fresh local event can emit a cross-shard handoff:
        #: a send reaches its first drain after injection_latency, an
        #: in-flight walk after hop_latency; either way the handoff's
        #: target time is a further hop_latency out
        self.min_cross_gen = min(injection_latency, hop_latency) + hop_latency
        self._drain_link_cb = self._drain_link
        #: per-(src, dst) arrays giving, for a walk enqueued at route
        #: position p, the minimum cycles until that walk can produce a
        #: cross-shard effect (next foreign link, foreign delivery, or a
        #: local delivery's own downstream cascade)
        self._floor_cache: dict[tuple[int, int], list[int]] = {}
        self._track = shard_of is not None
        self._adaptive = self._track and lookahead == "adaptive"
        if self._track:
            self._delta = self._compute_deltas()
            owned = [
                d
                for node, d in enumerate(self._delta)
                if shard_of(node) == shard_id
            ]
            # Floor under any *future* local event's first cross-shard
            # consequence; never smaller than the PR-4 constant.
            self._event_floor = max(self.min_cross_gen, min(owned, default=0))
        else:
            self._event_floor = self.min_cross_gen

    def _compute_deltas(self) -> list[int]:
        """Per-node static floors: cycles from "node does something" to the
        earliest possible cross-shard effect of that something.

        For the row-band mesh/torus partitions the floor is computed per
        row from representative same-column routes: crossing a foreign
        link after q hops costs ``injection + q*hop`` and delivering to a
        foreign node after the full route costs the route plus minimum
        serialization.  Dimension-ordered X-then-Y routing keeps the X
        phase inside the sender's own row, so a same-column target
        minimizes over all destinations in its row.  The result is also a
        sound bound for *cascades*: the floor is 1-Lipschitz in row
        distance, so hopping one row closer to the boundary costs at
        least as much as the floor shrinks.
        """
        inj = self.injection_latency
        hop = self.hop_latency
        min_ser = _MIN_WORDS * self.cycles_per_word
        mine = self.shard_id
        shard_of = self._shard_of
        n = self.n_nodes
        generic = inj + hop  # sound for any partition of any topology

        def crossing(v: int, u: int) -> int:
            path = self.topology.route(v, u)
            for q in range(1, len(path)):
                if self._link_owner(path[q]) != mine:
                    return inj + q * hop
            return inj + len(path) * hop + min_ser

        geometry = getattr(self.topology, "geometry", None)
        if geometry is None:
            # Crossbar: one locally-sourced link per route, so the first
            # possible crossing is always the delivery itself.
            return [inj + hop + min_ser] * n
        width = geometry.width
        height = geometry.height
        rows_uniform = all(
            len({shard_of(geometry.node_at(x, r)) for x in range(width)}) == 1
            for r in range(height)
        )
        if not rows_uniform:
            return [generic] * n
        reps = [geometry.node_at(0, r) for r in range(height)]
        foreign = [r for r in range(height) if shard_of(reps[r]) != mine]
        row_floor = []
        for r in range(height):
            if not foreign or shard_of(reps[r]) != mine:
                row_floor.append(generic)  # never consulted for real traffic
            else:
                row_floor.append(min(crossing(reps[r], reps[f]) for f in foreign))
        return [row_floor[node // width] for node in range(n)]

    def _route_floors(self, src: int, dst: int, path: list[LinkId]) -> list[int]:
        """floor[p]: min cycles from an enqueue at route position p to the
        walk's earliest cross-shard effect (only queried for local links)."""
        mine = self.shard_id
        hop = self.hop_latency
        n = len(path)
        extra = _MIN_WORDS * self.cycles_per_word
        if self._shard_of(dst) == mine:
            extra += self._delta[dst]  # local delivery → downstream cascade
        floors = [0] * n
        ahead = None  # links from p to the nearest foreign link at/after p
        for p in range(n - 1, -1, -1):
            if self._link_owner(path[p]) != mine:
                ahead = 0
            elif ahead is not None:
                ahead += 1
            via_delivery = (n - p) * hop + extra
            if ahead is not None and ahead * hop < via_delivery:
                floors[p] = ahead * hop
            else:
                floors[p] = via_delivery
        return floors

    def _route(self, src: int, dst: int) -> list[LinkId]:
        path = self._route_cache.get((src, dst))
        if path is None:
            path = self.topology.route(src, dst)
            self._route_cache[(src, dst)] = path
        return path

    def _link_owner(self, link: LinkId) -> int:
        # Mesh/torus links are (node, direction); crossbar links are
        # ("xbar", src, dst).  Either way the sourcing node owns the link.
        return self._shard_of(link[1] if link[0] == "xbar" else link[0])

    def send(self, packet: Packet) -> None:
        now = self.sim.now
        packet.sent_at = now
        src = packet.src
        dst = packet.dst
        sseq = self._send_seq[src]
        self._send_seq[src] = sseq + 1
        words = packet.length_words
        stats = self.stats
        stats.packets += 1
        stats.words += words
        per_opcode = stats.per_opcode
        opcode = packet.opcode
        key = OP_NAMES[opcode] if opcode.__class__ is Op else opcode
        per_opcode[key] = per_opcode.get(key, 0) + 1
        if src == dst:
            stats.total_latency += 2
            self._inbox(src, now + 2, (src, sseq), packet)
            return
        path = self._route(src, dst)
        walk = [packet, 0, 0, words * self.cycles_per_word, (src, sseq)]
        # Dimension-ordered routes start on a link the sender's own node
        # sources, so the first enqueue is always shard-local.
        self._enqueue_link(path[0], now + self.injection_latency, walk)

    def _enqueue_link(self, link: LinkId, time: int, walk: list) -> None:
        owner = self._link_owner(link)
        if owner != self.shard_id:
            self.outbox.append(
                (owner, (_HANDOFF_WALK, link, time, walk[0], walk[1], walk[2], walk[4]))
            )
            self.handoffs_out += 1
            return
        bucket_key = (link, time)
        bucket = self._link_buckets.get(bucket_key)
        if bucket is None:
            self._link_buckets[bucket_key] = [walk]
            self.sim.post_front(time, self._drain_link_cb, bucket_key)
        else:
            bucket.append(walk)
        if self._track:
            packet = walk[0]
            pair = (packet.src, packet.dst)
            floors = self._floor_cache.get(pair)
            if floors is None:
                floors = self._route_floors(*pair, self._route(*pair))
                self._floor_cache[pair] = floors
            heapq.heappush(self._infl, time + floors[walk[1]])

    def _drain_link(self, bucket_key: tuple[LinkId, int]) -> None:
        link, time = bucket_key
        entries = self._link_buckets.pop(bucket_key)
        if len(entries) > 1:
            entries.sort(key=_walk_sort_key)
        free = self._link_free.get(link, 0)
        busy = 0
        hop = self.hop_latency
        for walk in entries:
            packet = walk[0]
            serialization = walk[3]
            start = free if free > time else time
            waited = walk[2] + (start - time)
            free = start + serialization
            busy += serialization
            head = start + hop
            path = self._route(packet.src, packet.dst)
            following = walk[1] + 1
            if following < len(path):
                walk[1] = following
                walk[2] = waited
                self._enqueue_link(path[following], head, walk)
                continue
            arrival = head + serialization  # tail drains into the node
            stats = self.stats
            stats.hops += len(path)
            stats.total_latency += arrival - packet.sent_at
            stats.contention_cycles += waited
            dst = packet.dst
            dst_shard = self._shard_of(dst)
            if dst_shard != self.shard_id:
                self.outbox.append(
                    (dst_shard, (_HANDOFF_DELIVERY, dst, arrival, packet, walk[4]))
                )
                self.handoffs_out += 1
            else:
                self._inbox(dst, arrival, walk[4], packet)
        self._link_free[link] = free
        self.link_busy_cycles[link] = self.link_busy_cycles.get(link, 0) + busy

    def receive_handoff(self, handoff: tuple) -> None:
        """Insert one inbound cross-shard handoff (between windows)."""
        self.handoffs_in += 1
        if handoff[0] == _HANDOFF_WALK:
            _kind, link, time, packet, index, waited, key = handoff
            serialization = packet.length_words * self.cycles_per_word
            self._enqueue_link(link, time, [packet, index, waited, serialization, key])
        else:
            _kind, dst, time, packet, key = handoff
            self._inbox(dst, time, key, packet)

    def cross_bound(self) -> int | None:
        """Earliest future time this shard can affect another shard.

        None means "never" (this shard is drained).  Valid only between
        windows, after inbound handoffs have been inserted.

        Two components, each a floor on a different source of handoffs:

        * the influence heap — every pending fabric bucket (link drain or
          node inbox) holds at least one live heap entry whose value
          floors that bucket's earliest cross-shard consequence, cascades
          included;
        * the next simulator event — anything *else* pending (processor
          steps, controller timers) can start a fresh send, whose first
          crossing is at least ``_event_floor`` away.  When every pending
          event IS a fabric bucket drain, the adaptive policy skips this
          term entirely; that is what opens windows of hundreds of cycles
          once the local compute phase has gone quiet.
        """
        heap = self._infl
        if heap:
            if not self._link_buckets and not self._node_buckets:
                # In-fabric influence requires in-fabric state; with both
                # bucket maps empty every heap entry is stale.
                heap.clear()
            else:
                now = self.sim.now
                # Entries at <= now are stale: bound() runs between
                # windows, so every remaining effect is strictly future.
                # (Popping them is also what guarantees windows advance.)
                while heap and heap[0] <= now:
                    heapq.heappop(heap)
        bound = heap[0] if heap else None
        t_next = self.sim.next_event_time()
        if t_next is not None:
            if self._adaptive:
                fabric_pending = len(self._link_buckets) + len(self._node_buckets)
                if self.sim.pending_events == fabric_pending:
                    return bound
                generated = t_next + self._event_floor
            else:
                generated = t_next + self.min_cross_gen
            if bound is None or generated < bound:
                bound = generated
        return bound

    def hottest_links(self, top: int = 5) -> list[tuple[LinkId, int]]:
        """Links ranked by cumulative busy cycles (hot-spot diagnosis)."""
        ranked = sorted(
            self.link_busy_cycles.items(), key=lambda kv: kv[1], reverse=True
        )
        return ranked[:top]


class StagedIdealNetwork(_ShardedDeliveryMixin, Network):
    """Shardable twin of :class:`IdealNetwork` (fixed latency, no links).

    Arrival times are computed at send (they depend only on the sender's
    own FIFO history), so the only staging needed is the canonical
    delivery inbox; lookahead is the full ideal latency plus the minimum
    packet serialization, which makes ideal-network shards very cheap to
    synchronize.
    """

    #: no packet is shorter than header + address operand
    _MIN_WORDS = 2

    def __init__(
        self,
        sim: Simulator,
        n_nodes: int,
        *,
        latency: int = 8,
        cycles_per_word: int = 1,
        shard_id: int = 0,
        shard_of=None,
    ) -> None:
        super().__init__(sim, n_nodes)
        self.latency = latency
        self.cycles_per_word = cycles_per_word
        self._init_sharding(shard_id, shard_of)
        self._pair_last: dict[tuple[int, int], int] = {}
        self.min_cross_gen = latency + self._MIN_WORDS * cycles_per_word

    def send(self, packet: Packet) -> None:
        now = self.sim.now
        packet.sent_at = now
        words = packet.length_words
        src = packet.src
        dst = packet.dst
        sseq = self._send_seq[src]
        self._send_seq[src] = sseq + 1
        if src == dst:
            arrival = now + 1
            hops = 0
        else:
            arrival = now + self.latency + words * self.cycles_per_word
            hops = 1
        pair = (src, dst)
        arrival = max(arrival, self._pair_last.get(pair, 0))
        self._pair_last[pair] = arrival
        stats = self.stats
        stats.packets += 1
        stats.words += words
        stats.hops += hops
        stats.total_latency += arrival - now
        per_opcode = stats.per_opcode
        opcode = packet.opcode
        key = OP_NAMES[opcode] if opcode.__class__ is Op else opcode
        per_opcode[key] = per_opcode.get(key, 0) + 1
        dst_shard = self._shard_of(dst)
        if dst_shard != self.shard_id:
            self.outbox.append(
                (dst_shard, (_HANDOFF_DELIVERY, dst, arrival, packet, (src, sseq)))
            )
            self.handoffs_out += 1
        else:
            self._inbox(dst, arrival, (src, sseq), packet)

    def receive_handoff(self, handoff: tuple) -> None:
        """Insert one inbound cross-shard delivery (between windows)."""
        self.handoffs_in += 1
        _kind, dst, time, packet, key = handoff
        self._inbox(dst, time, key, packet)

    def cross_bound(self) -> int | None:
        """Earliest future time this shard can affect another shard."""
        t_next = self.sim.next_event_time()
        if t_next is None:
            return None
        return t_next + self.min_cross_gen
