"""Interprocessor-Interrupt (IPI) network interface (paper §4.2).

Each node owns one interface.  Incoming protocol packets are normally
dispatched to the hardware controllers (memory side or cache side by opcode
direction).  The memory controller may instead *divert* a protocol packet
into the IPI input queue — that is the LimitLESS overflow path — which
raises an interrupt so the local processor's trap handler can consume the
packet with simple loads.  Interrupt-class packets (software-defined
messages) always go to the IPI queue.

The interface also lets software *launch* packets, which the LimitLESS trap
handler uses to source RDATA/INV traffic, exactly as §4.4 describes.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from ..sim.component import Component
from ..sim.kernel import Simulator
from ..stats.counters import Counters
from .fabric import Network
from .packet import (
    _LAST_CACHE_TO_MEMORY,
    DISABLED_POOL,
    Op,
    Packet,
    PacketPool,
    packet_crc,
)

TrapHandler = Callable[[], None]
PacketHandler = Callable[[Packet], None]


class IpiQueueOverflow(RuntimeError):
    """IPI input queue exceeded its backing capacity."""


class NetworkInterface(Component):
    """One node's connection to the interconnect, including IPI queues."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        network: Network,
        *,
        ipi_capacity: int = 64,
        counters: Counters | None = None,
        pool: PacketPool | None = None,
    ) -> None:
        super().__init__(sim, f"nic{node_id}")
        self.node_id = node_id
        self.network = network
        self.ipi_capacity = ipi_capacity
        #: recycles cache-bound packets once their handler returns
        self.pool = pool if pool is not None else DISABLED_POOL
        #: stamp/verify payload CRCs (enabled with fault injection; off by
        #: default so fault-free runs skip the checksum entirely)
        self.crc_enabled = False
        self.counters = counters if counters is not None else Counters()
        self._ipi_queue: deque[Packet] = deque()
        self._memory_handler: PacketHandler | None = None
        self._cache_handler: PacketHandler | None = None
        self._trap_handler: TrapHandler | None = None
        self.ipi_high_water = 0
        self.ipi_enqueued = 0
        self.packets_sent = 0
        self.packets_received = 0
        network.attach(node_id, self._receive)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def set_memory_handler(self, handler: PacketHandler) -> None:
        """Handler for cache→memory protocol packets homed here."""
        self._memory_handler = handler

    def set_cache_handler(self, handler: PacketHandler) -> None:
        """Handler for memory→cache protocol packets for this node."""
        self._cache_handler = handler

    def set_trap_handler(self, handler: TrapHandler) -> None:
        """Called (synchronously) whenever a packet enters the IPI queue."""
        self._trap_handler = handler

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------

    def send(self, packet: Packet) -> None:
        """Launch a packet into the network."""
        self.packets_sent += 1
        if self.crc_enabled and packet.data is not None:
            packet.crc = packet_crc(packet)
        self.network.send(packet)

    def trap_stall(self) -> int:
        """Injected stall cycles for one trap invocation on this node.

        Routes through the interface so the fault source sees *which*
        node is trapping: the atomic injector draws one global stream,
        but the staged (sharded) gate must scope the stream per node to
        stay shard-invariant.
        """
        injector = self.network.fault_injector
        if injector is None:
            return 0
        return injector.trap_stall(self.node_id)

    # ------------------------------------------------------------------
    # Reception and the IPI input queue
    # ------------------------------------------------------------------

    def _receive(self, packet: Packet) -> None:
        self.packets_received += 1
        if (
            self.crc_enabled
            and packet.crc is not None
            and packet_crc(packet) != packet.crc
        ):
            # Corrupted in flight: discard as a detected loss.  The
            # protocol's timeout/retransmission machinery recovers exactly
            # as it would from a drop.
            self.counters.bump("nic.crc_drops")
            self.counters.bump(f"nic.crc_drops.{packet.opcode}")
            self.pool.release(packet)
            return
        op = packet.opcode
        if op.__class__ is Op:
            # Protocol packet: classify by direction (Op is ordered with
            # every cache→memory opcode before every memory→cache one).
            if op <= _LAST_CACHE_TO_MEMORY:
                if self._memory_handler is None:
                    raise RuntimeError(f"{self.name}: no memory handler")
                # Ownership passes to the directory pipeline; it releases
                # after dispatch.
                self._memory_handler(packet)
            else:
                if self._cache_handler is None:
                    raise RuntimeError(f"{self.name}: no cache handler")
                self._cache_handler(packet)
                # Cache handlers copy what they keep; the packet is spent.
                self.pool.release(packet)
        else:
            # Not a protocol opcode: interrupt-class packets always enter
            # the IPI queue (is_interrupt is exactly "not protocol").
            self.divert_to_ipi(packet)

    def divert_to_ipi(self, packet: Packet) -> None:
        """Place a packet in the IPI input queue and raise the interrupt.

        The hardware memory controller calls this when a protocol packet
        must be handled in software (LimitLESS overflow, Trap-On-Write,
        Trap-Always).
        """
        if len(self._ipi_queue) >= self.ipi_capacity:
            # The real machine overflows into the network receive queue and
            # relies on synchronous traps; a model hitting this is a bug.
            raise IpiQueueOverflow(
                f"{self.name}: IPI queue exceeded {self.ipi_capacity}"
            )
        self._ipi_queue.append(packet)
        self.ipi_enqueued += 1
        self.ipi_high_water = max(self.ipi_high_water, len(self._ipi_queue))
        if self._trap_handler is not None:
            self._trap_handler()

    def ipi_pending(self) -> int:
        """Packets waiting in the IPI input queue."""
        return len(self._ipi_queue)

    def ipi_head(self) -> Packet | None:
        """Examine the head packet (trap code reads header/operands)."""
        return self._ipi_queue[0] if self._ipi_queue else None

    def ipi_pop(self) -> Packet:
        """Consume the head packet (trap code discards or stores it)."""
        if not self._ipi_queue:
            raise RuntimeError(f"{self.name}: IPI queue empty")
        return self._ipi_queue.popleft()
