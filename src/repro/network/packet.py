"""Uniform network packet format (paper §4.2, Figure 4).

Every packet carries a header (source, length, opcode), zero or more
operands, and zero or more data words.  Opcodes split into two classes:

* *protocol* opcodes — cache-coherence traffic, normally produced and
  consumed by the controller hardware but also by the LimitLESS trap
  handler;
* *interrupt* opcodes (MSB set in hardware) — interprocessor messages whose
  format is defined entirely by software.

The packet's length in words determines its serialization cost on the
network, so data-carrying messages (RDATA, WDATA, UPDATE, REPM) cost more
than control messages — exactly the asymmetry that makes invalidation
fan-out cheap and data fan-out expensive.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Optional

from ..mem.memory import BlockData

HEADER_WORDS = 1

#: Opcodes whose packets carry a data block (Table 3's "Data?" column).
DATA_BEARING_OPCODES = frozenset({"RDATA", "WDATA", "UPDATE", "REPM", "UPDATE_DATA"})

#: Protocol opcodes sent from caches to memory controllers (Table 3).
CACHE_TO_MEMORY = ("RREQ", "WREQ", "REPM", "UPDATE", "ACKC")

#: Protocol opcodes sent from memory controllers to caches (Table 3, plus
#: DACK — the fault-tolerant extension's acknowledgment that a writeback
#: [REPM or UPDATE] reached memory, letting the cache retire its copy).
MEMORY_TO_CACHE = ("RDATA", "WDATA", "INV", "BUSY", "UPDATE_DATA", "DACK")

PROTOCOL_OPCODES = frozenset(CACHE_TO_MEMORY) | frozenset(MEMORY_TO_CACHE)

#: Interrupt-class opcodes (software-defined interprocessor messages).
INTERRUPT_OPCODES = frozenset({"IPI", "PROFILE", "LOCK_GRANT"})


@dataclass(slots=True)
class Packet:
    """One network packet in the uniform Alewife format.

    ``operands`` always starts with the block address for protocol packets.
    ``data`` is the block payload for data-bearing packets.  ``meta`` holds
    bookkeeping that a real machine would encode in operands (requester id,
    version numbers) — it contributes to the operand count so the timing
    model stays honest.
    """

    src: int
    dst: int
    opcode: str
    address: int = 0
    data: Optional[BlockData] = None
    meta: dict[str, Any] = field(default_factory=dict)
    sent_at: int = -1
    #: payload checksum stamped by the sending NIC when fault injection is
    #: active; None otherwise.  A hardware sideband, not an operand — it
    #: never contributes to length_words, so stamping costs no cycles.
    crc: Optional[int] = None

    def __post_init__(self) -> None:
        if self.opcode in DATA_BEARING_OPCODES and self.data is None:
            raise ValueError(f"{self.opcode} packet requires data")

    @property
    def is_protocol(self) -> bool:
        return self.opcode in PROTOCOL_OPCODES

    @property
    def is_interrupt(self) -> bool:
        return not self.is_protocol

    @property
    def data_words(self) -> int:
        return len(self.data.words) if self.data is not None else 0

    @property
    def length_words(self) -> int:
        """Total packet length: header + operands + data words."""
        operands = 1 + len(self.meta)  # address + encoded bookkeeping
        return HEADER_WORDS + operands + self.data_words

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet({self.opcode} {self.src}->{self.dst} "
            f"addr={self.address:#x} len={self.length_words})"
        )


def packet_crc(packet: Packet) -> int:
    """Checksum of a packet's payload (data words only).

    Stamped by the sending NIC and verified on receipt when fault
    injection is active.  Only the payload is covered: the injector only
    corrupts data words, and header/operand integrity would be a routing
    concern, not a coherence one.
    """
    if packet.data is None:
        return 0
    return zlib.crc32(repr(packet.data.words).encode())


def protocol_packet(
    src: int,
    dst: int,
    opcode: str,
    address: int,
    *,
    data: Optional[BlockData] = None,
    **meta: Any,
) -> Packet:
    """Build a protocol-class packet, validating the opcode."""
    if opcode not in PROTOCOL_OPCODES:
        raise ValueError(f"unknown protocol opcode {opcode!r}")
    return Packet(src, dst, opcode, address, data=data, meta=dict(meta))


def interrupt_packet(
    src: int,
    dst: int,
    opcode: str,
    *,
    data: Optional[BlockData] = None,
    **meta: Any,
) -> Packet:
    """Build an interrupt-class (software-defined) packet.

    ``data`` carries optional data words — the uniform format's tail, used
    by the IPI interface's message-passing and block-transfer modes.
    """
    return Packet(src, dst, opcode, 0, data=data, meta=dict(meta))
