"""Uniform network packet format (paper §4.2, Figure 4).

Every packet carries a header (source, length, opcode), zero or more
operands, and zero or more data words.  Opcodes split into two classes:

* *protocol* opcodes — cache-coherence traffic, normally produced and
  consumed by the controller hardware but also by the LimitLESS trap
  handler;
* *interrupt* opcodes (MSB set in hardware) — interprocessor messages whose
  format is defined entirely by software.

The packet's length in words determines its serialization cost on the
network, so data-carrying messages (RDATA, WDATA, UPDATE, REPM) cost more
than control messages — exactly the asymmetry that makes invalidation
fan-out cheap and data fan-out expensive.

Protocol opcodes are interned as :class:`Op`, an ``IntEnum`` whose dense
values index the controllers' per-(state, opcode) dispatch tables and the
direction tables in the NIC — string compares and dict lookups stay out of
the steady state.  Packets may still be *constructed* with the string
spelling (``Packet(0, 1, "RREQ", ...)``); ``__post_init__`` interns it.
Interrupt opcodes remain free-form strings.

:class:`PacketPool` recycles protocol packets through a free list so
steady-state traffic allocates nothing.  Pooling is an allocator choice,
not a semantic one: simulated results are bit-identical with the pool
disabled (see tests/network/test_packet_pool.py).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, Optional, Union

from ..mem.memory import BlockData

HEADER_WORDS = 1


class Op(IntEnum):
    """Interned protocol opcodes (Table 3).

    Values are dense and ordered cache→memory first, memory→cache second,
    so ``op <= Op.ACKC`` classifies direction and ``table[op]`` indexes
    per-opcode dispatch rows without hashing.
    """

    RREQ = 0
    WREQ = 1
    REPM = 2
    UPDATE = 3
    ACKC = 4
    RDATA = 5
    WDATA = 6
    INV = 7
    BUSY = 8
    UPDATE_DATA = 9
    DACK = 10

    def __str__(self) -> str:
        return self._name_

    def __format__(self, spec: str) -> str:
        return format(self._name_, spec)


#: Opcode spelling -> member, for interning string-built packets.
OP_BY_NAME: dict[str, Op] = dict(Op.__members__)

#: Member value -> spelling, for stats keys and reports.
OP_NAMES: tuple[str, ...] = tuple(op._name_ for op in Op)

N_OPS = len(OP_NAMES)

#: Opcodes whose packets carry a data block (Table 3's "Data?" column).
DATA_BEARING_OPCODES = frozenset({"RDATA", "WDATA", "UPDATE", "REPM", "UPDATE_DATA"})

#: ``_DATA_BEARING[op]`` — the same fact, indexed by interned value.
_DATA_BEARING = tuple(name in DATA_BEARING_OPCODES for name in OP_NAMES)

#: Protocol opcodes sent from caches to memory controllers (Table 3).
CACHE_TO_MEMORY = ("RREQ", "WREQ", "REPM", "UPDATE", "ACKC")

#: Protocol opcodes sent from memory controllers to caches (Table 3, plus
#: DACK — the fault-tolerant extension's acknowledgment that a writeback
#: [REPM or UPDATE] reached memory, letting the cache retire its copy).
MEMORY_TO_CACHE = ("RDATA", "WDATA", "INV", "BUSY", "UPDATE_DATA", "DACK")

#: Every cache→memory opcode precedes every memory→cache opcode in Op.
_LAST_CACHE_TO_MEMORY = Op.ACKC

PROTOCOL_OPCODES = frozenset(CACHE_TO_MEMORY) | frozenset(MEMORY_TO_CACHE)

#: Interrupt-class opcodes (software-defined interprocessor messages).
INTERRUPT_OPCODES = frozenset({"IPI", "PROFILE", "LOCK_GRANT"})

Opcode = Union[Op, str]


@dataclass(slots=True)
class Packet:
    """One network packet in the uniform Alewife format.

    ``operands`` always starts with the block address for protocol packets.
    ``data`` is the block payload for data-bearing packets.  ``meta`` holds
    bookkeeping that a real machine would encode in operands (requester id,
    version numbers) — it contributes to the operand count so the timing
    model stays honest.
    """

    src: int
    dst: int
    opcode: Opcode
    address: int = 0
    data: Optional[BlockData] = None
    meta: dict[str, Any] = field(default_factory=dict)
    sent_at: int = -1
    #: payload checksum stamped by the sending NIC when fault injection is
    #: active; None otherwise.  A hardware sideband, not an operand — it
    #: never contributes to length_words, so stamping costs no cycles.
    crc: Optional[int] = None
    #: True while the packet sits on a pool free list (double-use guard).
    _free: bool = field(default=False, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        op = self.opcode
        if op.__class__ is not Op:
            interned = OP_BY_NAME.get(op)
            if interned is not None:
                self.opcode = op = interned
        if op.__class__ is Op and _DATA_BEARING[op] and self.data is None:
            raise ValueError(f"{op} packet requires data")

    @property
    def is_protocol(self) -> bool:
        return self.opcode.__class__ is Op

    @property
    def is_interrupt(self) -> bool:
        return self.opcode.__class__ is not Op

    @property
    def data_words(self) -> int:
        return len(self.data.words) if self.data is not None else 0

    @property
    def length_words(self) -> int:
        """Total packet length: header + operands + data words.

        Inlined arithmetic (header + address operand = 2) rather than
        composing ``data_words``: this property runs once per fabric send.
        """
        data = self.data
        return (
            HEADER_WORDS
            + 1
            + len(self.meta)
            + (len(data.words) if data is not None else 0)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet({self.opcode} {self.src}->{self.dst} "
            f"addr={self.address:#x} len={self.length_words})"
        )


def packet_crc(packet: Packet) -> int:
    """Checksum of a packet's payload (data words only).

    Stamped by the sending NIC and verified on receipt when fault
    injection is active.  Only the payload is covered: the injector only
    corrupts data words, and header/operand integrity would be a routing
    concern, not a coherence one.
    """
    if packet.data is None:
        return 0
    return zlib.crc32(repr(packet.data.words).encode())


def protocol_packet(
    src: int,
    dst: int,
    opcode: Opcode,
    address: int,
    *,
    data: Optional[BlockData] = None,
    **meta: Any,
) -> Packet:
    """Build a protocol-class packet, validating the opcode."""
    if opcode.__class__ is not Op and opcode not in PROTOCOL_OPCODES:
        raise ValueError(f"unknown protocol opcode {opcode!r}")
    return Packet(src, dst, opcode, address, data=data, meta=dict(meta))


def interrupt_packet(
    src: int,
    dst: int,
    opcode: str,
    *,
    data: Optional[BlockData] = None,
    **meta: Any,
) -> Packet:
    """Build an interrupt-class (software-defined) packet.

    ``data`` carries optional data words — the uniform format's tail, used
    by the IPI interface's message-passing and block-transfer modes.
    """
    return Packet(src, dst, opcode, 0, data=data, meta=dict(meta))


class PacketPool:
    """Free-list allocator for protocol packets.

    Components acquire through :meth:`protocol` and hand the packet to the
    fabric; whoever *terminally consumes* a packet (the receiving NIC after
    its handler returns, the directory after dispatch, the fault injector's
    drop path) releases it back.  A released packet is scrubbed — payload
    reference dropped, meta emptied, CRC cleared — so no state can leak
    into its next transaction, and a ``_free`` flag catches double release
    or use-after-release in tests.

    Interrupt packets are never pooled (software owns their lifetime), and
    a disabled pool degrades to plain construction with no-op releases, so
    every call site can stay unconditional.
    """

    __slots__ = ("enabled", "_free_list", "allocated", "recycled")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._free_list: list[Packet] = []
        #: fresh constructions and free-list reuses, for `repro profile`.
        self.allocated = 0
        self.recycled = 0

    def __len__(self) -> int:
        return len(self._free_list)

    def protocol(
        self,
        src: int,
        dst: int,
        opcode: Opcode,
        address: int,
        *,
        data: Optional[BlockData] = None,
        **meta: Any,
    ) -> Packet:
        """Acquire a protocol packet (recycled when the free list allows)."""
        free_list = self._free_list
        if not free_list:
            self.allocated += 1
            return protocol_packet(src, dst, opcode, address, data=data, **meta)
        self.recycled += 1
        packet = free_list.pop()
        packet._free = False
        if opcode.__class__ is not Op:
            opcode = OP_BY_NAME[opcode]
        if data is None and _DATA_BEARING[opcode]:
            raise ValueError(f"{opcode} packet requires data")
        packet.src = src
        packet.dst = dst
        packet.opcode = opcode
        packet.address = address
        packet.data = data
        if meta:
            packet.meta.update(meta)
        return packet

    def clone(self, packet: Packet) -> Packet:
        """Duplicate a packet (fault-injector dup path).

        The duplicate must not alias the original: both will be delivered,
        and under pooling the original may be scrubbed and reissued before
        the duplicate arrives.  The CRC and send stamp carry over, so a
        corrupted original's duplicate is caught on receipt too.
        """
        dup = self.protocol(
            packet.src,
            packet.dst,
            packet.opcode,
            packet.address,
            data=packet.data.copy() if packet.data is not None else None,
            **packet.meta,
        )
        dup.sent_at = packet.sent_at
        dup.crc = packet.crc
        return dup

    def release(self, packet: Packet) -> None:
        """Scrub a terminally consumed packet and return it to the pool."""
        if not self.enabled or packet.opcode.__class__ is not Op:
            return
        if packet._free:
            raise RuntimeError(f"double release of {packet!r}")
        packet._free = True
        packet.data = None
        packet.crc = None
        packet.sent_at = -1
        if packet.meta:
            packet.meta.clear()
        self._free_list.append(packet)


#: Shared no-op pool: standalone components built outside a machine (unit
#: tests, rigs) construct packets normally and release() does nothing.
DISABLED_POOL = PacketPool(enabled=False)
