"""Barrier synchronization over real shared memory.

The paper's applications synchronize with barriers; Weather uses *software
combining trees* to distribute its barrier variables (and still suffers a
hot-spot from one unoptimized variable).  We implement both styles the
applications used:

* **central barrier** — a single counter + release flag.  Every processor
  increments the counter and spins on the flag, so the flag's worker-set is
  the full machine: a built-in hot-spot.
* **combining-tree barrier** — processors fan in through a tree of
  counters with small arity; each tree node's counter is a migratory object
  touched by ``arity`` processors and each release flag has a worker-set of
  about ``arity``.  With arity 2 this produces the "worker-set of exactly
  two processors" data that makes LimitLESS1 look bad in Figure 10.

Barriers are *sense-free epoch barriers*: release flags hold the epoch
number, spinners wait for ``flag >= epoch``, and the last arriver resets
the counter before climbing, so the same tree is reused every iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Iterator

from ..mem.address import Allocator
from ..proc import ops


@dataclass
class BarrierNode:
    """One combining-tree node: an arrival counter and a release flag."""

    name: str
    counter_addr: int
    flag_addr: int
    arity: int
    parent: "BarrierNode | None" = None
    children: list["BarrierNode"] = field(default_factory=list)


@dataclass
class BarrierSpec:
    """A barrier instance shared by a set of processors."""

    name: str
    participants: list[int]
    leaves: dict[int, BarrierNode]  # proc id -> the node it arrives at
    root: BarrierNode

    def leaf_of(self, proc_id: int) -> BarrierNode:
        return self.leaves[proc_id]

    def nodes(self) -> Iterator[BarrierNode]:
        seen: set[int] = set()
        stack = [self.root]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            yield node
            stack.extend(node.children)


def build_central_barrier(
    allocator: Allocator, participants: list[int], *, name: str = "barrier", home: int | None = None
) -> BarrierSpec:
    """A single-node barrier: counter and flag on one home node."""
    if not participants:
        raise ValueError("barrier needs participants")
    node_home = participants[0] if home is None else home
    counter = allocator.alloc_scalar(f"{name}.counter", home=node_home)
    flag = allocator.alloc_scalar(f"{name}.flag", home=node_home)
    root = BarrierNode(name, counter.base, flag.base, len(participants))
    return BarrierSpec(name, list(participants), {p: root for p in participants}, root)


def build_combining_tree(
    allocator: Allocator,
    participants: list[int],
    *,
    arity: int = 4,
    name: str = "barrier",
) -> BarrierSpec:
    """A combining-tree barrier with the given fan-in.

    Tree nodes are homed on the first participant of the group they serve,
    spreading barrier traffic across the machine as Weather's software
    combining trees did.
    """
    if not participants:
        raise ValueError("barrier needs participants")
    if arity < 2:
        raise ValueError("combining tree arity must be >= 2")
    if len(participants) == 1:
        return build_central_barrier(allocator, participants, name=name)

    def make_node(label: str, group_arity: int, home: int) -> BarrierNode:
        counter = allocator.alloc_scalar(f"{name}.{label}.counter", home=home)
        flag = allocator.alloc_scalar(f"{name}.{label}.flag", home=home)
        return BarrierNode(f"{name}.{label}", counter.base, flag.base, group_arity)

    # Build level 0: leaves grouping `arity` processors each.
    leaves: dict[int, BarrierNode] = {}
    level: list[tuple[BarrierNode, int]] = []  # (node, representative proc)
    for start in range(0, len(participants), arity):
        group = participants[start : start + arity]
        node = make_node(f"L0.{start // arity}", len(group), group[0])
        for proc in group:
            leaves[proc] = node
        level.append((node, group[0]))

    # Fan in until a single root remains.
    depth = 1
    while len(level) > 1:
        next_level: list[tuple[BarrierNode, int]] = []
        for start in range(0, len(level), arity):
            group = level[start : start + arity]
            node = make_node(f"L{depth}.{start // arity}", len(group), group[0][1])
            for child, _rep in group:
                child.parent = node
                node.children.append(child)
            next_level.append((node, group[0][1]))
        level = next_level
        depth += 1

    root = level[0][0]
    return BarrierSpec(name, list(participants), leaves, root)


def barrier_wait(
    spec: BarrierSpec, proc_id: int, epoch: int, *, poll_interval: int = 12
) -> Generator[tuple, int, None]:
    """Program fragment (use via ``yield from``) performing one barrier.

    ``epoch`` must be 1 for the first barrier on a spec, 2 for the second,
    and so on (one counter per calling site is the usual pattern).
    """
    node: BarrierNode | None = spec.leaf_of(proc_id)
    climbed: list[BarrierNode] = []
    while node is not None:
        old = yield ops.fetch_add(node.counter_addr, 1)
        if old == node.arity - 1:
            # Last arriver: reset the counter for reuse, then climb.
            yield ops.store(node.counter_addr, 0)
            climbed.append(node)
            node = node.parent
        else:
            break
    if node is not None:
        # Not last here: spin on this node's release flag.
        # a spinning thread backs off, then yields the pipeline (the
        # synchronization-fault switch) so same-node threads cannot starve
        # each other; the two ops are value-independent, so precompiled
        backoff = ops.burst(ops.think(poll_interval), ops.switch_hint())
        while True:
            value = yield ops.load(node.flag_addr)
            if value >= epoch:
                break
            yield backoff
    # Release every node this processor won, top-down.  The fence orders
    # the release stores after everything above (counter resets and the
    # caller's data stores) under the weakly-ordered memory model; it is a
    # one-cycle no-op under sequential consistency.
    if climbed:
        yield ops.fence()
    for won in reversed(climbed):
        yield ops.store(won.flag_addr, epoch)
