"""Spin locks over shared memory (test-and-test-and-set)."""

from __future__ import annotations

from typing import Generator

from ..proc import ops


def spin_lock_acquire(
    lock_addr: int, *, poll_interval: int = 12
) -> Generator[tuple, int, None]:
    """Test-and-test-and-set acquire (use via ``yield from``).

    Spins read-only on a cached copy until the lock looks free, then tries
    the atomic test-and-set; on failure, goes back to spinning.  The
    read-only spin phase keeps the lock's worker-set visible to the
    directory, which is what makes contended locks interesting for
    coherence protocols.
    """
    while True:
        value = yield ops.load(lock_addr)
        if value == 0:
            old = yield ops.test_and_set(lock_addr)
            if old == 0:
                return
        yield ops.think(poll_interval)
        yield ops.switch_hint()


def spin_lock_release(lock_addr: int) -> Generator[tuple, int, None]:
    """Release a lock acquired with :func:`spin_lock_acquire`.

    The fence gives the release store its required semantics under the
    weakly-ordered model: every store made inside the critical section
    completes before the lock is seen free.
    """
    yield ops.fence()
    yield ops.store(lock_addr, 0)
