"""Synchronization built on shared memory: barriers and locks."""

from .barrier import (
    BarrierNode,
    BarrierSpec,
    barrier_wait,
    build_central_barrier,
    build_combining_tree,
)
from .lock import spin_lock_acquire, spin_lock_release

__all__ = [
    "BarrierNode",
    "BarrierSpec",
    "barrier_wait",
    "build_central_barrier",
    "build_combining_tree",
    "spin_lock_acquire",
    "spin_lock_release",
]
