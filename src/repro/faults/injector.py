"""The fault injector: deterministic packet-level chaos.

Installed on the network as ``network.fault_injector``, the injector takes
over final delivery scheduling.  For every protocol packet it may:

* **drop** it (the delivery never happens),
* **duplicate** it (a second delivery of the same packet a little later),
* **delay** it (a bounded extra latency), or
* **corrupt** it (flip one bit of one payload word — caught by the NIC's
  CRC check on receipt and discarded there, so corruption behaves like a
  *detected* loss, never silent data poisoning).

Interrupt-class packets (IPIs, lock grants) are never faulted: the
software messaging layer has no retry protocol, and the paper's
fault-tolerance story is about the coherence protocol.

Two disciplines keep campaigns reproducible and the protocol analyzable:

* every random decision draws from a named substream (``faults.drop`` and
  friends) and a substream is only consulted when its rate is non-zero, so
  enabling one fault class does not perturb another's schedule; and
* a per-(src, dst) delivery floor guarantees point-to-point FIFO order is
  preserved even under delay and duplication — the protocol's race
  arguments (and the hardened controllers' recovery arguments) all assume
  the mesh's dimension-ordered FIFO property, so the injector reorders
  traffic *across* node pairs, never within one.
"""

from __future__ import annotations

import random
from typing import Optional

from ..network.fabric import Network
from ..network.packet import Packet, packet_crc
from ..sim.rng import DeterministicRng
from ..stats.counters import Counters

__all__ = ["FaultInjector", "StagedFaultGate", "packet_crc"]


class FaultInjector:
    """Per-machine fault-injection state machine (see module docstring)."""

    def __init__(self, network: Network, rng: DeterministicRng, config) -> None:
        self.network = network
        self.rng = rng
        self.drop_rate = config.fault_drop_rate
        self.dup_rate = config.fault_dup_rate
        self.delay_rate = config.fault_delay_rate
        self.delay_max = config.fault_delay_max
        self.corrupt_rate = config.fault_corrupt_rate
        self.stall_rate = config.fault_stall_rate
        self.stall_cycles = config.fault_stall_cycles
        self.counters = Counters()
        #: point-to-point FIFO floor: no packet on (src, dst) may be
        #: delivered earlier than the last delivery scheduled on that pair
        self._pair_floor: dict[tuple[int, int], int] = {}
        #: tag -> (delivery_time, packet) for everything scheduled but not
        #: yet delivered; feeds the watchdog's oldest-packet diagnosis
        self._pending: dict[int, tuple[int, Packet]] = {}
        self._next_tag = 0
        self._on_deliver = self._deliver
        network.fault_injector = self

    # ------------------------------------------------------------------
    # Network-side injection
    # ------------------------------------------------------------------

    def admit(self, time: int, packet: Packet) -> None:
        """Take over delivery of ``packet`` (nominal arrival ``time``).

        Called by the fabric instead of posting the delivery event
        directly.  Fault decisions are made here — after the fabric has
        fully accounted timing and traffic stats, so a dropped packet
        still consumed network bandwidth, exactly like a packet eaten by
        a real faulty router.
        """
        if not packet.is_protocol:
            self._schedule(time, packet)
            return
        if self.drop_rate and self.rng.stream("faults.drop").random() < self.drop_rate:
            self.counters.bump("faults.dropped")
            self.counters.bump(f"faults.dropped.{packet.opcode}")
            self.network.pool.release(packet)
            return
        if (
            self.corrupt_rate
            and packet.data is not None
            and self.rng.stream("faults.corrupt").random() < self.corrupt_rate
        ):
            self._corrupt(packet)
        if self.delay_rate and self.rng.stream("faults.delay").random() < self.delay_rate:
            extra = self.rng.stream("faults.delay").randint(1, self.delay_max)
            self.counters.bump("faults.delayed")
            self.counters.bump("faults.delay_cycles", extra)
            time += extra
        self._schedule(time, packet)
        if self.dup_rate and self.rng.stream("faults.dup").random() < self.dup_rate:
            self.counters.bump("faults.duplicated")
            self.counters.bump(f"faults.duplicated.{packet.opcode}")
            # Back-to-back with the original; the pair floor serializes it
            # immediately behind, preserving FIFO.  An independent clone:
            # under pooling the original may be scrubbed and reissued
            # before this copy arrives.
            self._schedule(time + 1, self.network.pool.clone(packet))

    def _corrupt(self, packet: Packet) -> None:
        """Flip one payload bit in a *copy* of the block data.

        The original ``BlockData`` may alias a live cache line or memory
        block, so in-place mutation would corrupt state the packet never
        legitimately touches.
        """
        stream = self.rng.stream("faults.corrupt")
        data = packet.data.copy()
        word = stream.randrange(len(data.words))
        data.words[word] ^= 1 << stream.randrange(32)
        packet.data = data
        self.counters.bump("faults.corrupted")
        self.counters.bump(f"faults.corrupted.{packet.opcode}")

    def _schedule(self, time: int, packet: Packet) -> None:
        pair = (packet.src, packet.dst)
        floor = self._pair_floor.get(pair, 0)
        if time < floor:
            time = floor
        self._pair_floor[pair] = time
        net = self.network
        net.in_flight += 1
        tag = self._next_tag
        self._next_tag = tag + 1
        self._pending[tag] = (time, packet)
        net.sim.post(time, self._on_deliver, tag)

    def _deliver(self, tag: int) -> None:
        _, packet = self._pending.pop(tag)
        self.network._deliver(packet)

    # ------------------------------------------------------------------
    # Controller-side injection
    # ------------------------------------------------------------------

    def trap_stall(self, node_id: int | None = None) -> int:
        """Extra cycles to add to one LimitLESS trap-handler invocation.

        ``node_id`` is accepted for interface parity with
        :class:`StagedFaultGate`; the atomic injector draws from one
        global substream regardless of which node is trapping.
        """
        if (
            self.stall_rate
            and self.rng.stream("faults.stall").random() < self.stall_rate
        ):
            self.counters.bump("faults.trap_stalls")
            self.counters.bump("faults.trap_stall_cycles", self.stall_cycles)
            return self.stall_cycles
        return 0

    # ------------------------------------------------------------------
    # Diagnosis support
    # ------------------------------------------------------------------

    def oldest_pending(self) -> Optional[str]:
        """Describe the oldest in-flight packet (for hang diagnosis)."""
        if not self._pending:
            return None
        time, packet = min(
            self._pending.values(), key=lambda tp: (tp[1].sent_at, tp[0])
        )
        return (
            f"{packet.opcode} {packet.src}->{packet.dst} "
            f"addr={packet.address:#x} sent_at={packet.sent_at} "
            f"arrives_at={time}"
        )


class StagedFaultGate:
    """Order-independent fault decisions for the staged (sharded) fabrics.

    The atomic :class:`FaultInjector` draws each decision from a global
    substream *in admission order*, which is exactly the kind of
    whole-machine sequencing a sharded run cannot reproduce.  The gate
    instead keys every decision on the packet's identity — the
    ``(src, per-source send seq)`` tag the staged fabric stamps at send —
    so a packet's fate is the same no matter which shard delivers it or
    when.  Per-class child seeds keep one fault class's schedule
    independent of another's, mirroring the injector's
    one-substream-per-class discipline.

    Point-to-point FIFO is preserved the same way the injector preserves
    it: a per-(src, dst) delivery floor, which lives on the destination
    node's shard (all of a pair's deliveries drain there, in send order,
    so the floor's update sequence is shard-invariant).

    Installed as ``network.fault_gate`` (delivery filtering) *and*
    ``network.fault_injector`` (so the LimitLESS trap-stall hook and the
    stats-collection path find it where they find the atomic injector).
    """

    def __init__(self, network, config) -> None:
        self.network = network
        self.seed = config.seed
        self.drop_rate = config.fault_drop_rate
        self.dup_rate = config.fault_dup_rate
        self.delay_rate = config.fault_delay_rate
        self.delay_max = config.fault_delay_max
        self.corrupt_rate = config.fault_corrupt_rate
        self.stall_rate = config.fault_stall_rate
        self.stall_cycles = config.fault_stall_cycles
        self.counters = Counters()
        self._pair_floor: dict[tuple[int, int], int] = {}
        #: per-node trap-stall substreams: a node's trap sequence is part
        #: of its own deterministic history, so sequential draws are safe
        self._stall_streams: dict[int, random.Random] = {}
        network.fault_gate = self
        network.fault_injector = self

    def _class_stream(self, kind: str, key: tuple) -> random.Random:
        return random.Random(f"{self.seed}:staged-fault:{kind}:{key[0]}:{key[1]}")

    def _floor(self, packet: Packet, time: int) -> int:
        pair = (packet.src, packet.dst)
        floor = self._pair_floor.get(pair, 0)
        if time < floor:
            time = floor
        self._pair_floor[pair] = time
        return time

    def filter(
        self, time: int, key: tuple, packet: Packet
    ) -> list[tuple[int, tuple, Packet]]:
        """Fault decisions for one delivery.

        Returns the (time, key, packet) deliveries to enqueue — empty for
        a drop, two entries for a duplication.  Interrupt-class packets
        pass through unfaulted (but still FIFO-floored), as in the
        injector.
        """
        if not packet.is_protocol:
            return [(self._floor(packet, time), key, packet)]
        if (
            self.drop_rate
            and self._class_stream("drop", key).random() < self.drop_rate
        ):
            self.counters.bump("faults.dropped")
            self.counters.bump(f"faults.dropped.{packet.opcode}")
            self.network.pool.release(packet)
            return []
        if self.corrupt_rate and packet.data is not None:
            stream = self._class_stream("corrupt", key)
            if stream.random() < self.corrupt_rate:
                data = packet.data.copy()
                word = stream.randrange(len(data.words))
                data.words[word] ^= 1 << stream.randrange(32)
                packet.data = data
                self.counters.bump("faults.corrupted")
                self.counters.bump(f"faults.corrupted.{packet.opcode}")
        if self.delay_rate:
            stream = self._class_stream("delay", key)
            if stream.random() < self.delay_rate:
                extra = stream.randint(1, self.delay_max)
                self.counters.bump("faults.delayed")
                self.counters.bump("faults.delay_cycles", extra)
                time += extra
        time = self._floor(packet, time)
        out = [(time, key, packet)]
        if self.dup_rate and self._class_stream("dup", key).random() < self.dup_rate:
            self.counters.bump("faults.duplicated")
            self.counters.bump(f"faults.duplicated.{packet.opcode}")
            # Back-to-back behind the original; the floor keeps FIFO.  The
            # copy is an independent clone so pooling cannot alias the two.
            dup = self.network.pool.clone(packet)
            out.append((self._floor(packet, time + 1), key + (1,), dup))
        return out

    def trap_stall(self, node_id: int | None = None) -> int:
        """Extra cycles for one LimitLESS trap invocation on ``node_id``."""
        if not self.stall_rate:
            return 0
        stream = self._stall_streams.get(node_id)
        if stream is None:
            stream = random.Random(f"{self.seed}:staged-fault:stall:{node_id}")
            self._stall_streams[node_id] = stream
        if stream.random() < self.stall_rate:
            self.counters.bump("faults.trap_stalls")
            self.counters.bump("faults.trap_stall_cycles", self.stall_cycles)
            return self.stall_cycles
        return 0

    def oldest_pending(self) -> Optional[str]:
        """Diagnosis parity with the injector; the staged fabrics track
        in-flight packets in their inbox buckets instead."""
        return None
