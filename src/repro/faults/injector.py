"""The fault injector: deterministic packet-level chaos.

Installed on the network as ``network.fault_injector``, the injector takes
over final delivery scheduling.  For every protocol packet it may:

* **drop** it (the delivery never happens),
* **duplicate** it (a second delivery of the same packet a little later),
* **delay** it (a bounded extra latency), or
* **corrupt** it (flip one bit of one payload word — caught by the NIC's
  CRC check on receipt and discarded there, so corruption behaves like a
  *detected* loss, never silent data poisoning).

Interrupt-class packets (IPIs, lock grants) are never faulted: the
software messaging layer has no retry protocol, and the paper's
fault-tolerance story is about the coherence protocol.

Two disciplines keep campaigns reproducible and the protocol analyzable:

* every random decision draws from a named substream (``faults.drop`` and
  friends) and a substream is only consulted when its rate is non-zero, so
  enabling one fault class does not perturb another's schedule; and
* a per-(src, dst) delivery floor guarantees point-to-point FIFO order is
  preserved even under delay and duplication — the protocol's race
  arguments (and the hardened controllers' recovery arguments) all assume
  the mesh's dimension-ordered FIFO property, so the injector reorders
  traffic *across* node pairs, never within one.
"""

from __future__ import annotations

from typing import Optional

from ..network.fabric import Network
from ..network.packet import Packet, packet_crc
from ..sim.rng import DeterministicRng
from ..stats.counters import Counters

__all__ = ["FaultInjector", "packet_crc"]


class FaultInjector:
    """Per-machine fault-injection state machine (see module docstring)."""

    def __init__(self, network: Network, rng: DeterministicRng, config) -> None:
        self.network = network
        self.rng = rng
        self.drop_rate = config.fault_drop_rate
        self.dup_rate = config.fault_dup_rate
        self.delay_rate = config.fault_delay_rate
        self.delay_max = config.fault_delay_max
        self.corrupt_rate = config.fault_corrupt_rate
        self.stall_rate = config.fault_stall_rate
        self.stall_cycles = config.fault_stall_cycles
        self.counters = Counters()
        #: point-to-point FIFO floor: no packet on (src, dst) may be
        #: delivered earlier than the last delivery scheduled on that pair
        self._pair_floor: dict[tuple[int, int], int] = {}
        #: tag -> (delivery_time, packet) for everything scheduled but not
        #: yet delivered; feeds the watchdog's oldest-packet diagnosis
        self._pending: dict[int, tuple[int, Packet]] = {}
        self._next_tag = 0
        self._on_deliver = self._deliver
        network.fault_injector = self

    # ------------------------------------------------------------------
    # Network-side injection
    # ------------------------------------------------------------------

    def admit(self, time: int, packet: Packet) -> None:
        """Take over delivery of ``packet`` (nominal arrival ``time``).

        Called by the fabric instead of posting the delivery event
        directly.  Fault decisions are made here — after the fabric has
        fully accounted timing and traffic stats, so a dropped packet
        still consumed network bandwidth, exactly like a packet eaten by
        a real faulty router.
        """
        if not packet.is_protocol:
            self._schedule(time, packet)
            return
        if self.drop_rate and self.rng.stream("faults.drop").random() < self.drop_rate:
            self.counters.bump("faults.dropped")
            self.counters.bump(f"faults.dropped.{packet.opcode}")
            return
        if (
            self.corrupt_rate
            and packet.data is not None
            and self.rng.stream("faults.corrupt").random() < self.corrupt_rate
        ):
            self._corrupt(packet)
        if self.delay_rate and self.rng.stream("faults.delay").random() < self.delay_rate:
            extra = self.rng.stream("faults.delay").randint(1, self.delay_max)
            self.counters.bump("faults.delayed")
            self.counters.bump("faults.delay_cycles", extra)
            time += extra
        self._schedule(time, packet)
        if self.dup_rate and self.rng.stream("faults.dup").random() < self.dup_rate:
            self.counters.bump("faults.duplicated")
            self.counters.bump(f"faults.duplicated.{packet.opcode}")
            # Back-to-back with the original; the pair floor serializes it
            # immediately behind, preserving FIFO.
            self._schedule(time + 1, packet)

    def _corrupt(self, packet: Packet) -> None:
        """Flip one payload bit in a *copy* of the block data.

        The original ``BlockData`` may alias a live cache line or memory
        block, so in-place mutation would corrupt state the packet never
        legitimately touches.
        """
        stream = self.rng.stream("faults.corrupt")
        data = packet.data.copy()
        word = stream.randrange(len(data.words))
        data.words[word] ^= 1 << stream.randrange(32)
        packet.data = data
        self.counters.bump("faults.corrupted")
        self.counters.bump(f"faults.corrupted.{packet.opcode}")

    def _schedule(self, time: int, packet: Packet) -> None:
        pair = (packet.src, packet.dst)
        floor = self._pair_floor.get(pair, 0)
        if time < floor:
            time = floor
        self._pair_floor[pair] = time
        net = self.network
        net.in_flight += 1
        tag = self._next_tag
        self._next_tag = tag + 1
        self._pending[tag] = (time, packet)
        net.sim.post(time, self._on_deliver, tag)

    def _deliver(self, tag: int) -> None:
        _, packet = self._pending.pop(tag)
        self.network._deliver(packet)

    # ------------------------------------------------------------------
    # Controller-side injection
    # ------------------------------------------------------------------

    def trap_stall(self) -> int:
        """Extra cycles to add to one LimitLESS trap-handler invocation."""
        if (
            self.stall_rate
            and self.rng.stream("faults.stall").random() < self.stall_rate
        ):
            self.counters.bump("faults.trap_stalls")
            self.counters.bump("faults.trap_stall_cycles", self.stall_cycles)
            return self.stall_cycles
        return 0

    # ------------------------------------------------------------------
    # Diagnosis support
    # ------------------------------------------------------------------

    def oldest_pending(self) -> Optional[str]:
        """Describe the oldest in-flight packet (for hang diagnosis)."""
        if not self._pending:
            return None
        time, packet = min(
            self._pending.values(), key=lambda tp: (tp[1].sent_at, tp[0])
        )
        return (
            f"{packet.opcode} {packet.src}->{packet.dst} "
            f"addr={packet.address:#x} sent_at={packet.sent_at} "
            f"arrives_at={time}"
        )
