"""Seeded, deterministic fault injection for the simulated machine.

The injector sits between the network fabric's timing model and packet
delivery, perturbing protocol traffic (drop, duplicate, bounded delay,
payload corruption) from named :class:`~repro.sim.rng.DeterministicRng`
substreams, so any chaos campaign replays bit-identically from its seed.
The LimitLESS trap handler asks the same injector for stall cycles, and a
liveness watchdog turns silent wedges into structured diagnoses.
"""

from .injector import FaultInjector, StagedFaultGate, packet_crc
from .watchdog import LivenessWatchdog

__all__ = ["FaultInjector", "LivenessWatchdog", "StagedFaultGate", "packet_crc"]
