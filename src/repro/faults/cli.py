"""The ``repro faults`` subcommand: seeded chaos campaigns.

Examples::

    python -m repro faults                       # default grid, 90 points
    python -m repro faults --rates 1e-3 1e-2     # sweep the fault rate
    python -m repro faults --workers 4 --timeout 60
    python -m repro faults --protocols limited --workloads weather \
        --rates 1e-3 --seeds 3                   # replay one grid cell
"""

from __future__ import annotations

import argparse

from ..coherence.registry import protocol_names
from .campaign import DEFAULT_PROTOCOLS, DEFAULT_WORKLOADS, run_campaign

DESCRIPTION = (
    "Run seeded fault-injection campaigns (drop + duplicate + delay at the "
    "given per-packet rates) across protocols, workloads and seeds, with "
    "the coherence-invariant auditor and liveness watchdog as oracle; "
    "writes a survival report with per-point recovery-overhead counters."
)


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--procs", type=int, default=16, help="simulated processors")
    parser.add_argument(
        "--protocols",
        nargs="+",
        default=list(DEFAULT_PROTOCOLS),
        choices=protocol_names(),
        metavar="PROTOCOL",
        help=f"protocols to stress (default: {' '.join(DEFAULT_PROTOCOLS)})",
    )
    parser.add_argument(
        "--workloads",
        nargs="+",
        default=list(DEFAULT_WORKLOADS),
        metavar="WORKLOAD",
        help=f"workloads to stress (default: {' '.join(DEFAULT_WORKLOADS)})",
    )
    parser.add_argument(
        "--rates",
        nargs="+",
        type=float,
        default=[1e-3],
        metavar="RATE",
        help="per-packet drop=dup=delay probabilities (default: 1e-3)",
    )
    parser.add_argument(
        "--seeds",
        nargs="+",
        type=int,
        default=[0, 1, 2, 3, 4],
        metavar="SEED",
        help="seeds to run per grid cell (default: 0 1 2 3 4)",
    )
    parser.add_argument("--iters", type=int, default=2, help="workload iterations")
    parser.add_argument("--pointers", type=int, default=4)
    parser.add_argument("--ts", type=int, default=50)
    parser.add_argument(
        "--corrupt-rate",
        type=float,
        default=0.0,
        help="per-packet payload-corruption probability (CRC catches these)",
    )
    parser.add_argument(
        "--stall-rate",
        type=float,
        default=0.0,
        help="per-trap stall probability (LimitLESS software handler)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="worker processes (default serial)"
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        metavar="SECONDS",
        help="wall-clock budget per grid point (default: 120)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_faults.json",
        help="survival report path ('' to skip writing)",
    )
    chaos = parser.add_argument_group(
        "process-level chaos (repro.recover)",
        "SIGKILL simulation processes or forked shard workers at seeded "
        "times and require recovery to converge bit-identically to a "
        "zero-chaos baseline",
    )
    chaos.add_argument(
        "--process-chaos",
        action="store_true",
        help="run the process-chaos campaign instead of the packet-fault grid",
    )
    chaos.add_argument(
        "--kills", type=int, default=2, help="kills per chaos point (default 2)"
    )
    chaos.add_argument(
        "--kill-target",
        choices=["process", "worker"],
        default="process",
        help="kill the whole run (recovery = checkpoint resume) or one "
        "forked shard worker (recovery = parent supervision + restart); "
        "serial points always use 'process'",
    )
    chaos.add_argument(
        "--kill-window",
        nargs=2,
        type=float,
        default=[0.05, 0.4],
        metavar=("LO", "HI"),
        help="seeded kill delay range in wall seconds (default 0.05 0.4)",
    )
    chaos.add_argument(
        "--chaos-every",
        type=int,
        default=400,
        metavar="CYCLES",
        help="checkpoint interval for process-kill recovery (default 400)",
    )
    chaos.add_argument(
        "--chaos-shards",
        nargs="+",
        type=int,
        default=[1, 2],
        metavar="K",
        help="shard counts in the chaos grid (default 1 2)",
    )
    chaos.add_argument(
        "--chaos-dir",
        default=None,
        metavar="DIR",
        help="work directory for snapshots/results (default: a temp dir)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro faults", description=DESCRIPTION)
    add_arguments(parser)
    return parser


def run_from_args(args: argparse.Namespace) -> int:
    if args.process_chaos:
        import tempfile

        from ..recover.chaos import chaos_points, run_chaos_campaign

        points = chaos_points(
            procs=args.procs,
            protocols=args.protocols,
            workloads=args.workloads,
            shards=args.chaos_shards,
            iters=args.iters,
            pointers=args.pointers,
            ts=args.ts,
        )
        out = args.out
        if out == "BENCH_faults.json":  # keep the two reports apart
            out = "BENCH_process_chaos.json"
        workdir = args.chaos_dir or tempfile.mkdtemp(prefix="repro-chaos-")
        report = run_chaos_campaign(
            points,
            kills=args.kills,
            seed=args.seeds[0],
            every=args.chaos_every,
            kill_target=args.kill_target,
            kill_window=tuple(args.kill_window),
            workdir=workdir,
            out=out or None,
        )
        return 0 if report["summary"]["failed"] == 0 else 1
    report = run_campaign(
        procs=args.procs,
        protocols=args.protocols,
        workloads=args.workloads,
        rates=args.rates,
        seeds=args.seeds,
        iters=args.iters,
        pointers=args.pointers,
        ts=args.ts,
        corrupt_rate=args.corrupt_rate,
        stall_rate=args.stall_rate,
        workers=args.workers,
        timeout=args.timeout,
        out=args.out or None,
    )
    return 0 if report["summary"]["failed"] == 0 else 1


def main(argv: list[str] | None = None) -> int:
    return run_from_args(build_parser().parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
