"""Chaos campaigns: fault-rate × workload grids with the auditor as oracle.

A campaign sweeps seeded fault injection (drop + duplicate + delay at the
same per-packet rate, optionally corruption and trap stalls) across
protocols, workloads and seeds, running every grid point through the
parallel sweep runner with a wall-clock budget.  The oracle is the
machine itself: :func:`repro.machine.run_experiment` audits every
directory entry against the coherence invariants after completion, the
liveness watchdog converts silent wedges into structured
:class:`~repro.verify.diagnose.LivenessError` diagnoses, and the runner's
SIGALRM budget reclaims anything that out-waits even the watchdog.  Each
point therefore ends in exactly one of: survival (with recovery-overhead
counters), a coherence violation, a liveness failure, a wall-clock
timeout, or a crash — and the survival report records which.

Every point replays bit-identically from its row in the report: build the
same :class:`~repro.machine.AlewifeConfig` (protocol, seed, rates) and
run the same workload, e.g.::

    python -m repro faults --protocols limited --workloads weather \
        --rates 1e-3 --seeds 3

which re-runs just that cell of the grid.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Sequence

from ..machine import AlewifeConfig
from ..sweep.cache import ResultCache
from ..sweep.runner import JobResult, ProgressPrinter, run_jobs
from ..sweep.spec import Job, WorkloadSpec

DEFAULT_PROTOCOLS = ("fullmap", "limited", "limitless")
DEFAULT_WORKLOADS = ("weather", "synthetic")

#: Recovery and fault-activity counters surfaced per grid point: how much
#: protocol-level retry machinery each survival actually cost.
RECOVERY_COUNTERS = (
    "cache.request_retx",
    "cache.writeback_retx",
    "cache.wb_reanswers",
    "cache.stray_fills",
    "cache.stray_dacks",
    "dir.inv_retx",
    "dir.broadcast_reconstructs",
    "dir.ownerless_reads",
    "nic.crc_drops",
    "faults.dropped",
    "faults.duplicated",
    "faults.delayed",
    "faults.corrupted",
    "faults.trap_stalls",
)


def workload_spec(name: str, procs: int, iters: int) -> WorkloadSpec:
    """The campaign's parameterization of one named workload.

    Mirrors the ``repro run`` CLI's scaling (``iters`` plays the role of
    ``--iterations``) so a campaign cell can be cross-checked against a
    single interactive run.
    """
    params = {
        "weather": {"iterations": iters},
        "synthetic": {
            "worker_sets": [[2, 4], [max(2, procs // 2), 1]],
            "rounds": iters,
        },
        "multigrid": {},
        "hotspot": {"rounds": iters},
        "migratory": {"rounds": max(1, iters // 2)},
        "producer-consumer": {"epochs": iters},
        "matmul": {"sweeps": max(1, iters // 2)},
        "butterfly": {"sweeps": max(1, iters // 2)},
        "latency": {"total_accesses_per_proc": 12 * iters},
    }.get(name)
    if params is None:
        raise ValueError(f"no campaign parameterization for workload {name!r}")
    return WorkloadSpec(name, params)


def campaign_jobs(
    *,
    procs: int = 16,
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    rates: Sequence[float] = (1e-3,),
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    iters: int = 2,
    pointers: int = 4,
    ts: int = 50,
    corrupt_rate: float = 0.0,
    stall_rate: float = 0.0,
) -> list[Job]:
    """The full campaign grid: rate × workload × protocol × seed."""
    jobs: list[Job] = []
    for rate in rates:
        for wname in workloads:
            spec = workload_spec(wname, procs, iters)
            for protocol in protocols:
                for seed in seeds:
                    config = AlewifeConfig(
                        n_procs=procs,
                        protocol=protocol,
                        pointers=pointers,
                        ts=ts,
                        seed=seed,
                        fault_drop_rate=rate,
                        fault_dup_rate=rate,
                        fault_delay_rate=rate,
                        fault_corrupt_rate=corrupt_rate,
                        fault_stall_rate=stall_rate,
                    )
                    label = f"{protocol}/{wname}@{rate:g}#s{seed}"
                    jobs.append(Job(label, config, spec))
    return jobs


def classify_error(error: str | None) -> str:
    """Bucket a grid point's outcome for the survival summary."""
    if error is None:
        return "survived"
    if "CoherenceViolation" in error:
        return "violation"
    if "LivenessError" in error:
        return "liveness"
    if "JobTimeout" in error:
        return "timeout"
    return "crash"


def _point_record(result: JobResult) -> dict:
    cfg = result.job.config
    record = {
        "label": result.job.label,
        "protocol": cfg.protocol,
        "workload": result.job.workload.name,
        "rate": cfg.fault_drop_rate,
        "seed": cfg.seed,
        "outcome": classify_error(result.error),
        "error": result.error,
        "wall_seconds": round(result.wall_seconds, 3),
    }
    if result.stats is not None:
        counters = result.stats.counters
        retx = (
            counters.get("cache.request_retx")
            + counters.get("cache.writeback_retx")
            + counters.get("dir.inv_retx")
        )
        record.update(
            cycles=result.stats.cycles,
            traps=result.stats.traps_taken,
            packets=result.stats.network.packets,
            entries_audited=result.stats.entries_audited,
            retransmissions=retx,
            recovery={
                name: counters.get(name)
                for name in RECOVERY_COUNTERS
                if counters.get(name)
            },
        )
    return record


def run_campaign(
    *,
    procs: int = 16,
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    rates: Sequence[float] = (1e-3,),
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    iters: int = 2,
    pointers: int = 4,
    ts: int = 50,
    corrupt_rate: float = 0.0,
    stall_rate: float = 0.0,
    workers: int = 1,
    timeout: float | None = 120.0,
    cache: ResultCache | None = None,
    out: Path | str | None = "BENCH_faults.json",
    echo: Callable[[str], None] = print,
) -> dict:
    """Run the chaos grid and return the ``BENCH_faults.json`` record."""
    jobs = campaign_jobs(
        procs=procs,
        protocols=protocols,
        workloads=workloads,
        rates=rates,
        seeds=seeds,
        iters=iters,
        pointers=pointers,
        ts=ts,
        corrupt_rate=corrupt_rate,
        stall_rate=stall_rate,
    )
    echo(
        f"repro faults: chaos campaign, {len(jobs)} grid points on "
        f"{procs} processors ({len(list(protocols))} protocols x "
        f"{len(list(workloads))} workloads x {len(list(rates))} rates x "
        f"{len(list(seeds))} seeds), {workers} worker(s)"
    )
    start = time.perf_counter()
    results = run_jobs(
        jobs,
        workers=workers,
        cache=cache,
        progress=ProgressPrinter(),
        timeout=timeout,
        on_error="record",
    )
    wall = time.perf_counter() - start

    points = [_point_record(r) for r in results]
    outcomes = {"survived": 0, "violation": 0, "liveness": 0, "timeout": 0, "crash": 0}
    for point in points:
        outcomes[point["outcome"]] += 1
    survived = outcomes["survived"]
    failed = len(points) - survived

    by_protocol: dict[str, dict[str, int]] = {}
    for point in points:
        row = by_protocol.setdefault(point["protocol"], {"points": 0, "survived": 0})
        row["points"] += 1
        row["survived"] += point["outcome"] == "survived"

    echo("")
    for protocol, row in by_protocol.items():
        echo(f"  {protocol:12s} {row['survived']}/{row['points']} survived")
    echo(
        f"\n{survived}/{len(points)} grid points survived in {wall:.1f}s wall "
        f"(violations {outcomes['violation']}, liveness {outcomes['liveness']}, "
        f"timeouts {outcomes['timeout']}, crashes {outcomes['crash']})"
    )
    for point in points:
        if point["outcome"] != "survived":
            echo(f"  FAILED {point['label']}: {point['error']}")

    artifact = {
        "suite": "faults",
        "procs": procs,
        "protocols": list(protocols),
        "workloads": list(workloads),
        "rates": list(rates),
        "seeds": list(seeds),
        "iters": iters,
        "corrupt_rate": corrupt_rate,
        "stall_rate": stall_rate,
        "timeout": timeout,
        "workers": workers,
        "wall_seconds": round(wall, 3),
        "summary": {
            "points": len(points),
            "survived": survived,
            "failed": failed,
            "outcomes": outcomes,
            "by_protocol": by_protocol,
        },
        "points": points,
    }
    if out:
        Path(out).write_text(json.dumps(artifact, indent=2))
        echo(f"wrote {out}")
    return artifact
