"""Liveness watchdog: catch quiescence stalls *during* a run.

Without it, a wedged machine (a dropped packet whose retry path failed, a
lost invalidation acknowledgment) silently burns cycles until
``max_cycles``.  The watchdog samples a forward-progress signature — the
total instructions retired across every hardware context plus the count of
finished processors — every ``interval`` cycles.  Retry traffic, timer
ticks, and spinning synchronization do not advance the signature, so a
machine that is merely *busy* but not *progressing* is flagged after
``patience`` unchanged samples, and the failure surfaces as a
:class:`~repro.verify.diagnose.LivenessError` carrying the full structured
diagnosis instead of a timeout.
"""

from __future__ import annotations

from ..verify.diagnose import LivenessError, diagnose


class LivenessWatchdog:
    """Periodic forward-progress checker for one machine."""

    def __init__(self, machine, interval: int, patience: int = 3) -> None:
        self.machine = machine
        self.interval = interval
        self.patience = patience
        self.stalled_samples = 0
        self.checks = 0
        self._last_signature: tuple[int, int] | None = None
        self._on_tick = self._tick
        machine.sim.post_after(interval, self._on_tick, None)

    def _signature(self) -> tuple[int, int]:
        retired = 0
        finished = 0
        for node in self.machine.nodes:
            proc = node.processor
            if proc.done:
                finished += 1
            for ctx in proc.contexts:
                retired += ctx.ops_executed
        return (finished, retired)

    def _tick(self, _arg) -> None:
        machine = self.machine
        signature = self._signature()
        self.checks += 1
        if signature[0] == len(machine.nodes):
            return  # everyone finished; let the simulation drain
        if signature == self._last_signature:
            self.stalled_samples += 1
            if self.stalled_samples >= self.patience:
                raise LivenessError(
                    f"no forward progress for {self.stalled_samples} "
                    f"consecutive {self.interval}-cycle watchdog intervals",
                    diagnose(machine),
                )
        else:
            self.stalled_samples = 0
            self._last_signature = signature
        machine.sim.post_after(self.interval, self._on_tick, None)
