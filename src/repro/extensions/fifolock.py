"""§6 extension: the FIFO lock data type.

"A FIFO lock data type provides another example; the trap handler can
buffer write requests for a programmer-specified variable and grant the
requests on a first-come, first-serve basis."

A flagged block is placed in Trap-Always mode; while a transaction is open
on it, incoming read/write requests are *buffered* by the trap handler in
arrival order instead of being bounced with BUSY.  Contending processors
therefore acquire a test-and-set lock in request-arrival order with no
retry storm, instead of in whatever order the BUSY/backoff race happens to
produce.
"""

from __future__ import annotations

from ..coherence.states import MetaState


def make_fifo_block(machine, addr: int) -> int:
    """Give the block containing ``addr`` FIFO write-grant semantics.

    Requires a software-extended protocol.  Returns the block address.
    Call before ``machine.run``.
    """
    block = machine.space.block_of(addr)
    home = machine.space.home_of(block)
    node = machine.nodes[home]
    if node.software is None:
        raise ValueError(
            "FIFO locks need a software-extended protocol "
            "(limitless or trap_always)"
        )
    entry = node.directory_controller.directory.entry(block)
    entry.meta = MetaState.TRAP_ALWAYS
    node.software.fifo_blocks.add(block)
    return block


def fifo_grants(machine, block: int) -> int:
    """How many requests were FIFO-buffered for ``block``'s home node."""
    home = machine.space.home_of(block)
    return machine.nodes[home].counters.get("limitless.fifo_buffered")
