"""§6 extensions: profiling, FIFO locks, update-mode coherence, plus the
§4.2 IPI message-passing path."""

from .fifolock import fifo_grants, make_fifo_block
from .messaging import Mailbox, ReceivedMessage, open_mailboxes, send_message
# canonical home is repro.profiling now; .profiling here is a warning shim
from ..profiling.memory import MemoryProfiler, overflow_worker_sets, profile_blocks
from .update import make_update_block, updates_propagated

__all__ = [
    "Mailbox",
    "MemoryProfiler",
    "ReceivedMessage",
    "fifo_grants",
    "make_fifo_block",
    "make_update_block",
    "open_mailboxes",
    "overflow_worker_sets",
    "profile_blocks",
    "send_message",
    "updates_propagated",
]
