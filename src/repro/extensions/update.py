"""§6 extension: update-mode coherence objects.

"The directory trap modes can also be used to construct objects that
update (rather than invalidate) cached copies after they are modified."

A flagged block keeps its sharer set across writes: a store applies to the
writer's read-only copy and writes through to the home node, whose trap
handler stores the new data to memory and pushes it (``UPDATE_DATA``) to
every other sharer.  Readers never take an invalidation miss; the cost is
one data-bearing message per sharer per write — the classic
update-vs-invalidate trade, now selectable per object as §6 proposes.

Update-mode objects are weakly ordered (the writer continues before the
updates land), so they suit convergence-style data, not synchronization.
Use plain loads and stores on them — atomics still need exclusivity.
"""

from __future__ import annotations

from ..coherence.states import MetaState


def make_update_block(machine, addr: int) -> int:
    """Give the block containing ``addr`` update-mode coherence.

    Flags the block at its home directory (Trap-Always) and on every
    cache controller (stores become write-throughs).  Requires a
    software-extended protocol.  Call before ``machine.run``.
    """
    block = machine.space.block_of(addr)
    home = machine.space.home_of(block)
    home_node = machine.nodes[home]
    if home_node.software is None:
        raise ValueError(
            "update-mode objects need a software-extended protocol "
            "(limitless or trap_always)"
        )
    entry = home_node.directory_controller.directory.entry(block)
    entry.meta = MetaState.TRAP_ALWAYS
    home_node.software.update_blocks.add(block)
    for node in machine.nodes:
        node.cache_controller.update_blocks.add(block)
    return block


def updates_propagated(machine, block: int) -> int:
    """Total UPDATE_DATA pushes performed by ``block``'s home node."""
    home = machine.space.home_of(block)
    return machine.nodes[home].counters.get("limitless.updates_propagated")
