"""Deprecated shim: the §6 memory profiler moved to :mod:`repro.profiling`.

The profiling layer was unified behind ``repro profile``; import
:class:`MemoryProfiler`, :func:`profile_blocks` and
:func:`overflow_worker_sets` from :mod:`repro.profiling` (or keep using the
:mod:`repro.extensions` package re-exports, which do not warn).
"""

from __future__ import annotations

import warnings

from ..profiling.memory import (  # noqa: F401  (re-exports)
    MemoryProfiler,
    TransactionRecord,
    overflow_worker_sets,
    profile_blocks,
)

warnings.warn(
    "repro.extensions.profiling is deprecated; use repro.profiling "
    "(the `repro profile` subcommand's library layer) instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = [
    "MemoryProfiler",
    "TransactionRecord",
    "overflow_worker_sets",
    "profile_blocks",
]
