"""Interprocessor messaging over the IPI interface (§4.2).

"Not only can it be used to send and receive cache protocol packets, but it
can also be used to send preemptive messages to remote processors (as in
message-passing machines). ... This store-back capability permits
message-passing and block-transfers in addition to enabling the processing
of protocol packets with data."

This extension provides that path on the simulated machine: a sender
launches an interrupt-class packet (optionally carrying data words); the
destination's IPI input queue raises a trap; the receiving handler runs on
the destination *processor* (charged ``handler_cycles``), can examine the
header and operands, and can store the data portion back to local memory —
exactly the §4.2 reception model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..mem.memory import BlockData
from ..network.packet import Packet, interrupt_packet


@dataclass
class ReceivedMessage:
    """One delivered interprocessor message."""

    cycle: int
    src: int
    opcode: str
    meta: dict
    data_words: list[int]


@dataclass
class Mailbox:
    """Per-node software message log plus optional user callback."""

    node_id: int
    messages: list[ReceivedMessage] = field(default_factory=list)
    on_message: Callable[[ReceivedMessage], None] | None = None


def open_mailboxes(machine, *, handler_cycles: int = 25) -> dict[int, Mailbox]:
    """Install an IPI message handler on every node.

    On software-extended protocols (``limitless``, ``trap_always``) the
    handler shares the LimitLESS trap path; on hardware-only protocols it
    attaches directly to the NIC trap hook.  Returns one mailbox per node.
    Call before ``machine.run``.
    """
    mailboxes: dict[int, Mailbox] = {}
    for node in machine.nodes:
        mailbox = Mailbox(node.node_id)
        mailboxes[node.node_id] = mailbox

        def deliver(packet: Packet, _node=node, _mailbox=mailbox) -> None:
            message = ReceivedMessage(
                cycle=_node.processor.now,
                src=packet.src,
                opcode=packet.opcode,
                meta=dict(packet.meta),
                data_words=list(packet.data.words) if packet.data else [],
            )
            # Store-back: a message carrying data words lands in local
            # memory at the address named by the 'store_to' operand.
            store_to = packet.meta.get("store_to")
            if store_to is not None and packet.data is not None:
                block = machine.space.block_of(store_to)
                _node.memory.write_block(block, packet.data.copy())
            _mailbox.messages.append(message)
            if _mailbox.on_message is not None:
                _mailbox.on_message(message)

        if node.software is not None:
            node.software.interrupt_handler = deliver
        else:
            # Hardware-only protocol: handle the IPI queue directly, still
            # charging the destination processor for the trap.
            def trap_hook(_node=node, _deliver=deliver) -> None:
                def consume() -> None:
                    _deliver(_node.nic.ipi_pop())

                _node.processor.request_trap(handler_cycles, consume)

            node.nic.set_trap_handler(trap_hook)
    return mailboxes


def send_message(
    machine,
    src: int,
    dst: int,
    *,
    opcode: str = "IPI",
    payload_words: list[int] | None = None,
    store_to: int | None = None,
    **meta,
) -> None:
    """Launch an interprocessor message from ``src`` to ``dst``.

    ``payload_words`` become the packet's data portion; ``store_to`` names
    the destination-memory address the receiver stores them to (block
    transfer).  Plain operands travel in ``meta``.
    """
    data = None
    if payload_words is not None:
        words = machine.space.words_per_block
        if len(payload_words) > words:
            raise ValueError(f"payload exceeds one block ({words} words)")
        data = BlockData(words)
        data.words[: len(payload_words)] = payload_words
    if store_to is not None:
        if machine.space.home_of(store_to) != dst:
            raise ValueError("store_to must name memory homed at the receiver")
        meta["store_to"] = store_to
    machine.nodes[src].nic.send(
        interrupt_packet(src, dst, opcode, data=data, **meta)
    )
