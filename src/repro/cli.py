"""Command-line entry point: experiments, model checking, sweeps.

One top-level parser hosts every subcommand (``repro --help`` lists them
all); bare experiment flags still work as an implicit ``run`` for
backward compatibility.

Examples::

    python -m repro --protocol limitless --pointers 4 --ts 50 \
        --workload weather --procs 64
    python -m repro run --workload multigrid --compare fullmap limited limitless
    python -m repro --list
    python -m repro modelcheck --protocol limitless --caches 3
    python -m repro sweep --workers 4 --out BENCH_figures.json
    python -m repro faults --rates 1e-3 --seeds 0 1 2 3 4
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from .backend import backend_names, get_backend
from .coherence.registry import protocol_names
from .machine import AlewifeConfig, run_experiment
from .stats.machine_report import machine_report
from .stats.report import bar_chart, comparison_table
from .workloads import (
    ButterflyWorkload,
    HotSpotWorkload,
    LatencyToleranceWorkload,
    MatmulWorkload,
    MigratoryWorkload,
    MultigridWorkload,
    ProducerConsumerWorkload,
    SyntheticSharingWorkload,
    WeatherWorkload,
    Workload,
)

WORKLOADS: dict[str, Callable[[argparse.Namespace], Workload]] = {
    "weather": lambda a: WeatherWorkload(iterations=a.iterations),
    "weather-optimized": lambda a: WeatherWorkload(
        iterations=a.iterations, optimized=True
    ),
    "multigrid": lambda a: MultigridWorkload(),
    "hotspot": lambda a: HotSpotWorkload(rounds=a.iterations),
    "migratory": lambda a: MigratoryWorkload(rounds=max(1, a.iterations // 2)),
    "producer-consumer": lambda a: ProducerConsumerWorkload(epochs=a.iterations),
    "matmul": lambda a: MatmulWorkload(sweeps=max(1, a.iterations // 2)),
    "synthetic": lambda a: SyntheticSharingWorkload(
        worker_sets=[(2, 4), (a.procs // 2, 1)], rounds=a.iterations
    ),
    "butterfly": lambda a: ButterflyWorkload(sweeps=max(1, a.iterations // 2)),
    "latency": lambda a: LatencyToleranceWorkload(
        total_accesses_per_proc=12 * a.iterations
    ),
}


def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--list", action="store_true", help="list protocols and workloads")
    parser.add_argument("--protocol", default="limitless", choices=protocol_names())
    parser.add_argument(
        "--compare",
        nargs="+",
        metavar="PROTOCOL",
        help="run several protocols on the same workload and chart them",
    )
    parser.add_argument("--workload", default="weather", choices=sorted(WORKLOADS))
    parser.add_argument("--procs", type=int, default=64)
    parser.add_argument("--pointers", type=int, default=4)
    parser.add_argument("--ts", type=int, default=50)
    parser.add_argument("--iterations", type=int, default=5)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--topology",
        default="mesh",
        choices=["mesh", "torus", "omega", "crossbar", "ideal"],
    )
    parser.add_argument("--memory-model", default="sc", choices=["sc", "wo"])
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition the machine into N lock-step shards (1 = serial)",
    )
    parser.add_argument(
        "--shard-workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for a sharded run (1 = step all shards "
        "in-process; default: one process per shard)",
    )
    parser.add_argument(
        "--fabric",
        default="auto",
        choices=["auto", "atomic", "staged"],
        help="network arbitration model (auto: atomic when serial, "
        "staged when sharded)",
    )
    parser.add_argument(
        "--backend",
        default="reference",
        choices=list(backend_names()),
        help="simulation backend: 'reference' is the pure-Python golden "
        "object model, 'soa' the structure-of-arrays + batched-events "
        "engine, 'native' the compiled C kernels (falls back to soa when "
        "the extension is not built; bit-identical results either way, "
        "see docs/BACKENDS.md)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="CYCLES",
        help="write a resume snapshot every N simulated cycles "
        "(sharded runs snapshot at the first window boundary past each "
        "deadline and step in-process)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="snapshot directory (default: ./checkpoints)",
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="SNAPSHOT",
        help="resume from a snapshot file: replays the run it records "
        "(its own config + workload; other experiment flags are ignored) "
        "and verifies the state digest at the marker",
    )
    parser.add_argument("--verbose", action="store_true", help="print counters")


def build_parser() -> argparse.ArgumentParser:
    """The single-experiment (``run``) flag parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LimitLESS directories reproduction: run one experiment.",
    )
    _add_run_arguments(parser)
    return parser


#: Subcommands hosted by the top-level parser.
COMMANDS = ("run", "modelcheck", "sweep", "faults", "profile", "serve")


def build_top_parser() -> argparse.ArgumentParser:
    """Top-level parser: ``repro --help`` lists every subcommand."""
    from .faults import cli as faults_cli
    from .modelcheck import cli as modelcheck_cli
    from .profiling import cli as profiling_cli
    from .serve import cli as serve_cli
    from .sweep import cli as sweep_cli

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "LimitLESS directories reproduction. Bare experiment flags "
            "(e.g. `repro --protocol limitless`) run as an implicit `run`."
        ),
    )
    sub = parser.add_subparsers(
        dest="command", metavar="{run,modelcheck,sweep,faults,profile,serve}"
    )
    run_parser = sub.add_parser(
        "run", help="run one experiment (the default subcommand)"
    )
    _add_run_arguments(run_parser)
    run_parser.set_defaults(func=_run_from_args)
    mc_parser = sub.add_parser(
        "modelcheck",
        help="exhaustively model-check the coherence protocols",
        description=modelcheck_cli.DESCRIPTION,
    )
    modelcheck_cli.add_arguments(mc_parser)
    mc_parser.set_defaults(func=modelcheck_cli.run_from_args)
    sweep_parser = sub.add_parser(
        "sweep",
        help="parallel cached sweep of the paper's figure grids",
    )
    sweep_cli.add_arguments(sweep_parser)
    sweep_parser.set_defaults(func=sweep_cli.run_from_args)
    faults_parser = sub.add_parser(
        "faults",
        help="seeded chaos campaigns with the invariant auditor as oracle",
        description=faults_cli.DESCRIPTION,
    )
    faults_cli.add_arguments(faults_parser)
    faults_parser.set_defaults(func=faults_cli.run_from_args)
    profile_parser = sub.add_parser(
        "profile",
        help="profile one run: hot functions, allocations, cycle attribution",
        description=profiling_cli.DESCRIPTION,
    )
    profiling_cli.add_arguments(profile_parser)
    profile_parser.set_defaults(func=profiling_cli.run_from_args)
    serve_parser = sub.add_parser(
        "serve",
        help="long-running simulation-as-a-service HTTP job server",
        description=serve_cli.DESCRIPTION,
    )
    serve_cli.add_arguments(serve_parser)
    serve_parser.set_defaults(func=serve_cli.run_from_args)
    return parser


def _workload_spec(args: argparse.Namespace):
    """The declarative :class:`WorkloadSpec` matching ``WORKLOADS[args.workload]``.

    Checkpoint snapshots must record a *rebuildable* workload description,
    not a live generator, so the checkpointed run path goes through the
    same registry the sweep layer uses.
    """
    from .sweep.spec import WorkloadSpec

    a = args
    params: dict = {
        "weather": {"iterations": a.iterations},
        "weather-optimized": {"iterations": a.iterations, "optimized": True},
        "multigrid": {},
        "hotspot": {"rounds": a.iterations},
        "migratory": {"rounds": max(1, a.iterations // 2)},
        "producer-consumer": {"epochs": a.iterations},
        "matmul": {"sweeps": max(1, a.iterations // 2)},
        "synthetic": {
            "worker_sets": [[2, 4], [a.procs // 2, 1]],
            "rounds": a.iterations,
        },
        "butterfly": {"sweeps": max(1, a.iterations // 2)},
        "latency": {"total_accesses_per_proc": 12 * a.iterations},
    }[a.workload]
    name = "weather" if a.workload == "weather-optimized" else a.workload
    return WorkloadSpec(name, params)


def _config(args: argparse.Namespace, protocol: str) -> AlewifeConfig:
    return AlewifeConfig(
        n_procs=args.procs,
        protocol=protocol,
        pointers=args.pointers,
        ts=args.ts,
        topology=args.topology,
        memory_model=args.memory_model,
        seed=args.seed,
        shards=args.shards,
        fabric=args.fabric,
        backend=args.backend,
    )


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in COMMANDS or argv[:1] in (["-h"], ["--help"]):
        args = build_top_parser().parse_args(argv)
        return args.func(args)
    # Bare experiment flags: implicit `run`.
    return _run_from_args(build_parser().parse_args(argv))


def _run_from_args(args: argparse.Namespace) -> int:
    if args.list:
        print("protocols: " + ", ".join(protocol_names()))
        print("workloads: " + ", ".join(sorted(WORKLOADS)))
        return 0

    workload = WORKLOADS[args.workload](args)
    protocols = args.compare or [args.protocol]
    for name in protocols:
        if name not in protocol_names():
            print(f"unknown protocol {name!r}", file=sys.stderr)
            return 2

    checkpointing = args.resume or args.checkpoint_every
    if checkpointing and args.compare:
        print(
            "--compare cannot be combined with --checkpoint-every/--resume "
            "(snapshots record exactly one run)",
            file=sys.stderr,
        )
        return 2

    runs = []
    for name in protocols:
        if checkpointing:
            from .recover import CheckpointError, resume_run, run_with_checkpoints

            try:
                if args.resume:
                    stats = resume_run(
                        args.resume,
                        every=args.checkpoint_every,
                        out_dir=args.checkpoint_dir,
                    )
                else:
                    stats = run_with_checkpoints(
                        _config(args, name),
                        _workload_spec(args),
                        every=args.checkpoint_every,
                        out_dir=args.checkpoint_dir or "checkpoints",
                    )
            except (CheckpointError, ValueError, OSError) as exc:
                # CheckpointError covers drift; ValueError/OSError cover an
                # unreadable or wrong-version snapshot file.
                print(f"checkpoint error: {exc}", file=sys.stderr)
                return 3
        else:
            stats = run_experiment(
                _config(args, name), workload, shard_workers=args.shard_workers
            )
        runs.append(stats)
        print(stats.summary())
        backend_notes = get_backend(stats.config.backend).notes
        if backend_notes:
            print(f"  backend: {backend_notes}")
        if stats.shard_meta:
            m = stats.shard_meta
            batching = (
                f", {m['bytes']:,} bytes in {m['flushes']:,} flushes"
                if m.get("flushes")
                else ""
            )
            print(
                f"  shards: {m['shards']} x {m['workers']} worker(s), "
                f"{m['windows']:,} windows, {m['handoffs']:,} handoffs"
                f"{batching}"
            )
        if args.verbose:
            print()
            print(machine_report(stats))
            print()

    if len(runs) > 1:
        print()
        print(comparison_table(runs))
        print()
        print(
            bar_chart(
                f"{workload.describe()} on {args.procs} processors",
                [(s.label, s.mcycles()) for s in runs],
            )
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
