"""Command-line experiment runner.

Examples::

    python -m repro --protocol limitless --pointers 4 --ts 50 \
        --workload weather --procs 64
    python -m repro --workload multigrid --compare fullmap limited limitless
    python -m repro --list
    python -m repro modelcheck --protocol limitless --caches 3
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from .coherence.registry import protocol_names
from .machine import AlewifeConfig, run_experiment
from .stats.machine_report import machine_report
from .stats.report import bar_chart, comparison_table
from .workloads import (
    ButterflyWorkload,
    HotSpotWorkload,
    LatencyToleranceWorkload,
    MatmulWorkload,
    MigratoryWorkload,
    MultigridWorkload,
    ProducerConsumerWorkload,
    SyntheticSharingWorkload,
    WeatherWorkload,
    Workload,
)

WORKLOADS: dict[str, Callable[[argparse.Namespace], Workload]] = {
    "weather": lambda a: WeatherWorkload(iterations=a.iterations),
    "weather-optimized": lambda a: WeatherWorkload(
        iterations=a.iterations, optimized=True
    ),
    "multigrid": lambda a: MultigridWorkload(),
    "hotspot": lambda a: HotSpotWorkload(rounds=a.iterations),
    "migratory": lambda a: MigratoryWorkload(rounds=max(1, a.iterations // 2)),
    "producer-consumer": lambda a: ProducerConsumerWorkload(epochs=a.iterations),
    "matmul": lambda a: MatmulWorkload(sweeps=max(1, a.iterations // 2)),
    "synthetic": lambda a: SyntheticSharingWorkload(
        worker_sets=[(2, 4), (a.procs // 2, 1)], rounds=a.iterations
    ),
    "butterfly": lambda a: ButterflyWorkload(sweeps=max(1, a.iterations // 2)),
    "latency": lambda a: LatencyToleranceWorkload(
        total_accesses_per_proc=12 * a.iterations
    ),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LimitLESS directories reproduction: run one experiment.",
    )
    parser.add_argument("--list", action="store_true", help="list protocols and workloads")
    parser.add_argument("--protocol", default="limitless", choices=protocol_names())
    parser.add_argument(
        "--compare",
        nargs="+",
        metavar="PROTOCOL",
        help="run several protocols on the same workload and chart them",
    )
    parser.add_argument("--workload", default="weather", choices=sorted(WORKLOADS))
    parser.add_argument("--procs", type=int, default=64)
    parser.add_argument("--pointers", type=int, default=4)
    parser.add_argument("--ts", type=int, default=50)
    parser.add_argument("--iterations", type=int, default=5)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--topology",
        default="mesh",
        choices=["mesh", "torus", "omega", "crossbar", "ideal"],
    )
    parser.add_argument("--memory-model", default="sc", choices=["sc", "wo"])
    parser.add_argument("--verbose", action="store_true", help="print counters")
    return parser


def _config(args: argparse.Namespace, protocol: str) -> AlewifeConfig:
    return AlewifeConfig(
        n_procs=args.procs,
        protocol=protocol,
        pointers=args.pointers,
        ts=args.ts,
        topology=args.topology,
        memory_model=args.memory_model,
        seed=args.seed,
    )


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "modelcheck":
        # Exhaustive verification lives in its own subcommand so the
        # experiment flags above stay untouched.
        from .modelcheck.cli import main as modelcheck_main

        return modelcheck_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.list:
        print("protocols: " + ", ".join(protocol_names()))
        print("workloads: " + ", ".join(sorted(WORKLOADS)))
        return 0

    workload = WORKLOADS[args.workload](args)
    protocols = args.compare or [args.protocol]
    for name in protocols:
        if name not in protocol_names():
            print(f"unknown protocol {name!r}", file=sys.stderr)
            return 2

    runs = []
    for name in protocols:
        stats = run_experiment(_config(args, name), workload)
        runs.append(stats)
        print(stats.summary())
        if args.verbose:
            print()
            print(machine_report(stats))
            print()

    if len(runs) > 1:
        print()
        print(comparison_table(runs))
        print()
        print(
            bar_chart(
                f"{workload.describe()} on {args.procs} processors",
                [(s.label, s.mcycles()) for s in runs],
            )
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
