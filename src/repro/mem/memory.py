"""Per-node main memory holding real block data.

The reproduction carries actual word values through the coherence protocol
(RDATA/WDATA/UPDATE/REPM messages transport block contents).  This makes the
simulated synchronization real — barriers spin on values that the protocol
delivered — and doubles as a correctness oracle for the protocol tests.
"""

from __future__ import annotations

from .address import AddressSpace


class BlockData:
    """Contents of one coherence block: a small tuple of words."""

    __slots__ = ("words",)

    def __init__(self, n_words: int, fill: int = 0) -> None:
        self.words = [fill] * n_words

    def copy(self) -> "BlockData":
        clone = BlockData(0)
        clone.words = list(self.words)
        return clone

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BlockData) and self.words == other.words

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BlockData({self.words})"


class MainMemory:
    """The shared-memory slice held by one node.

    Blocks materialize on first touch with zero-filled words, mirroring
    zero-initialized shared memory.
    """

    def __init__(self, space: AddressSpace, node_id: int) -> None:
        self.space = space
        self.node_id = node_id
        self._blocks: dict[int, BlockData] = {}

    def block(self, block_addr: int) -> BlockData:
        """Return the live block at ``block_addr`` (home-checked)."""
        if self.space.home_of(block_addr) != self.node_id:
            raise ValueError(
                f"block {block_addr:#x} is not homed at node {self.node_id}"
            )
        data = self._blocks.get(block_addr)
        if data is None:
            data = BlockData(self.space.words_per_block)
            self._blocks[block_addr] = data
        return data

    def read_block(self, block_addr: int) -> BlockData:
        """A snapshot copy of the block (what a data message carries)."""
        return self.block(block_addr).copy()

    def write_block(self, block_addr: int, data: BlockData) -> None:
        """Overwrite the block with ``data`` (a write-back landing)."""
        self.block(block_addr).words = list(data.words)

    def peek_word(self, addr: int) -> int:
        """Directly read a word (test/debug oracle, no protocol)."""
        block = self.block(self.space.block_of(addr))
        return block.words[self.space.word_in_block(addr)]

    def poke_word(self, addr: int, value: int) -> None:
        """Directly write a word (test/debug, no protocol)."""
        block = self.block(self.space.block_of(addr))
        block.words[self.space.word_in_block(addr)] = value

    @property
    def touched_blocks(self) -> int:
        return len(self._blocks)
