"""Address space and home-node mapping.

Alewife distributes globally shared memory among the processing nodes: each
node holds a slice of shared memory plus the directory entries for the
blocks it homes.  We encode the home node in the high bits of the (byte)
address, so ``home_of`` is a shift — the same effect as Alewife's
per-node 4 MB memory segments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

WORD_BYTES = 4


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class AddressSpace:
    """Shared-memory geometry: block size and per-node segment size.

    ``block_bytes`` is the coherence unit (16 bytes in Alewife).
    ``segment_bytes`` is the shared memory held by each node (4 MB in
    Alewife; smaller in tests).
    """

    n_nodes: int
    block_bytes: int = 16
    segment_bytes: int = 1 << 22

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("need at least one node")
        if not _is_power_of_two(self.block_bytes):
            raise ValueError("block size must be a power of two")
        if self.block_bytes % WORD_BYTES:
            raise ValueError("block size must be a whole number of words")
        if not _is_power_of_two(self.segment_bytes):
            raise ValueError("segment size must be a power of two")
        if self.segment_bytes < self.block_bytes:
            raise ValueError("segment smaller than a block")
        # Cache the derived geometry: home_of/block_of sit on the
        # per-memory-access hot path and would otherwise recompute these
        # property values on every call (object.__setattr__ because the
        # dataclass is frozen).
        object.__setattr__(
            self, "_segment_shift", self.segment_bytes.bit_length() - 1
        )
        object.__setattr__(self, "_block_mask", ~(self.block_bytes - 1))

    # -- geometry ------------------------------------------------------

    @property
    def words_per_block(self) -> int:
        return self.block_bytes // WORD_BYTES

    @property
    def segment_shift(self) -> int:
        return self._segment_shift

    @property
    def block_mask(self) -> int:
        return self._block_mask

    # -- decomposition -------------------------------------------------

    def home_of(self, addr: int) -> int:
        """Node that homes ``addr`` (holds its memory + directory entry)."""
        home = addr >> self._segment_shift
        if not 0 <= home < self.n_nodes:
            raise ValueError(f"address {addr:#x} outside shared memory")
        return home

    def block_of(self, addr: int) -> int:
        """Block-aligned base address containing ``addr``."""
        return addr & self._block_mask

    def word_in_block(self, addr: int) -> int:
        """Word index of ``addr`` within its block."""
        return (addr & (self.block_bytes - 1)) // WORD_BYTES

    def address(self, home: int, offset: int) -> int:
        """Byte address at ``offset`` within ``home``'s segment."""
        if not 0 <= home < self.n_nodes:
            raise ValueError(f"home {home} out of range")
        if not 0 <= offset < self.segment_bytes:
            raise ValueError(f"offset {offset:#x} outside segment")
        return (home << self.segment_shift) | offset

    def blocks_in_segment(self) -> int:
        return self.segment_bytes // self.block_bytes


@dataclass
class Allocation:
    """A named region of shared memory."""

    name: str
    base: int
    n_bytes: int
    home: int

    def word(self, index: int = 0) -> int:
        """Byte address of the ``index``-th word of the allocation."""
        addr = self.base + index * WORD_BYTES
        if addr >= self.base + self.n_bytes:
            raise IndexError(f"{self.name}[{index}] out of bounds")
        return addr


@dataclass
class Allocator:
    """Bump allocator over each node's shared segment.

    Workload generators use it to place variables on specific home nodes
    (matching the paper's static data distribution) and, by default, to give
    each allocation its own coherence block so unrelated variables do not
    false-share.

    Each home's allocation stream starts at a *staggered* offset
    (``home * stagger_blocks`` coherence blocks).  Without this, the first
    allocation of every node would live at segment offset 0 and all of them
    would collide in the same direct-mapped cache set — an artifact of the
    power-of-two segment size, not of the workloads being modelled.
    """

    space: AddressSpace
    stagger_blocks: int = 17
    _next: dict[int, int] = field(default_factory=dict)
    allocations: list[Allocation] = field(default_factory=list)

    def _start_offset(self, home: int) -> int:
        offset = home * self.stagger_blocks * self.space.block_bytes
        return offset % max(self.space.block_bytes, self.space.segment_bytes // 2)

    def alloc(
        self,
        name: str,
        n_bytes: int,
        *,
        home: int,
        block_aligned: bool = True,
    ) -> Allocation:
        """Allocate ``n_bytes`` on ``home``'s segment."""
        if n_bytes <= 0:
            raise ValueError("allocation must be positive")
        offset = self._next.get(home, self._start_offset(home))
        if block_aligned:
            mask = self.space.block_bytes - 1
            offset = (offset + mask) & ~mask
        end = offset + n_bytes
        if end > self.space.segment_bytes:
            raise MemoryError(f"segment of node {home} exhausted ({name})")
        self._next[home] = end
        allocation = Allocation(name, self.space.address(home, offset), n_bytes, home)
        self.allocations.append(allocation)
        return allocation

    def alloc_words(self, name: str, n_words: int, *, home: int) -> Allocation:
        """Allocate ``n_words`` 4-byte words on ``home``."""
        return self.alloc(name, n_words * WORD_BYTES, home=home)

    def alloc_scalar(self, name: str, *, home: int) -> Allocation:
        """Allocate one word in its own block (no false sharing)."""
        return self.alloc(name, WORD_BYTES, home=home)
