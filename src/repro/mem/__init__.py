"""Shared-memory geometry, allocation, and per-node block storage."""

from .address import WORD_BYTES, AddressSpace, Allocation, Allocator
from .memory import BlockData, MainMemory

__all__ = [
    "WORD_BYTES",
    "AddressSpace",
    "Allocation",
    "Allocator",
    "BlockData",
    "MainMemory",
]
