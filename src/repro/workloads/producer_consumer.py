"""Producer/consumer workload.

One producer fills a buffer of blocks and posts an epoch flag; all
consumers spin on the flag, then read the whole buffer.  The buffer blocks
have a worker-set equal to the consumer count, but unlike the hot-spot
variable they are *rewritten* every epoch — so every protocol pays the
invalidation fan-out and the benefit of extra pointers is bounded.  Used
by tests and ablations to separate "widely read, never written" from
"widely read, frequently written" behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..proc import ops
from .base import Program, Workload


@dataclass
class ProducerConsumerWorkload(Workload):
    """Single producer, many consumers, epoch-flagged buffer handoff."""

    epochs: int = 3
    buffer_words: int = 8
    think_per_epoch: int = 50
    name: str = "producer_consumer"

    def describe(self) -> str:
        return f"producer_consumer(epochs={self.epochs})"

    def build(self, machine) -> dict[int, list[Program]]:
        n = machine.config.n_procs
        alloc = machine.allocator
        poll = machine.config.spin_poll_interval
        flag = alloc.alloc_scalar("pc.flag", home=0)
        done_ctr = alloc.alloc_scalar("pc.done", home=n - 1)
        buffer = alloc.alloc_words("pc.buffer", max(4, self.buffer_words), home=0)
        consumers = max(1, n - 1)

        def producer() -> Program:
            for epoch in range(1, self.epochs + 1):
                for w in range(min(self.buffer_words, 8)):
                    yield ops.store(buffer.word(w), epoch * 100 + w)
                # Release: the buffer must be globally visible before the
                # flag is (a no-op under sequential consistency).
                yield ops.fence()
                yield ops.store(flag.base, epoch)
                yield ops.think(self.think_per_epoch)
                # Wait for every consumer to finish this epoch.
                while True:
                    value = yield ops.load(done_ctr.base)
                    if value >= epoch * consumers:
                        break
                    yield ops.think(poll)
                    yield ops.switch_hint()

        def consumer(p: int) -> Program:
            for epoch in range(1, self.epochs + 1):
                while True:
                    value = yield ops.load(flag.base)
                    if value >= epoch:
                        break
                    yield ops.think(poll)
                    yield ops.switch_hint()
                total = 0
                for w in range(min(self.buffer_words, 8)):
                    total += yield ops.load(buffer.word(w))
                if total <= 0:
                    raise AssertionError(f"consumer {p} read an empty buffer")
                yield ops.think(self.think_per_epoch)
                yield ops.fetch_add(done_ctr.base, 1)

        if n == 1:
            # Degenerate single-node machine: run the phases sequentially
            # (two spinning contexts on one processor would starve each
            # other, since SPARCLE only switches on remote misses).
            def solo() -> Program:
                for epoch in range(1, self.epochs + 1):
                    for w in range(min(self.buffer_words, 8)):
                        yield ops.store(buffer.word(w), epoch * 100 + w)
                    yield ops.fence()
                    yield ops.store(flag.base, epoch)
                    total = 0
                    for w in range(min(self.buffer_words, 8)):
                        total += yield ops.load(buffer.word(w))
                    if total <= 0:
                        raise AssertionError("solo consumer read an empty buffer")
                    yield ops.think(self.think_per_epoch)

            return {0: [solo()]}

        programs: dict[int, list[Program]] = {0: [producer()]}
        for p in range(1, n):
            programs[p] = [consumer(p)]
        return programs
