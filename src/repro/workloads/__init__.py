"""Workloads: the applications the paper evaluates plus microbenchmarks."""

from .base import Program, Workload, one_program_per_proc
from .butterfly import ButterflyWorkload
from .hotspot import HotSpotWorkload
from .latency import LatencyToleranceWorkload
from .trace import Trace, TraceOp, TraceRecorder, TraceReplayWorkload, record_trace
from .matmul import MatmulWorkload
from .migratory import MigratoryWorkload
from .multigrid import MultigridWorkload
from .producer_consumer import ProducerConsumerWorkload
from .synthetic import SyntheticSharingWorkload
from .weather import WeatherWorkload

__all__ = [
    "ButterflyWorkload",
    "HotSpotWorkload",
    "LatencyToleranceWorkload",
    "MatmulWorkload",
    "MigratoryWorkload",
    "MultigridWorkload",
    "ProducerConsumerWorkload",
    "Program",
    "SyntheticSharingWorkload",
    "Trace",
    "TraceOp",
    "TraceRecorder",
    "TraceReplayWorkload",
    "WeatherWorkload",
    "Workload",
    "one_program_per_proc",
    "record_trace",
]
