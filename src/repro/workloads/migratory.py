"""Migratory-object workload.

A data structure that "migrates from processor to processor" (§6 discusses
FIFO eviction for exactly this pattern): a token and its payload travel
round-robin through every processor.  Each hop exercises the
READ_WRITE -> READ/WRITE_TRANSACTION paths (transitions 4, 5, 8 and 10)
rather than wide sharing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..proc import ops
from .base import Program, Workload


@dataclass
class MigratoryWorkload(Workload):
    """A token ring over shared memory."""

    rounds: int = 3
    payload_words: int = 4
    think_per_hop: int = 30
    name: str = "migratory"

    def describe(self) -> str:
        return f"migratory(rounds={self.rounds})"

    def build(self, machine) -> dict[int, list[Program]]:
        n = machine.config.n_procs
        alloc = machine.allocator
        poll = machine.config.spin_poll_interval
        token = alloc.alloc_scalar("mig.token", home=0)
        payload = alloc.alloc_words(
            "mig.payload", max(1, self.payload_words), home=0
        )
        total_hops = self.rounds * n

        def program(p: int) -> Program:
            for my_turn in range(p, total_hops, n):
                # Wait until the token counter reaches this processor's turn.
                while True:
                    value = yield ops.load(token.base)
                    if value >= my_turn:
                        break
                    yield ops.think(poll)
                    yield ops.switch_hint()
                # Own the payload: read-modify-write every word.
                for w in range(min(self.payload_words, 4)):
                    old = yield ops.load(payload.word(w))
                    yield ops.store(payload.word(w), old + 1)
                yield ops.think(self.think_per_hop)
                # Pass the token on (release: payload stores drain first).
                yield ops.fence()
                yield ops.store(token.base, my_turn + 1)

        return {p: [program(p)] for p in range(n)}
