"""Workload framework.

A workload builds, against a concrete machine, one program (generator) per
processor — the reproduction's stand-in for the paper's Mul-T applications
and post-mortem traces (DESIGN.md §2 documents the substitution).  Programs
express computation as ``think`` time and communication as real loads,
stores, and atomics against shared memory, with barriers built from those
same primitives, so every coherence effect the paper measures comes out of
the protocol rather than out of workload bookkeeping.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Generator

if TYPE_CHECKING:  # pragma: no cover
    from ..machine.machine import AlewifeMachine

Program = Generator[tuple, int, None]


class Workload(ABC):
    """Builds per-processor programs for one machine instance."""

    name: str = "workload"

    @abstractmethod
    def build(self, machine: "AlewifeMachine") -> dict[int, list[Program]]:
        """Allocate shared data and return programs keyed by processor id."""

    def describe(self) -> str:
        """One-line description used in reports."""
        return self.name


def one_program_per_proc(
    machine: "AlewifeMachine", make: "callable"
) -> dict[int, list[Program]]:
    """Helper: ``make(proc_id)`` -> generator, one per processor."""
    return {p: [make(p)] for p in range(machine.config.n_procs)}
