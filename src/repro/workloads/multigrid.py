"""The Multigrid workload (paper §5.2, Figure 7).

A statically scheduled multigrid relaxation: processors sweep their strip
of the grid at a sequence of grid levels (fine levels mean more local work,
coarse levels mean less), exchanging only strip-edge values with their
immediate neighbours between sweeps.  Worker-sets are tiny — each edge
value is written by its owner and read by exactly one neighbour — so
limited, LimitLESS, and full-map directories all perform alike: the
paper's Figure 7 result.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..proc import ops
from ..sync.barrier import barrier_wait, build_combining_tree
from .base import Program, Workload


@dataclass
class MultigridWorkload(Workload):
    """Static multigrid relaxation over a strip-partitioned grid."""

    #: V-cycle description: sweeps per level, finest first
    levels: tuple[int, ...] = (2, 2, 2)
    points_per_proc: int = 32
    cycles_per_point: int = 5
    barrier_arity: int = 4
    name: str = "multigrid"

    def describe(self) -> str:
        return f"multigrid(levels={list(self.levels)})"

    def build(self, machine) -> dict[int, list[Program]]:
        n = machine.config.n_procs
        alloc = machine.allocator
        poll = machine.config.spin_poll_interval

        # Strip edges: each processor publishes a left and a right edge
        # value; each is read by exactly one neighbour (worker-set one).
        left_edges = [
            alloc.alloc_scalar(f"mg.left{p}", home=p) for p in range(n)
        ]
        right_edges = [
            alloc.alloc_scalar(f"mg.right{p}", home=p) for p in range(n)
        ]
        strips = [
            alloc.alloc_words(f"mg.strip{p}", max(4, self.points_per_proc), home=p)
            for p in range(n)
        ]
        barrier = build_combining_tree(
            alloc, list(range(n)), arity=self.barrier_arity, name="mg.bar"
        )

        def program(p: int) -> Program:
            strip = strips[p]
            epoch = 0
            for depth, sweeps in enumerate(self.levels):
                # Coarser levels touch a fraction of the points.
                points = max(2, self.points_per_proc >> depth)
                for _sweep in range(sweeps):
                    epoch += 1
                    # Relax this strip: local reads/writes plus think time.
                    for point in range(min(4, points)):
                        value = yield ops.load(strip.word(point))
                        yield ops.store(strip.word(point), value + 1)
                    yield ops.think(points * self.cycles_per_point)

                    # Publish strip edges for the neighbours.
                    yield ops.store(left_edges[p].base, epoch)
                    yield ops.store(right_edges[p].base, epoch)

                    yield from barrier_wait(barrier, p, epoch, poll_interval=poll)

                    # Read one edge from each neighbour.
                    if p > 0:
                        yield ops.load(right_edges[p - 1].base)
                    if p < n - 1:
                        yield ops.load(left_edges[p + 1].base)

        return {p: [program(p)] for p in range(n)}
