"""Latency-tolerance workload (the §2 multithreading story).

"When the system cannot avoid a remote memory request ... the Alewife
processors rapidly schedule another process in place of the stalled
process."  This workload gives each processor a fixed budget of remote
read misses, divided among one to four threads (SPARCLE hardware
contexts): with one context the pipeline idles for every network round
trip; with four, the 11-cycle context switch overlaps the round trips and
the same work finishes roughly twice as fast.

Used by the context-switching ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..proc import ops
from .base import Program, Workload


@dataclass
class LatencyToleranceWorkload(Workload):
    """Independent remote read-miss streams, one per hardware context."""

    threads_per_proc: int = 4
    #: fixed total remote misses per processor, divided among its threads —
    #: more threads means the same work finishes sooner iff latency is hidden
    total_accesses_per_proc: int = 48
    think_between: int = 6
    name: str = "latency_tolerance"

    def describe(self) -> str:
        return (
            f"latency_tolerance(threads={self.threads_per_proc}, "
            f"accesses={self.total_accesses_per_proc})"
        )

    def build(self, machine) -> dict[int, list[Program]]:
        n = machine.config.n_procs
        if self.threads_per_proc > machine.config.max_contexts:
            raise ValueError(
                f"{self.threads_per_proc} threads exceed "
                f"{machine.config.max_contexts} hardware contexts"
            )
        alloc = machine.allocator
        words_per_block = machine.space.words_per_block
        per_thread = max(
            1, self.total_accesses_per_proc // self.threads_per_proc
        )

        # Each (proc, thread) streams once through a private remote array —
        # every access touches a fresh block, so every access is a genuine
        # remote read miss with no sharing and no reuse: pure latency.
        arrays = {}
        for p in range(n):
            for t in range(self.threads_per_proc):
                home = (p + 7 + t * 11) % n
                if home == p:
                    home = (home + 1) % n
                arrays[p, t] = alloc.alloc_words(
                    f"lat.{p}.{t}", per_thread * words_per_block, home=home
                )

        def thread(p: int, t: int) -> Program:
            array = arrays[p, t]
            for i in range(per_thread):
                yield ops.load(array.word(i * words_per_block))
                yield ops.think(self.think_between)

        return {
            p: [thread(p, t) for t in range(self.threads_per_proc)]
            for p in range(n)
        }
