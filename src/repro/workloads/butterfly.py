"""Butterfly-exchange workload (FFT-style).

log2(N) rounds; in round r, processor p exchanges a value with its
butterfly partner p XOR 2^r.  Every shared value has a worker-set of
exactly two processors, but — unlike Multigrid's fixed neighbours — the
*partner changes every round*, so directory pointers never settle.  A good
stress for pointer reuse and a sharing pattern common in real scientific
codes the paper's era evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..proc import ops
from ..sync.barrier import barrier_wait, build_combining_tree
from .base import Program, Workload


@dataclass
class ButterflyWorkload(Workload):
    """FFT-style pairwise exchange with log2(N) rounds."""

    sweeps: int = 2
    cycles_per_stage: int = 20
    barrier_arity: int = 4
    name: str = "butterfly"

    def describe(self) -> str:
        return f"butterfly(sweeps={self.sweeps})"

    def build(self, machine) -> dict[int, list[Program]]:
        n = machine.config.n_procs
        stages = max(1, (n - 1).bit_length())
        if (1 << stages) != n:
            raise ValueError("butterfly needs a power-of-two processor count")
        alloc = machine.allocator
        poll = machine.config.spin_poll_interval

        # One published slot per processor per stage (its outgoing value).
        slots = {
            (p, s): alloc.alloc_scalar(f"fft.{p}.{s}", home=p)
            for p in range(n)
            for s in range(stages)
        }
        barrier = build_combining_tree(
            alloc, list(range(n)), arity=self.barrier_arity, name="fft.bar"
        )

        def program(p: int) -> Program:
            value = p + 1
            epoch = 0
            for sweep in range(self.sweeps):
                for stage in range(stages):
                    partner = p ^ (1 << stage)
                    # publish my value for this stage
                    yield ops.store(slots[p, stage].base, value)
                    epoch += 1
                    yield from barrier_wait(barrier, p, epoch, poll_interval=poll)
                    # combine with the partner's published value
                    other = yield ops.load(slots[partner, stage].base)
                    value = (value + other) % 1_000_003
                    yield ops.think(self.cycles_per_stage)
            self._finals[p] = value

        self._finals: dict[int, int] = {}
        return {p: [program(p)] for p in range(n)}

    @property
    def finals(self) -> dict[int, int]:
        """Per-processor results (after the run): every processor must end
        with the same value — the all-reduce property of the butterfly."""
        return self._finals
