"""Hot-spot microbenchmark.

The distilled form of Weather's pathological variable: one processor
writes a location (once, or periodically), and every processor reads it
each round.  This is the smallest workload that separates the directory
schemes, and the unit used by the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..proc import ops
from ..sync.barrier import barrier_wait, build_combining_tree
from .base import Program, Workload


@dataclass
class HotSpotWorkload(Workload):
    """All processors repeatedly read one widely shared variable."""

    rounds: int = 5
    #: if > 0, processor 0 rewrites the variable every ``write_period``
    #: rounds (0 = written once, Weather-style)
    write_period: int = 0
    think_per_round: int = 40
    barrier_arity: int = 4
    name: str = "hotspot"

    def describe(self) -> str:
        mode = f"rewrite/{self.write_period}" if self.write_period else "write-once"
        return f"hotspot({mode}, rounds={self.rounds})"

    def build(self, machine) -> dict[int, list[Program]]:
        n = machine.config.n_procs
        alloc = machine.allocator
        poll = machine.config.spin_poll_interval
        hot = alloc.alloc_scalar("hotspot.var", home=0)
        barrier = build_combining_tree(
            alloc, list(range(n)), arity=self.barrier_arity, name="hot.bar"
        )

        def program(p: int) -> Program:
            if p == 0:
                yield ops.store(hot.base, 1)
            for round_no in range(1, self.rounds + 1):
                if (
                    p == 0
                    and self.write_period
                    and round_no % self.write_period == 0
                ):
                    yield ops.store(hot.base, round_no)
                yield from barrier_wait(barrier, p, round_no, poll_interval=poll)
                value = yield ops.load(hot.base)
                if value <= 0:
                    raise AssertionError("hot variable lost its value")
                yield ops.think(self.think_per_round)

        return {p: [program(p)] for p in range(n)}
