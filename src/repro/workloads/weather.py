"""The Weather workload (paper §5.2, Figures 8–10).

Weather is a column-partitioned atmospheric model.  The sharing structure
that drives the paper's results, reconstructed from the text:

* per-iteration *boundary* exchange between neighbouring columns — shared
  values with worker-sets of exactly two remote processors (these are the
  variables that make the one-pointer LimitLESS protocol "especially bad",
  Figure 10);
* software combining trees for barrier synchronization;
* **one variable initialized by one processor and then read by all of the
  other processors** (found by Kiyoshi Kurihara) — never written again, so
  under a full-map directory every processor caches it after the first
  sweep and it costs nothing, while a Dir_iNB directory evicts pointers on
  every sweep forever: the hot-spot of Figure 8.

``optimized=True`` models the paper's fix of flagging that variable
read-only: each processor then fetches it once instead of re-reading a
coherent copy every iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..proc import ops
from ..sync.barrier import barrier_wait, build_combining_tree
from .base import Program, Workload


@dataclass
class WeatherWorkload(Workload):
    """Synthetic Weather with the documented sharing pattern."""

    iterations: int = 6
    #: grid points per processor column (drives local work and think time)
    points_per_proc: int = 24
    #: compute cycles modelled per grid point per sweep
    cycles_per_point: int = 6
    #: how many times the sweep's inner loop references the shared
    #: initialization variable; under a full-map directory these are all
    #: cache hits after the first sweep, under Dir_iNB each one can be a
    #: fresh miss because of pointer thrashing
    hot_reads_per_iteration: int = 8
    barrier_arity: int = 4
    optimized: bool = False
    name: str = "weather"

    def describe(self) -> str:
        tag = "optimized" if self.optimized else "unoptimized"
        return f"weather({tag}, iters={self.iterations})"

    def build(self, machine) -> dict[int, list[Program]]:
        n = machine.config.n_procs
        alloc = machine.allocator
        poll = machine.config.spin_poll_interval

        # The hot-spot variable, homed at (and initialized by) processor 0.
        init_var = alloc.alloc_scalar("weather.init", home=0)

        # Each processor's column: a private working array plus a boundary
        # corner value read by both neighbours (worker-set two).
        corners = [
            alloc.alloc_scalar(f"weather.corner{p}", home=p) for p in range(n)
        ]
        columns = [
            alloc.alloc_words(
                f"weather.col{p}", max(4, self.points_per_proc), home=p
            )
            for p in range(n)
        ]

        barrier = build_combining_tree(
            alloc, list(range(n)), arity=self.barrier_arity, name="weather.bar"
        )

        def program(p: int) -> Program:
            left = corners[(p - 1) % n].base
            right = corners[(p + 1) % n].base
            mine = corners[p].base
            column = columns[p]

            if p == 0:
                # One processor initializes the shared variable, once.
                yield ops.store(init_var.base, 777)

            for it in range(1, self.iterations + 1):
                # Local sweep over this processor's column.
                for point in range(min(4, self.points_per_proc)):
                    value = yield ops.load(column.word(point))
                    yield ops.store(column.word(point), value + it)
                yield ops.think(self.points_per_proc * self.cycles_per_point)

                # Publish this column's boundary value.
                yield ops.store(mine, it)

                yield from barrier_wait(barrier, p, it, poll_interval=poll)

                # Read both neighbours' boundaries (worker-set-2 variables).
                # Value-independent, so a single precompiled burst.
                yield ops.burst(ops.load(left), ops.load(right))

                # The unoptimized hot-spot: the sweep's inner loop keeps
                # referencing the read-only variable.  Optimized code reads
                # it once (the paper's "flagged read-only" fix).
                if self.optimized:
                    if it == 1:
                        yield ops.load(init_var.base)
                else:
                    yield ops.burst(
                        *(
                            op
                            for _ in range(self.hot_reads_per_iteration)
                            for op in (
                                ops.load(init_var.base),
                                ops.think(self.cycles_per_point),
                            )
                        )
                    )

        return {p: [program(p)] for p in range(n)}
