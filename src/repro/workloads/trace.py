"""Trace recording and post-mortem replay (ASIM's right-hand branch, §5.1).

ASIM could drive the memory system from a *dynamic post-mortem trace
scheduler*: a parallel trace derived from an execution, with embedded
synchronization, re-issued against the memory simulator with network
feedback.  We reproduce the idea directly:

* :class:`TraceRecorder` wraps any workload and records, per processor, the
  stream of memory operations the programs actually issued — i.e. the
  trace with all value-dependent control flow (spins, lock retries) already
  resolved, exactly what a post-mortem trace is.
* :class:`TraceReplayWorkload` replays a recorded trace on a fresh machine,
  possibly under a *different* coherence protocol or network.  Timing
  feedback shifts when each operation issues (the machine being measured
  provides the latencies), while the address stream stays fixed.

This lets one execution be compared across protocols with identical memory
reference streams — the paper's methodology for the Weather runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..proc import ops
from .base import Program, Workload


@dataclass(frozen=True)
class TraceOp:
    """One recorded operation.  ``value`` is the stored value for stores,
    the applied delta for recorded fetch-and-adds, cycles for think."""

    kind: str
    addr: int = 0
    value: int = 0


@dataclass
class Trace:
    """A parallel trace: one operation stream per processor."""

    n_procs: int
    streams: dict[int, list[TraceOp]] = field(default_factory=dict)

    def append(self, proc: int, op: TraceOp) -> None:
        self.streams.setdefault(proc, []).append(op)

    def length(self) -> int:
        return sum(len(s) for s in self.streams.values())

    def references(self) -> int:
        """Memory references (loads/stores/rmws), excluding think time."""
        return sum(
            1
            for stream in self.streams.values()
            for op in stream
            if op.kind in (ops.LOAD, ops.STORE, ops.RMW)
        )


class TraceRecorder(Workload):
    """Wraps a workload, recording every operation its programs issue.

    RMW functions are recorded by observing the operation itself; on
    replay they are re-issued as fetch-and-add with the recorded delta —
    value-dependent branching has already been resolved by the recording
    run, as in a post-mortem trace.
    """

    def __init__(self, inner: Workload):
        self.inner = inner
        self.name = f"record({inner.name})"
        self.trace: Trace | None = None

    def describe(self) -> str:
        return f"recording {self.inner.describe()}"

    def build(self, machine):
        programs = self.inner.build(machine)
        self.trace = Trace(machine.config.n_procs)
        wrapped: dict[int, list[Program]] = {}
        for proc, gens in programs.items():
            wrapped[proc] = [self._wrap(proc, gen) for gen in gens]
        return wrapped

    def _wrap(self, proc: int, gen) -> Program:
        result = None
        started = False
        while True:
            try:
                op = gen.send(result) if started else next(gen)
                started = True
            except StopIteration:
                return
            result = yield op
            self._record(proc, op, result)

    def _record(self, proc: int, op: tuple, result) -> None:
        kind = op[0]
        if kind == ops.THINK:
            self.trace.append(proc, TraceOp(ops.THINK, value=op[1]))
        elif kind == ops.LOAD:
            self.trace.append(proc, TraceOp(ops.LOAD, addr=op[1]))
        elif kind == ops.STORE:
            self.trace.append(proc, TraceOp(ops.STORE, addr=op[1], value=op[2]))
        elif kind == ops.RMW:
            # The rmw already executed and returned the old value; re-derive
            # the written delta from it so replay performs the same update.
            self.trace.append(
                proc, TraceOp(ops.RMW, addr=op[1], value=op[2](result) - result)
            )
        elif kind == ops.FENCE:
            self.trace.append(proc, TraceOp(ops.FENCE))
        elif kind == ops.SWITCH_HINT:
            self.trace.append(proc, TraceOp(ops.SWITCH_HINT))
        elif kind == ops.BURST:
            # Flatten: a burst executes its ops back to back with timing
            # identical to yielding them individually, so the recorded
            # stream replays cycle-exactly either way.  (Burst ops are
            # value-independent by contract, so ``result`` — the final
            # op's value — is safe to pass to every sub-op.)
            for sub in op[1]:
                self._record(proc, sub, result)


class TraceReplayWorkload(Workload):
    """Replays a recorded trace, preserving per-processor op order."""

    name = "trace-replay"

    def __init__(self, trace: Trace):
        if trace is None:
            raise ValueError("no trace recorded yet")
        self.trace = trace

    def describe(self) -> str:
        return f"replay({self.trace.references()} refs)"

    def build(self, machine):
        if machine.config.n_procs != self.trace.n_procs:
            raise ValueError(
                f"trace was recorded on {self.trace.n_procs} processors, "
                f"machine has {machine.config.n_procs}"
            )

        def program(stream) -> Program:
            for op in stream:
                if op.kind == ops.THINK:
                    yield ops.think(op.value)
                elif op.kind == ops.LOAD:
                    yield ops.load(op.addr)
                elif op.kind == ops.STORE:
                    yield ops.store(op.addr, op.value)
                elif op.kind == ops.RMW:
                    yield ops.fetch_add(op.addr, op.value)
                elif op.kind == ops.FENCE:
                    yield ops.fence()
                elif op.kind == ops.SWITCH_HINT:
                    yield ops.switch_hint()

        return {
            proc: [program(stream)]
            for proc, stream in self.trace.streams.items()
        }


def record_trace(machine_config, workload) -> tuple[Trace, object]:
    """Run ``workload`` once, recording its trace.  Returns (trace, stats)."""
    from ..machine.machine import AlewifeMachine

    recorder = TraceRecorder(workload)
    stats = AlewifeMachine(machine_config).run(recorder)
    return recorder.trace, stats
