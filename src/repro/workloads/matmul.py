"""Blocked matrix-multiply workload.

A grid of processors computes C = A x B with a 2-D block decomposition:
processor (i, j) owns C[i][j], reads the blocks of A's row i (owned by the
processors of that row) and of B's column j.  Row and column blocks get
worker-sets of about sqrt(N) — between Multigrid's pairwise sharing and
Weather's machine-wide hot-spot — giving the protocol comparison a
middle-ground data point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..proc import ops
from ..sync.barrier import barrier_wait, build_combining_tree
from .base import Program, Workload


@dataclass
class MatmulWorkload(Workload):
    """C = A x B over a near-square processor grid."""

    #: multiply/accumulate cycles modelled per block pair
    cycles_per_block: int = 24
    sweeps: int = 2
    barrier_arity: int = 4
    name: str = "matmul"

    def describe(self) -> str:
        return f"matmul(sweeps={self.sweeps})"

    @staticmethod
    def _grid(n: int) -> tuple[int, int]:
        rows = int(math.isqrt(n))
        while n % rows:
            rows -= 1
        return rows, n // rows

    def build(self, machine) -> dict[int, list[Program]]:
        n = machine.config.n_procs
        rows, cols = self._grid(n)
        alloc = machine.allocator

        def pid(i: int, j: int) -> int:
            return i * cols + j

        a_blocks = {}
        b_blocks = {}
        c_blocks = {}
        for i in range(rows):
            for j in range(cols):
                owner = pid(i, j)
                a_blocks[i, j] = alloc.alloc_scalar(f"mm.a{i}.{j}", home=owner)
                b_blocks[i, j] = alloc.alloc_scalar(f"mm.b{i}.{j}", home=owner)
                c_blocks[i, j] = alloc.alloc_scalar(f"mm.c{i}.{j}", home=owner)

        barrier = build_combining_tree(
            alloc, list(range(n)), arity=self.barrier_arity, name="mm.bar"
        )
        poll = machine.config.spin_poll_interval

        def program(p: int) -> Program:
            i, j = divmod(p, cols)
            for sweep in range(1, self.sweeps + 1):
                # Refresh this processor's own A and B blocks.
                yield ops.store(a_blocks[i, j].base, sweep * 10 + p)
                yield ops.store(b_blocks[i, j].base, sweep * 20 + p)
                yield from barrier_wait(
                    barrier, p, 2 * sweep - 1, poll_interval=poll
                )
                # Accumulate over the shared row of A and column of B.
                acc = 0
                for k in range(cols):
                    acc += yield ops.load(a_blocks[i, k].base)
                    yield ops.think(self.cycles_per_block)
                for k in range(rows):
                    acc += yield ops.load(b_blocks[k, j].base)
                    yield ops.think(self.cycles_per_block)
                yield ops.store(c_blocks[i, j].base, acc)
                yield from barrier_wait(barrier, p, 2 * sweep, poll_interval=poll)

        return {p: [program(p)] for p in range(n)}
