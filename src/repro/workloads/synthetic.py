"""Synthetic worker-set workload.

Directly parameterizes the quantity the whole paper turns on: the
*worker-set size distribution* of shared data.  Each shared variable is
assigned a worker-set (its reader group) drawn from a configurable
distribution; readers re-read their variables every round and each
variable's owner occasionally rewrites it.  Sweeping the distribution
against the pointer count reproduces, in controlled form, the §3.1 model's
``m`` (fraction of accesses that overflow the hardware pointers) and the
Figure 10 sensitivity to worker-sets just above ``p``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..proc import ops
from ..sync.barrier import barrier_wait, build_combining_tree
from .base import Program, Workload


@dataclass
class SyntheticSharingWorkload(Workload):
    """Tunable worker-set sizes over a population of shared variables."""

    #: (worker_set_size, count) pairs — e.g. [(2, 8), (16, 1)] gives eight
    #: variables read by two processors and one read by sixteen
    worker_sets: list[tuple[int, int]] = field(default_factory=lambda: [(2, 4)])
    rounds: int = 4
    #: a variable's owner rewrites it every ``write_period`` rounds (0 = never)
    write_period: int = 2
    think_per_round: int = 40
    barrier_arity: int = 4
    name: str = "synthetic"

    def describe(self) -> str:
        return f"synthetic(ws={self.worker_sets}, rounds={self.rounds})"

    def build(self, machine) -> dict[int, list[Program]]:
        n = machine.config.n_procs
        alloc = machine.allocator
        rng = machine.rng
        poll = machine.config.spin_poll_interval

        # Assign each variable an owner (home) and a reader group.
        variables: list[tuple[int, int, list[int]]] = []  # (addr, owner, readers)
        index = 0
        for size, count in self.worker_sets:
            if size < 1 or size > n:
                raise ValueError(f"worker-set size {size} out of range for {n} procs")
            for _ in range(count):
                owner = rng.randint("synthetic.owner", 0, n - 1)
                others = [p for p in range(n) if p != owner]
                readers = rng.shuffled(f"synthetic.readers{index}", others)[
                    : max(0, size - 1)
                ]
                var = alloc.alloc_scalar(f"syn.var{index}", home=owner)
                variables.append((var.base, owner, sorted(readers)))
                index += 1

        barrier = build_combining_tree(
            alloc, list(range(n)), arity=self.barrier_arity, name="syn.bar"
        )

        reads_of: dict[int, list[int]] = {p: [] for p in range(n)}
        writes_of: dict[int, list[int]] = {p: [] for p in range(n)}
        for addr, owner, readers in variables:
            writes_of[owner].append(addr)
            for reader in readers:
                reads_of[reader].append(addr)

        def program(p: int) -> Program:
            for round_no in range(1, self.rounds + 1):
                if self.write_period and round_no % self.write_period == 0:
                    for addr in writes_of[p]:
                        yield ops.store(addr, round_no)
                yield from barrier_wait(barrier, p, round_no, poll_interval=poll)
                for addr in reads_of[p]:
                    yield ops.load(addr)
                yield ops.think(self.think_per_round)

        return {p: [program(p)] for p in range(n)}
