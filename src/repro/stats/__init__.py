"""Statistics: counters, histograms, and figure-style reports."""

from .counters import Counters, Histogram
from .machine_report import histogram_lines, machine_report
from .report import bar_chart, comparison_table, format_table

__all__ = [
    "Counters",
    "Histogram",
    "bar_chart",
    "comparison_table",
    "format_table",
    "histogram_lines",
    "machine_report",
]
