"""Figure-style ASCII reports.

The paper's Figures 7–10 are horizontal bar charts of total execution time
(in Mcycles) per coherence scheme.  ``bar_chart`` renders the same layout
in text so a benchmark run visually mirrors the paper's figures.
"""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """A plain fixed-width table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def bar_chart(
    title: str,
    entries: Sequence[tuple[str, float]],
    *,
    unit: str = "Mcycles",
    width: int = 46,
) -> str:
    """Horizontal bars in the style of the paper's execution-time figures.

    ``entries`` are (label, value) pairs, plotted in the given order —
    the paper lists the worst scheme on top and Full-Map at the bottom.
    """
    if not entries:
        return f"{title}\n(no data)"
    biggest = max(value for _, value in entries) or 1.0
    label_w = max(len(label) for label, _ in entries)
    lines = [title]
    for label, value in entries:
        bar = "#" * max(1, round(width * value / biggest))
        lines.append(f"  {label.ljust(label_w)} |{bar} {value:.3f} {unit}")
    return "\n".join(lines)


def comparison_table(stats_list: Sequence, baseline_label: str | None = None) -> str:
    """Compare MachineStats runs: cycles, ratio to baseline, key counters."""
    if not stats_list:
        return "(no runs)"
    baseline = None
    if baseline_label is not None:
        for stats in stats_list:
            if stats.label == baseline_label:
                baseline = stats.cycles
                break
    if baseline is None:
        baseline = min(s.cycles for s in stats_list)
    rows = []
    for s in stats_list:
        c = s.counters
        rows.append(
            [
                s.label,
                s.cycles,
                f"{s.cycles / baseline:.2f}x",
                f"{s.utilization:.2f}",
                c.get("dir.pointer_evictions"),
                s.traps_taken,
                c.get("dir.stray_dropped") + c.get("cache.busy_stray"),
                s.network.packets,
            ]
        )
    return format_table(
        [
            "scheme",
            "cycles",
            "vs base",
            "util",
            "evictions",
            "traps",
            "strays",
            "packets",
        ],
        rows,
    )
