"""Full multi-section machine report.

Renders everything a MachineStats knows into one readable block: execution
summary, cache behaviour, network traffic by message type, the worker-set
distribution the §6 profiling feedback loop is built on, and the software
(LimitLESS) activity.  Used by the CLI's ``--verbose`` and by examples.
"""

from __future__ import annotations

from .counters import Histogram
from .report import format_table


def histogram_lines(hist: Histogram, *, title: str, width: int = 36) -> str:
    """Render a histogram as labelled ASCII bars."""
    items = hist.as_sorted_items()
    if not items:
        return f"{title}: (empty)"
    biggest = max(count for _, count in items)
    lines = [title]
    for value, count in items:
        bar = "#" * max(1, round(width * count / biggest))
        lines.append(f"  {value:>6}  |{bar} {count}")
    return "\n".join(lines)


def machine_report(stats) -> str:
    """A complete report for one simulation run."""
    c = stats.counters
    sections: list[str] = []

    # -- execution ------------------------------------------------------
    sections.append(
        format_table(
            ["metric", "value"],
            [
                ["scheme", stats.label],
                ["workload cycles", f"{stats.cycles:,}"],
                ["processor utilization", f"{stats.utilization:.3f}"],
                ["mean remote-miss latency (Th)", f"{stats.mean_miss_latency:.1f}"],
                ["traps taken", stats.traps_taken],
                ["trap cycles", stats.trap_cycles],
                ["entries audited", stats.entries_audited],
            ],
        )
    )

    # -- cache ----------------------------------------------------------
    rows = []
    for kind in ("load", "store", "rmw"):
        hits = c.get(f"cache.hits.{kind}")
        misses = c.get(f"cache.misses.{kind}")
        total = hits + misses
        rate = f"{hits / total:.3f}" if total else "-"
        rows.append([kind, hits, misses, rate])
    rows.append(
        ["evictions (clean/dirty)", c.get("cache.evict_ro"), c.get("cache.evict_rw"), "-"]
    )
    rows.append(["busy retries", c.get("cache.busy_retries"), "", "-"])
    rows.append(["stray BUSY (miss resolved)", c.get("cache.busy_stray"), "", "-"])
    sections.append(format_table(["access", "hits", "misses", "hit rate"], rows))

    # -- directory ------------------------------------------------------
    dir_rows = [
        ["protocol packets processed", c.get("dir.packets")],
        ["invalidations sent", c.get("dir.invalidations")],
        ["BUSY responses", c.get("dir.busy_sent")],
        ["pointer evictions (Dir_iNB)", c.get("dir.pointer_evictions")],
        ["broadcast invalidates (Dir_iB)", c.get("dir.broadcast_invalidates")],
        ["packets diverted to software", c.get("dir.diverted")],
        ["packets queued on interlock", c.get("dir.interlocked")],
        ["stray packets dropped", c.get("dir.stray_dropped")],
    ]
    # Per-opcode breakdown of the drops: late ACKCs from eviction
    # invalidates vs. REPM/UPDATE crossing a completed transaction are
    # different races, and the split tells them apart at a glance.
    dir_rows += [
        [f"  stray {opcode}", count] for opcode, count in c.prefixed("dir.stray")
    ]
    dir_rows += [
        ["read-overflow traps", c.get("limitless.read_overflow_traps")],
        ["write-termination traps", c.get("limitless.write_termination_traps")],
    ]
    sections.append(format_table(["directory event", "count"], dir_rows))

    # -- network ---------------------------------------------------------
    net = stats.network
    opcode_rows = sorted(net.per_opcode.items(), key=lambda kv: -kv[1])
    sections.append(
        format_table(
            ["network", "value"],
            [
                ["packets", net.packets],
                ["words", net.words],
                ["mean latency", f"{net.mean_latency:.1f}"],
                ["contention cycles", net.contention_cycles],
            ],
        )
        + "\n"
        + format_table(["opcode", "packets"], opcode_rows)
    )

    # -- worker sets ------------------------------------------------------
    sections.append(
        histogram_lines(
            stats.worker_sets,
            title="worker-set size at invalidation time (writes)",
        )
    )

    return "\n\n".join(sections)
