"""Lightweight named counters and histograms shared by all components.

Two tiers share one namespace:

* **Named bumps** — ``counters.bump("dir.stray.ACKC")`` — hash a string per
  update.  Fine for cold paths (errors, faults, reports).
* **Slot counters** — a component interns a name once with
  :func:`counter_slot` and then increments a plain list cell on the hot
  path.  Slots are process-global (the registry only grows, and the same
  construction order reproduces the same ids in every shard worker), and
  they fold back into the named bag whenever anything *reads* the
  counters, so reports, merges, and serialized results are unchanged.

The shipped components intern their slots in module-level constants, so
building machines in a loop does not grow the registry.  Code that
interns *dynamically generated* names (tests, exploratory harnesses)
would grow it monotonically; :func:`slot_registry_snapshot` /
:func:`restore_slot_registry` bracket such phases so long-lived
processes (the sweep cache, ``repro serve``) can shed those entries.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

#: process-global slot registry: name -> dense id, id -> name
_SLOT_IDS: dict[str, int] = {}
_SLOT_NAMES: list[str] = []


def counter_slot(name: str) -> int:
    """Intern ``name`` and return its dense slot id (stable per process)."""
    idx = _SLOT_IDS.get(name)
    if idx is None:
        idx = len(_SLOT_NAMES)
        _SLOT_IDS[name] = idx
        _SLOT_NAMES.append(name)
    return idx


def slot_registry_snapshot() -> int:
    """Opaque marker for the current registry extent.

    Take one before a phase that may intern dynamically generated slot
    names, then hand it to :func:`restore_slot_registry` to drop those
    entries again.
    """
    return len(_SLOT_NAMES)


def restore_slot_registry(snapshot: int) -> None:
    """Truncate the registry back to a :func:`slot_registry_snapshot`.

    Every :class:`Counters` that bumped a now-dropped slot must be
    folded (any read does it) or discarded *before* restoring: ids above
    the snapshot no longer resolve to names afterwards.  Entries interned
    before the snapshot keep their ids, so captured ``slot_view`` lists
    for them stay valid.
    """
    if snapshot < 0 or snapshot > len(_SLOT_NAMES):
        raise ValueError(
            f"snapshot {snapshot} does not bracket the registry "
            f"(currently {len(_SLOT_NAMES)} slots)"
        )
    for name in _SLOT_NAMES[snapshot:]:
        del _SLOT_IDS[name]
    del _SLOT_NAMES[snapshot:]


class Counters:
    """A bag of named integer counters.

    Components bump counters by name; reports read them back.  Unknown names
    read as zero, so report code never KeyErrors on configurations that
    simply never exercised a path.
    """

    def __init__(self) -> None:
        self._values: Counter[str] = Counter()
        self._slots: list[int] = []

    # ------------------------------------------------------------------
    # Slot tier (hot paths)
    # ------------------------------------------------------------------

    def slot_view(self) -> list[int]:
        """The slot array, grown to cover every registered slot.

        Hot components capture this list once at construction and bump
        ``view[slot] += 1`` directly.  The list grows in place, so views
        captured before later registrations stay valid.
        """
        slots = self._slots
        grow = len(_SLOT_NAMES) - len(slots)
        if grow > 0:
            slots.extend([0] * grow)
        return slots

    def _fold(self) -> None:
        """Fold slot counts into the named bag (idempotent)."""
        slots = self._slots
        if not slots:
            return
        values = self._values
        names = _SLOT_NAMES
        for idx, count in enumerate(slots):
            if count:
                values[names[idx]] += count
                slots[idx] = 0

    def __getstate__(self) -> dict:
        # Serialize by name only: slot ids are process-local, and a pickle
        # may be merged in a process with a different registry order.
        self._fold()
        return {"_values": self._values, "_slots": []}

    def __setstate__(self, state: dict) -> None:
        self._values = state["_values"]
        self._slots = []

    # ------------------------------------------------------------------
    # Named tier
    # ------------------------------------------------------------------

    def bump(self, name: str, amount: int = 1) -> None:
        self._values[name] += amount

    def get(self, name: str) -> int:
        self._fold()
        return self._values.get(name, 0)

    def as_dict(self) -> dict[str, int]:
        self._fold()
        return dict(self._values)

    @classmethod
    def from_dict(cls, values: dict[str, int]) -> "Counters":
        """Rebuild a counter bag from :meth:`as_dict` output."""
        counters = cls()
        counters._values.update(values)
        return counters

    def prefixed(self, prefix: str) -> list[tuple[str, int]]:
        """All (suffix, count) pairs under ``prefix.``, sorted by name.

        ``prefixed("dir.stray")`` returns e.g. ``[("ACKC", 3), ("REPM", 1)]``
        for counters named ``dir.stray.ACKC`` / ``dir.stray.REPM``.
        """
        self._fold()
        dot = prefix + "."
        return sorted(
            (name[len(dot):], count)
            for name, count in self._values.items()
            if name.startswith(dot)
        )

    def merge(self, other: "Counters") -> None:
        other._fold()
        self._values.update(other._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        self._fold()
        return f"Counters({dict(self._values)})"


@dataclass
class Histogram:
    """Integer-valued histogram (e.g. worker-set sizes)."""

    counts: Counter = field(default_factory=Counter)

    def add(self, value: int, weight: int = 1) -> None:
        self.counts[value] += weight

    def total(self) -> int:
        return sum(self.counts.values())

    def mean(self) -> float:
        total = self.total()
        if not total:
            return 0.0
        return sum(v * c for v, c in self.counts.items()) / total

    def max(self) -> int:
        return max(self.counts) if self.counts else 0

    def fraction_at_most(self, value: int) -> float:
        total = self.total()
        if not total:
            return 0.0
        return sum(c for v, c in self.counts.items() if v <= value) / total

    def as_sorted_items(self) -> list[tuple[int, int]]:
        return sorted(self.counts.items())

    @classmethod
    def from_items(cls, items) -> "Histogram":
        """Rebuild from (value, count) pairs; values coerced back to int
        (JSON object keys arrive as strings)."""
        hist = cls()
        for value, count in items:
            hist.counts[int(value)] = count
        return hist
