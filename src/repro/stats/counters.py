"""Lightweight named counters and histograms shared by all components."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


class Counters:
    """A bag of named integer counters.

    Components bump counters by name; reports read them back.  Unknown names
    read as zero, so report code never KeyErrors on configurations that
    simply never exercised a path.
    """

    def __init__(self) -> None:
        self._values: Counter[str] = Counter()

    def bump(self, name: str, amount: int = 1) -> None:
        self._values[name] += amount

    def get(self, name: str) -> int:
        return self._values.get(name, 0)

    def as_dict(self) -> dict[str, int]:
        return dict(self._values)

    @classmethod
    def from_dict(cls, values: dict[str, int]) -> "Counters":
        """Rebuild a counter bag from :meth:`as_dict` output."""
        counters = cls()
        counters._values.update(values)
        return counters

    def prefixed(self, prefix: str) -> list[tuple[str, int]]:
        """All (suffix, count) pairs under ``prefix.``, sorted by name.

        ``prefixed("dir.stray")`` returns e.g. ``[("ACKC", 3), ("REPM", 1)]``
        for counters named ``dir.stray.ACKC`` / ``dir.stray.REPM``.
        """
        dot = prefix + "."
        return sorted(
            (name[len(dot):], count)
            for name, count in self._values.items()
            if name.startswith(dot)
        )

    def merge(self, other: "Counters") -> None:
        self._values.update(other._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counters({dict(self._values)})"


@dataclass
class Histogram:
    """Integer-valued histogram (e.g. worker-set sizes)."""

    counts: Counter = field(default_factory=Counter)

    def add(self, value: int, weight: int = 1) -> None:
        self.counts[value] += weight

    def total(self) -> int:
        return sum(self.counts.values())

    def mean(self) -> float:
        total = self.total()
        if not total:
            return 0.0
        return sum(v * c for v, c in self.counts.items()) / total

    def max(self) -> int:
        return max(self.counts) if self.counts else 0

    def fraction_at_most(self, value: int) -> float:
        total = self.total()
        if not total:
            return 0.0
        return sum(c for v, c in self.counts.items() if v <= value) / total

    def as_sorted_items(self) -> list[tuple[int, int]]:
        return sorted(self.counts.items())

    @classmethod
    def from_items(cls, items) -> "Histogram":
        """Rebuild from (value, count) pairs; values coerced back to int
        (JSON object keys arrive as strings)."""
        hist = cls()
        for value, count in items:
            hist.counts[int(value)] = count
        return hist
