"""End-of-run coherence audits and stuck-machine diagnosis."""

from .diagnose import Diagnosis, StuckContext, diagnose
from .invariants import CoherenceViolation, audit_machine

__all__ = [
    "CoherenceViolation",
    "Diagnosis",
    "StuckContext",
    "audit_machine",
    "diagnose",
]
