"""End-of-run coherence audits and stuck-machine diagnosis."""

from .diagnose import Diagnosis, StuckContext, diagnose
from .invariants import CoherenceViolation, audit_machine
from .predicates import BlockView, quiescent_problems, state_problems

__all__ = [
    "BlockView",
    "CoherenceViolation",
    "Diagnosis",
    "StuckContext",
    "audit_machine",
    "diagnose",
    "quiescent_problems",
    "state_problems",
]
