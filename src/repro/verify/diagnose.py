"""Stuck-machine diagnosis.

When a simulation stops at ``max_cycles`` with unfinished processors, the
interesting question is *who is waiting on what*.  ``diagnose`` collects,
per node: unfinished contexts with their last operation (and, for programs
built from the sync library, the barrier/spin frame they are sitting in),
open MSHRs, directory entries with open transactions or queued packets,
and undrained IPI queues — the forensic view used to debug the protocol
during development, packaged for users.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..proc.processor import ContextState
from ..sim.kernel import SimulationError


@dataclass
class StuckContext:
    node: int
    context: int
    state: str
    last_op: tuple | None
    frame_info: str


@dataclass
class Diagnosis:
    """Everything known about why a machine has not finished."""

    cycle: int
    finished_processors: int
    total_processors: int
    stuck_contexts: list[StuckContext] = field(default_factory=list)
    open_mshrs: list[tuple[int, int, bool, int]] = field(default_factory=list)
    busy_entries: list[str] = field(default_factory=list)
    ipi_backlogs: list[tuple[int, int]] = field(default_factory=list)
    packets_in_flight: int = 0
    #: description of the oldest undelivered packet (fault-injection runs
    #: track deliveries; None when no injector is installed)
    oldest_packet: str | None = None

    @property
    def is_quiescent(self) -> bool:
        return (
            self.finished_processors == self.total_processors
            and not self.open_mshrs
            and not self.busy_entries
            and self.packets_in_flight == 0
        )

    def report(self) -> str:
        lines = [
            f"cycle {self.cycle}: {self.finished_processors}/"
            f"{self.total_processors} processors finished, "
            f"{self.packets_in_flight} packets in flight"
        ]
        for ctx in self.stuck_contexts[:16]:
            lines.append(
                f"  node {ctx.node} ctx {ctx.context} [{ctx.state}] "
                f"last_op={ctx.last_op} {ctx.frame_info}"
            )
        for node, block, write, retries in self.open_mshrs[:16]:
            kind = "WREQ" if write else "RREQ"
            lines.append(
                f"  node {node}: open MSHR {kind} block {block:#x} "
                f"(retries={retries})"
            )
        lines.extend(f"  {entry}" for entry in self.busy_entries[:16])
        for node, depth in self.ipi_backlogs:
            lines.append(f"  node {node}: {depth} packets in the IPI queue")
        if self.oldest_packet is not None:
            lines.append(f"  oldest pending packet: {self.oldest_packet}")
        if self.is_quiescent:
            lines.append("  (machine is quiescent)")
        return "\n".join(lines)


class LivenessError(SimulationError):
    """A run stalled (or stopped at max_cycles) with work still open.

    Carries the structured :class:`Diagnosis` so campaign harnesses and
    tests can inspect *what* was stuck, not just parse a message.
    """

    def __init__(self, reason: str, diagnosis: Diagnosis) -> None:
        super().__init__(f"{reason}\n{diagnosis.report()}")
        self.reason = reason
        self.diagnosis = diagnosis


def _frame_info(ctx) -> str:
    """Best-effort description of where the program generator is parked."""
    gen = ctx.gen
    frame = getattr(gen, "gi_frame", None)
    if frame is None:
        return "(finished)"
    info = f"at {frame.f_code.co_name}:{frame.f_lineno}"
    sub = getattr(gen, "gi_yieldfrom", None)
    subframe = getattr(sub, "gi_frame", None)
    if subframe is not None:
        locals_ = subframe.f_locals
        node = locals_.get("node")
        detail = f" in {subframe.f_code.co_name}:{subframe.f_lineno}"
        if node is not None and hasattr(node, "name"):
            detail += f" ({node.name}, epoch={locals_.get('epoch')})"
        info += detail
    return info


def diagnose(machine) -> Diagnosis:
    """Inspect a machine (typically after a max_cycles stop)."""
    injector = getattr(machine.network, "fault_injector", None)
    diagnosis = Diagnosis(
        cycle=machine.sim.now,
        finished_processors=sum(1 for n in machine.nodes if n.processor.done),
        total_processors=len(machine.nodes),
        packets_in_flight=machine.network.in_flight,
        oldest_packet=injector.oldest_pending() if injector is not None else None,
    )
    for node in machine.nodes:
        for ctx in node.processor.contexts:
            if ctx.state is ContextState.DONE:
                continue
            diagnosis.stuck_contexts.append(
                StuckContext(
                    node.node_id,
                    ctx.index,
                    ctx.state.name,
                    ctx.last_op,
                    _frame_info(ctx),
                )
            )
        for block, mshr in node.cache_controller._mshrs.items():
            diagnosis.open_mshrs.append(
                (node.node_id, block, mshr.need_write, mshr.retries)
            )
        for entry in node.directory_controller.directory.entries():
            if not entry.idle():
                diagnosis.busy_entries.append(
                    f"node {node.node_id}: block {entry.block:#x} "
                    f"{entry.state.name}/{entry.meta.name} "
                    f"awaiting={sorted(entry.ack_waiting)} "
                    f"pending={len(entry.pending)}"
                )
        backlog = node.nic.ipi_pending()
        if backlog:
            diagnosis.ipi_backlogs.append((node.node_id, backlog))
    return diagnosis
