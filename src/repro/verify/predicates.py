"""Per-block coherence invariant predicates.

One :class:`BlockView` summarizes everything the invariants need to know
about a single memory block: the directory's record, the actual cached
copies, the memory contents, and the in-flight/interlock context.  The
predicates are pure functions from a view to a list of human-readable
problems, so the same definitions serve two very different judges:

* the end-of-run auditor (:func:`repro.verify.invariants.audit_machine`),
  which builds views from a finished machine and additionally applies the
  quiescence-only checks; and
* the exhaustive model checker (:mod:`repro.modelcheck`), which builds a
  view for *every reachable state* and applies the always-true checks.

The always-true invariants are stated over *committed* copies: a cache
that already has an invalidation on the wire (or queued in a chained
directory's serial walk) is excluded, because the protocol has committed
to killing that copy and per-(src, dst) FIFO delivery guarantees the
kill lands before any later grant to the same node.  At quiescence the
excluded set is empty, so the auditor's view is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..cache.states import CacheState
from ..coherence.states import DirState, MetaState


@dataclass
class BlockView:
    """A protocol-neutral snapshot of one block's coherence state.

    ``cached`` maps node id -> (cache state, data); ``data`` values need
    only support ``==`` against ``memory_data`` (the auditor passes word
    lists, the model checker passes abstract values).  ``recorded`` is
    the set of nodes the directory believes may hold a copy — ``None``
    means "any node" (an armed broadcast entry).  ``awaited`` is every
    node whose invalidation round is still open: the acknowledgment set
    plus, for chained directories, the not-yet-walked queue.
    """

    block: int
    dir_state: DirState
    meta: MetaState = MetaState.NORMAL
    trap_mode: MetaState | None = None
    recorded: set[int] | None = field(default_factory=set)
    awaited: set[int] = field(default_factory=set)
    requester: int | None = None
    cached: dict[int, tuple[CacheState, Any]] = field(default_factory=dict)
    memory_data: Any = None
    pending_packets: int = 0
    inflight_inv_targets: set[int] = field(default_factory=set)
    traps_pending: int = 0
    software_vector: set[int] | None = None

    def committed_copies(self) -> dict[int, tuple[CacheState, Any]]:
        """Valid copies minus those with an invalidation on the wire."""
        return {
            node: copy
            for node, copy in self.cached.items()
            if node not in self.inflight_inv_targets
        }


# ----------------------------------------------------------------------
# Always-true predicates (hold in every reachable state)
# ----------------------------------------------------------------------


def check_single_writer(view: BlockView) -> list[str]:
    """SWMR: at most one writer, and a writer excludes all other copies."""
    problems: list[str] = []
    copies = view.committed_copies()
    rw_holders = sorted(
        n for n, (state, _) in copies.items() if state is CacheState.READ_WRITE
    )
    if len(rw_holders) > 1:
        problems.append(
            f"block {view.block:#x}: nodes {rw_holders} hold READ_WRITE copies"
        )
    elif rw_holders:
        others = sorted(set(copies) - set(rw_holders))
        if others:
            problems.append(
                f"block {view.block:#x}: node {rw_holders[0]} holds a "
                f"READ_WRITE copy while nodes {others} also hold copies"
            )
        if view.dir_state is DirState.READ_ONLY:
            problems.append(
                f"block {view.block:#x}: node {rw_holders[0]} holds a "
                f"READ_WRITE copy but the directory is READ_ONLY"
            )
    return problems


def check_directory_coverage(view: BlockView) -> list[str]:
    """Every committed copy is known to the directory (or being killed).

    The converse — a recorded node with no copy — is the allowed stale
    pointer left by a silent clean replacement.

    The requester of an open transaction counts as covered: an upgrading
    writer keeps its (clean, memory-equal) READ_ONLY copy while the
    directory collects acknowledgments — ``begin_transaction`` cleared
    its pointer, but the entry still knows it as ``requester`` and the
    eventual data grant overwrites the line.
    """
    if view.recorded is None:  # broadcast-mode entry: anyone may share
        return []
    covered = view.recorded | view.awaited
    if view.requester is not None:
        covered = covered | {view.requester}
    unknown = sorted(set(view.committed_copies()) - covered)
    if unknown:
        return [
            f"block {view.block:#x}: cached at {unknown} "
            f"but directory records {sorted(covered)}"
        ]
    return []


def check_data_value(view: BlockView) -> list[str]:
    """Every committed READ_ONLY copy holds exactly what memory holds."""
    problems: list[str] = []
    for node, (state, data) in sorted(view.committed_copies().items()):
        if state is CacheState.READ_ONLY and data != view.memory_data:
            problems.append(
                f"block {view.block:#x}: node {node} caches "
                f"{data} but memory holds {view.memory_data}"
            )
    return problems


def check_transaction_sanity(view: BlockView) -> list[str]:
    """Requester/AckCtr bookkeeping matches the directory state."""
    problems: list[str] = []
    in_transaction = view.dir_state in (
        DirState.READ_TRANSACTION,
        DirState.WRITE_TRANSACTION,
    )
    if in_transaction:
        if view.requester is None:
            problems.append(
                f"block {view.block:#x}: open {view.dir_state.name} "
                f"without a requester"
            )
        if not view.awaited:
            problems.append(
                f"block {view.block:#x}: open {view.dir_state.name} "
                f"awaiting no acknowledgments"
            )
    else:
        if view.awaited:
            problems.append(
                f"block {view.block:#x}: {view.dir_state.name} but "
                f"acks outstanding from {sorted(view.awaited)}"
            )
        if view.requester is not None:
            problems.append(
                f"block {view.block:#x}: {view.dir_state.name} but "
                f"requester {view.requester} still recorded"
            )
    return problems


def check_meta_state(view: BlockView, *, strict_vector: bool = False) -> list[str]:
    """LimitLESS meta-state consistency (Table 4 modes).

    ``strict_vector`` additionally demands that a populated software
    vector only exists while the entry is software-extended — true in
    every reachable state, but too strict for auditor tests that inject
    vectors by hand.
    """
    problems: list[str] = []
    if view.meta is MetaState.TRANS_IN_PROGRESS:
        if view.trap_mode is None:
            problems.append(
                f"block {view.block:#x}: interlocked without a recorded "
                f"trap mode"
            )
        if view.traps_pending < 1:
            problems.append(
                f"block {view.block:#x}: interlocked but no diverted "
                f"packet awaits the trap handler"
            )
    else:
        if view.trap_mode is not None:
            problems.append(
                f"block {view.block:#x}: stale trap mode "
                f"{view.trap_mode.name} outside an interlock"
            )
        if view.pending_packets:
            problems.append(
                f"block {view.block:#x}: {view.pending_packets} packets "
                f"queued without an interlock"
            )
    if view.meta is MetaState.TRAP_ON_WRITE:
        if view.dir_state is not DirState.READ_ONLY:
            problems.append(
                f"block {view.block:#x}: TRAP_ON_WRITE in "
                f"{view.dir_state.name} (must be READ_ONLY)"
            )
        if not view.software_vector:
            problems.append(
                f"block {view.block:#x}: TRAP_ON_WRITE with an empty "
                f"software vector"
            )
    if (
        strict_vector
        and view.software_vector
        and view.meta not in (MetaState.TRAP_ON_WRITE, MetaState.TRANS_IN_PROGRESS)
    ):
        problems.append(
            f"block {view.block:#x}: software vector "
            f"{sorted(view.software_vector)} survives in {view.meta.name} mode"
        )
    return problems


#: The predicate set that holds in **every** reachable state.
ALWAYS_PREDICATES = (
    check_single_writer,
    check_directory_coverage,
    check_data_value,
    check_transaction_sanity,
    check_meta_state,
)


def state_problems(view: BlockView, *, strict_vector: bool = False) -> list[str]:
    """Run every always-true predicate against one view."""
    problems: list[str] = []
    problems += check_single_writer(view)
    problems += check_directory_coverage(view)
    problems += check_data_value(view)
    problems += check_transaction_sanity(view)
    problems += check_meta_state(view, strict_vector=strict_vector)
    return problems


# ----------------------------------------------------------------------
# Quiescence-only predicates (hold once all activity has drained)
# ----------------------------------------------------------------------


def quiescent_problems(view: BlockView) -> list[str]:
    """Checks valid only when nothing is in flight or interlocked."""
    problems: list[str] = []
    if view.meta is MetaState.TRANS_IN_PROGRESS:
        problems.append(f"block {view.block:#x}: interlocked at quiescence")
    if view.pending_packets:
        problems.append(f"block {view.block:#x}: queued packets at quiescence")
    if view.dir_state in (DirState.READ_TRANSACTION, DirState.WRITE_TRANSACTION):
        problems.append(
            f"block {view.block:#x}: open {view.dir_state.name} at quiescence"
        )
    copies = view.cached
    rw_holders = sorted(
        n for n, (state, _) in copies.items() if state is CacheState.READ_WRITE
    )
    if view.dir_state is DirState.READ_WRITE:
        if len(copies) != 1 or len(rw_holders) != 1:
            problems.append(
                f"block {view.block:#x}: READ_WRITE but copies at "
                f"{sorted(copies)} (rw={rw_holders})"
            )
    elif rw_holders:
        problems.append(
            f"block {view.block:#x}: {view.dir_state.name} but nodes "
            f"{rw_holders} hold READ_WRITE copies"
        )
    return problems
