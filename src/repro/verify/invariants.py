"""Coherence invariant auditing.

At quiescence (all programs finished, no packets in flight, no open
transactions) the machine must satisfy the invariants the protocol exists
to provide.  The auditor cross-checks three sources of truth — the
directory entries, the software-extended vectors, and the actual cache
arrays — plus the block data itself.

Allowed asymmetry: a directory (or software vector) may record a *stale*
sharer whose cache silently replaced its clean copy; the reverse — a cache
holding a copy the directory does not know about — is a protocol violation.
"""

from __future__ import annotations

from ..cache.states import CacheState
from ..coherence.states import DirState, MetaState


class CoherenceViolation(AssertionError):
    """The memory system ended in an inconsistent state."""


def audit_machine(machine) -> int:
    """Audit a finished machine; returns the number of entries checked."""
    problems: list[str] = []
    checked = 0

    if machine.network.in_flight:
        problems.append(f"{machine.network.in_flight} packets still in flight")

    for node in machine.nodes:
        if not node.cache_controller.idle():
            problems.append(f"node {node.node_id}: open MSHRs at quiescence")
        if node.nic.ipi_pending():
            problems.append(f"node {node.node_id}: IPI queue not drained")

    # Map: block -> {node: cache line} for every valid cached copy.
    cached: dict[int, dict[int, object]] = {}
    for node in machine.nodes:
        for line in node.cache_array.valid_lines():
            cached.setdefault(line.block, {})[node.node_id] = line

    for node in machine.nodes:
        controller = node.directory_controller
        software = node.software
        for entry in controller.directory.entries():
            checked += 1
            block = entry.block
            copies = cached.get(block, {})
            recorded = controller.recorded_holders(entry)
            if recorded is None:  # broadcast-mode entry: anyone may share
                recorded = {n.node_id for n in machine.nodes}
            if software is not None:
                recorded |= software.vectors.get(block, set())

            if entry.meta is MetaState.TRANS_IN_PROGRESS:
                problems.append(f"block {block:#x}: interlocked at quiescence")
            if entry.pending:
                problems.append(f"block {block:#x}: queued packets at quiescence")
            if entry.state in (DirState.READ_TRANSACTION, DirState.WRITE_TRANSACTION):
                problems.append(
                    f"block {block:#x}: open {entry.state.name} at quiescence"
                )

            unknown = set(copies) - recorded
            if unknown:
                problems.append(
                    f"block {block:#x}: cached at {sorted(unknown)} "
                    f"but directory records {sorted(recorded)}"
                )

            rw_holders = [
                n for n, line in copies.items()
                if line.state is CacheState.READ_WRITE
            ]
            if entry.state is DirState.READ_WRITE:
                if len(copies) != 1 or len(rw_holders) != 1:
                    problems.append(
                        f"block {block:#x}: READ_WRITE but copies at "
                        f"{sorted(copies)} (rw={sorted(rw_holders)})"
                    )
            else:
                if rw_holders:
                    problems.append(
                        f"block {block:#x}: {entry.state.name} but nodes "
                        f"{sorted(rw_holders)} hold READ_WRITE copies"
                    )
                # Every read-only copy must match memory's data.
                memory_words = node.memory.block(block).words
                for holder, line in copies.items():
                    if line.data.words != memory_words:
                        problems.append(
                            f"block {block:#x}: node {holder} caches "
                            f"{line.data.words} but memory holds {memory_words}"
                        )

    if problems:
        summary = "\n  ".join(problems[:20])
        more = f"\n  (+{len(problems) - 20} more)" if len(problems) > 20 else ""
        raise CoherenceViolation(
            f"{len(problems)} coherence violations:\n  {summary}{more}"
        )
    return checked
