"""Coherence invariant auditing.

At quiescence (all programs finished, no packets in flight, no open
transactions) the machine must satisfy the invariants the protocol exists
to provide.  The auditor cross-checks three sources of truth — the
directory entries, the software-extended vectors, and the actual cache
arrays — plus the block data itself.

The per-block checks themselves live in :mod:`repro.verify.predicates` as
pure functions over a :class:`~repro.verify.predicates.BlockView`; the
exhaustive model checker (:mod:`repro.modelcheck`) applies the same
predicates to every reachable state, so a property proved there is the
property audited here.

Allowed asymmetry: a directory (or software vector) may record a *stale*
sharer whose cache silently replaced its clean copy; the reverse — a cache
holding a copy the directory does not know about — is a protocol violation.
"""

from __future__ import annotations

from .predicates import BlockView, quiescent_problems, state_problems


class CoherenceViolation(AssertionError):
    """The memory system ended in an inconsistent state."""


def machine_block_view(node, entry, cached_copies) -> BlockView:
    """Build the auditor's :class:`BlockView` for one directory entry.

    ``cached_copies`` maps node id -> ``(state, words)`` for every valid
    copy of the entry's block, machine-wide.  The tuple form (rather than
    live cache-line objects) is deliberate: a sharded audit exchanges
    exactly these holdings between workers.  Nothing is in flight at audit
    time, so the in-flight invalidation set is empty and ``awaited`` is
    whatever the (necessarily broken, if nonempty) entry still records.
    """
    controller = node.directory_controller
    software = node.software
    recorded = controller.recorded_holders(entry)
    vector = software.vectors.get(entry.block, set()) if software else set()
    if recorded is not None:
        recorded = set(recorded) | vector
    traps_pending = sum(
        1 for p in node.nic._ipi_queue if p.address == entry.block
    )
    return BlockView(
        block=entry.block,
        dir_state=entry.state,
        meta=entry.meta,
        trap_mode=entry.trap_mode,
        recorded=recorded,
        awaited=set(entry.ack_waiting),
        requester=entry.requester,
        cached=dict(cached_copies),
        memory_data=node.memory.block(entry.block).words,
        pending_packets=len(entry.pending),
        traps_pending=traps_pending,
        software_vector=vector,
    )


def cache_holdings(nodes) -> dict[int, dict[int, tuple]]:
    """Map block -> {node: (state, words)} for every valid cached copy.

    Picklable, so a shard worker can ship its slice to the parent, which
    unions the slices into the machine-wide map every shard audits against.
    """
    cached: dict[int, dict[int, tuple]] = {}
    for node in nodes:
        for line in node.cache_array.valid_lines():
            cached.setdefault(line.block, {})[node.node_id] = (
                line.state,
                line.data.words,
            )
    return cached


def local_quiesce_problems(nodes, network) -> list[str]:
    """Shard-local quiescence checks (in-flight, MSHRs, IPI queues)."""
    problems: list[str] = []
    if network.in_flight:
        problems.append(f"{network.in_flight} packets still in flight")
    for node in nodes:
        if not node.cache_controller.idle():
            problems.append(f"node {node.node_id}: open MSHRs at quiescence")
        if node.nic.ipi_pending():
            problems.append(f"node {node.node_id}: IPI queue not drained")
    return problems


def audit_entries(nodes, cached) -> tuple[int, list[str]]:
    """Audit the directory entries homed on ``nodes`` against the
    machine-wide ``cached`` holdings map; returns (entries checked,
    problems found)."""
    problems: list[str] = []
    checked = 0
    for node in nodes:
        for entry in node.directory_controller.directory.entries():
            checked += 1
            view = machine_block_view(node, entry, cached.get(entry.block, {}))
            problems += quiescent_problems(view)
            problems += state_problems(view)
    return checked, problems


def raise_on_problems(problems: list[str]) -> None:
    """Raise :class:`CoherenceViolation` summarizing a nonempty list."""
    if not problems:
        return
    summary = "\n  ".join(problems[:20])
    more = f"\n  (+{len(problems) - 20} more)" if len(problems) > 20 else ""
    raise CoherenceViolation(
        f"{len(problems)} coherence violations:\n  {summary}{more}"
    )


def audit_machine(machine) -> int:
    """Audit a finished machine; returns the number of entries checked."""
    problems = local_quiesce_problems(machine.nodes, machine.network)
    cached = cache_holdings(machine.nodes)
    checked, entry_problems = audit_entries(machine.nodes, cached)
    raise_on_problems(problems + entry_problems)
    return checked
