"""Processor model and program operation vocabulary."""

from . import ops
from .processor import Context, ContextState, Processor

__all__ = ["Context", "ContextState", "Processor", "ops"]
