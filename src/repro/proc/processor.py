"""SPARCLE-like processor model.

Each processor runs one or more *contexts* (hardware threads; SPARCLE caches
four register frames).  A context executes a program — a generator yielding
:mod:`repro.proc.ops` tuples.  Following the paper (§2):

* cache hits and local-memory misses hold the processor;
* a memory request that must cross the interconnection network releases the
  pipeline and, if another context is ready, the processor switches to it in
  ``switch_cycles`` (11 in SPARCLE);
* LimitLESS traps run on this processor (it implements
  :class:`~repro.coherence.limitless.TrapEngine`), displacing application
  work — the source of both the Ts cost and the mild back-off effect seen
  in Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from functools import partial
from typing import Callable, Generator, Optional

from ..cache.controller import CacheController
from ..cache.states import CacheState
from ..coherence.limitless import TrapEngine
from ..mem.address import AddressSpace
from ..sim.component import Component
from ..sim.kernel import SimulationError, Simulator
from ..stats.counters import Counters, counter_slot
from . import ops

# Interned hot-counter slots (see repro.stats.counters): bumping a list
# cell beats hashing a dotted name on the instruction-issue path.
_THINK_SLOT = counter_slot("cpu.think_cycles")
_REMOTE_STALL_SLOT = counter_slot("cpu.remote_stalls")
_LOCAL_STALL_SLOT = counter_slot("cpu.local_stalls")


class ContextState(Enum):
    READY = auto()
    RUNNING = auto()
    BLOCKED = auto()
    DONE = auto()


@dataclass(slots=True)
class Context:
    """One hardware context (register frame set).

    Slotted: ``_step`` touches a dozen of these fields per issued op on
    both backends, and slot access skips the per-instance dict.
    """

    index: int
    gen: Generator
    state: ContextState = ContextState.READY
    started: bool = False
    resume_value: Optional[int] = None
    ops_executed: int = 0
    #: most recent op issued (debugging / deadlock diagnosis)
    last_op: tuple | None = None
    # -- weak-ordering store buffer state ------------------------------
    #: stores issued but not yet completed (memory_model="wo")
    outstanding_stores: int = 0
    #: per-block count of those stores (loads to these blocks must wait)
    pending_store_blocks: dict[int, int] = field(default_factory=dict)
    #: an op pulled from the generator but waiting on a drain condition
    pending_op: tuple | None = None
    #: what the pending op waits for: "slot" | "all" | a block address
    pending_needs: object = None
    #: remaining ops of an :func:`repro.proc.ops.burst` being executed
    burst_ops: tuple | None = None
    burst_pos: int = 0
    #: completion callback pre-bound to this context (avoids allocating a
    #: closure per memory access in Processor._issue)
    mem_done: Callable[[Optional[int]], None] | None = None


class Processor(Component, TrapEngine):
    """In-order processor executing program generators over the cache."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        space: AddressSpace,
        cache: CacheController,
        *,
        switch_cycles: int = 11,
        max_contexts: int = 4,
        memory_model: str = "sc",
        store_buffer: int = 8,
        counters: Counters | None = None,
        on_done: Callable[["Processor"], None] | None = None,
    ) -> None:
        super().__init__(sim, f"cpu{node_id}")
        self.node_id = node_id
        self.space = space
        self.cache = cache
        self.switch_cycles = switch_cycles
        self.max_contexts = max_contexts
        if memory_model not in ("sc", "wo"):
            raise ValueError(f"unknown memory model {memory_model!r}")
        self.memory_model = memory_model
        self.store_buffer = store_buffer
        self.counters = counters if counters is not None else Counters()
        # Slot view of the counter bag for per-op bump sites: a list
        # item-add beats hashing a name on the instruction-issue hot path.
        self._slots = self.counters.slot_view()
        self.on_done = on_done
        self.contexts: list[Context] = []
        self._running: Context | None = None
        self._last_on_pipeline: Context | None = None
        # Trap engine state
        self.trap_free_at = 0
        self.trap_cycles = 0
        self.traps_taken = 0
        # Accounting
        self.busy_cycles = 0
        self.switch_charged = 0
        self.finish_time: int | None = None
        self.done = False

    # ------------------------------------------------------------------
    # Thread setup
    # ------------------------------------------------------------------

    def add_thread(self, gen: Generator) -> Context:
        """Load a program into a free hardware context."""
        if len(self.contexts) >= self.max_contexts:
            raise SimulationError(f"{self.name}: out of hardware contexts")
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"{self.name}: programs must be generators (got {type(gen).__name__})"
            )
        ctx = Context(len(self.contexts), gen)
        ctx.mem_done = partial(self._mem_done, ctx)
        self.contexts.append(ctx)
        return ctx

    def start(self) -> None:
        """Begin executing (called once, at cycle 0 or later)."""
        if not self.contexts:
            self._finish()
            return
        self._dispatch(self.contexts[0], 0)

    # ------------------------------------------------------------------
    # TrapEngine: LimitLESS software runs here
    # ------------------------------------------------------------------

    def request_trap(self, cycles: int, callback: Callable[[], None]) -> None:
        start = max(self.now, self.trap_free_at)
        self.trap_free_at = start + cycles
        self.trap_cycles += cycles
        self.traps_taken += 1
        self.sim.post(self.trap_free_at, callback)

    # ------------------------------------------------------------------
    # Execution engine
    # ------------------------------------------------------------------

    def _dispatch(self, ctx: Context, delay: int) -> None:
        self._running = ctx
        self._last_on_pipeline = ctx
        ctx.state = ContextState.RUNNING
        self.schedule(delay, self._step, ctx)

    def _step(self, ctx: Context) -> None:
        if ctx.state is ContextState.DONE:  # pragma: no cover - safety net
            return
        if self.sim.now < self.trap_free_at:
            # A LimitLESS trap owns the pipeline; resume when it returns.
            self.sim.post(self.trap_free_at, self._step, ctx)
            return
        ctx.state = ContextState.RUNNING
        if ctx.pending_op is not None:
            # Resume an op that was parked on a store-buffer drain.
            op, ctx.pending_op, ctx.pending_needs = ctx.pending_op, None, None
        elif ctx.burst_ops is not None:
            # Mid-burst: pull the next precompiled op without resuming the
            # generator (its results are discarded by construction).
            ctx.resume_value = None
            burst = ctx.burst_ops
            pos = ctx.burst_pos
            op = burst[pos]
            pos += 1
            if pos == len(burst):
                ctx.burst_ops = None
                ctx.burst_pos = 0
            else:
                ctx.burst_pos = pos
            ctx.ops_executed += 1
        else:
            value, ctx.resume_value = ctx.resume_value, None
            try:
                if ctx.started:
                    op = ctx.gen.send(value)
                else:
                    ctx.started = True
                    op = next(ctx.gen)
            except StopIteration:
                if ctx.outstanding_stores:
                    # Drain the store buffer before retiring the thread.
                    self._park(ctx, ("__retire__",), "all")
                    return
                self._retire(ctx)
                return
            ctx.ops_executed += 1
        ctx.last_op = op
        # The two dominant op kinds are dispatched here rather than in
        # _execute_op, saving a call frame per instruction; _execute_op
        # keeps its own copies for the burst re-entry path.
        kind = op[0]
        if kind == ops.THINK:
            cycles = op[1]
            self.busy_cycles += cycles
            self._slots[_THINK_SLOT] += cycles
            sim = self.sim
            sim.post(sim.now + cycles, self._step, ctx)
            return
        if kind == ops.LOAD:
            addr = op[1]
            block = self.space.block_of(addr)
            if ctx.pending_store_blocks and ctx.pending_store_blocks.get(block):
                self._park(ctx, op, block)
                return
            self._issue(ctx, "load", addr, None, block)
            return
        self._execute_op(ctx, op)

    def _execute_op(self, ctx: Context, op: tuple) -> None:
        kind = op[0]
        if kind == ops.THINK:
            cycles = op[1]
            self.busy_cycles += cycles
            self._slots[_THINK_SLOT] += cycles
            sim = self.sim
            sim.post(sim.now + cycles, self._step, ctx)
        elif kind == ops.LOAD:
            addr = op[1]
            block = self.space.block_of(addr)
            if ctx.pending_store_blocks and ctx.pending_store_blocks.get(block):
                # Self-consistency: a load must see this context's own
                # buffered store; wait for it to land.
                self._park(ctx, op, block)
                return
            self._issue(ctx, "load", addr, None, block)
        elif kind == ops.STORE:
            if self.memory_model == "wo":
                self._issue_buffered_store(ctx, op)
            else:
                addr = op[1]
                self._issue(ctx, "store", addr, op[2], self.space.block_of(addr))
        elif kind == ops.RMW:
            if ctx.outstanding_stores:
                self._park(ctx, op, "all")  # atomics fence implicitly
                return
            addr = op[1]
            self._issue(ctx, "rmw", addr, op[2], self.space.block_of(addr))
        elif kind == ops.FENCE:
            if ctx.outstanding_stores:
                self.counters.bump("cpu.fence_stalls")
                self._park(ctx, op, "all")
                return
            self.busy_cycles += 1
            self.schedule(1, self._step, ctx)
        elif kind == ops.SWITCH_HINT:
            self._switch_hint(ctx)
        elif kind == ops.BURST:
            # Install the precompiled run and execute its first op now;
            # _step pulls the rest without generator round trips.
            sub = op[1]
            if len(sub) > 1:
                ctx.burst_ops = sub
                ctx.burst_pos = 1
            ctx.last_op = sub[0]
            self._execute_op(ctx, sub[0])
        elif kind == "__retire__":
            self._retire(ctx)
        else:
            raise SimulationError(f"{self.name}: unknown op {op!r}")

    def _switch_hint(self, ctx: Context) -> None:
        """Synchronization-fault switch: yield to a ready context, if any."""
        contexts = self.contexts
        n = len(contexts)
        if n > 1:
            for offset in range(1, n):
                candidate = contexts[(ctx.index + offset) % n]
                if candidate.state is ContextState.READY:
                    ctx.state = ContextState.READY
                    self.counters.bump("cpu.sync_switches")
                    self.switch_charged += self.switch_cycles
                    self._dispatch(candidate, self.switch_cycles)
                    return
        # nobody else is ready: continue after one cycle
        self.busy_cycles += 1
        sim = self.sim
        sim.post(sim.now + 1, self._step, ctx)

    # ------------------------------------------------------------------
    # Weakly-ordered stores (memory_model="wo")
    # ------------------------------------------------------------------

    def _issue_buffered_store(self, ctx: Context, op: tuple) -> None:
        if ctx.outstanding_stores >= self.store_buffer:
            self.counters.bump("cpu.store_buffer_full")
            self._park(ctx, op, "slot")
            return
        _, addr, value = op
        block = self.space.block_of(addr)
        ctx.outstanding_stores += 1
        ctx.pending_store_blocks[block] = (
            ctx.pending_store_blocks.get(block, 0) + 1
        )
        self.counters.bump("cpu.wo_stores_buffered")
        self.cache.access(
            "store", addr, value, lambda _v, b=block: self._store_done(ctx, b)
        )
        # The processor moves on: one cycle to issue into the buffer.
        self.busy_cycles += 1
        self.schedule(1, self._step, ctx)

    def _store_done(self, ctx: Context, block: int) -> None:
        ctx.outstanding_stores -= 1
        remaining = ctx.pending_store_blocks.get(block, 0) - 1
        if remaining > 0:
            ctx.pending_store_blocks[block] = remaining
        else:
            ctx.pending_store_blocks.pop(block, None)
        if (
            ctx.pending_op is not None
            and ctx.state is ContextState.BLOCKED
            and self._drain_satisfied(ctx)
        ):
            ctx.state = ContextState.READY
            if self._running is None:
                cost = 0 if self._last_on_pipeline is ctx else self.switch_cycles
                if cost:
                    self.switch_charged += cost
                    self.counters.bump("cpu.context_switches")
                self._dispatch(ctx, cost)

    def _drain_satisfied(self, ctx: Context) -> bool:
        needs = ctx.pending_needs
        if needs == "slot":
            return ctx.outstanding_stores < self.store_buffer
        if needs == "all":
            return ctx.outstanding_stores == 0
        return ctx.pending_store_blocks.get(needs, 0) == 0

    def _park(self, ctx: Context, op: tuple, needs) -> None:
        """Hold an op until the store buffer drains far enough."""
        ctx.pending_op = op
        ctx.pending_needs = needs
        ctx.state = ContextState.BLOCKED
        if self._running is ctx:
            self._running = None
            self._find_work()

    def _issue(self, ctx: Context, kind: str, addr: int, payload, block: int) -> None:
        cache = self.cache
        line = cache.array.lookup(block)
        ctx.state = ContextState.BLOCKED
        # _is_hit, inlined: loads hit on any valid copy, stores/rmws only
        # on an exclusive one.
        if line is not None and (
            line.state is CacheState.READ_WRITE
            or (kind == "load" and line.state is CacheState.READ_ONLY)
        ):
            # Hit: the pipeline is held; the tag check above doubles as
            # the controller's (same event, synchronous — the line state
            # cannot change in between).
            self.busy_cycles += cache.hit_latency
            cache.hit(kind, line, addr, payload, ctx.mem_done)
            return
        if self.space.home_of(block) != self.node_id:
            # Remote request: release the pipeline and switch if possible.
            self._slots[_REMOTE_STALL_SLOT] += 1
            self._running = None
        else:
            self._slots[_LOCAL_STALL_SLOT] += 1
        cache._access(kind, addr, payload, ctx.mem_done, block, line)
        if self._running is None:
            self._find_work()

    def _mem_done(self, ctx: Context, value) -> None:
        ctx.resume_value = value
        if self._running is ctx:
            # The pipeline was held (hit or local miss): continue in place.
            self._step(ctx)
            return
        ctx.state = ContextState.READY
        if self._running is None:
            cost = 0 if self._last_on_pipeline is ctx else self.switch_cycles
            if cost:
                self.switch_charged += cost
                self.counters.bump("cpu.context_switches")
            self._dispatch(ctx, cost)

    def _find_work(self) -> None:
        """Round-robin to the next ready context, paying the switch cost."""
        if not self.contexts:
            return
        start = (self._last_on_pipeline.index + 1) if self._last_on_pipeline else 0
        n = len(self.contexts)
        for offset in range(n):
            candidate = self.contexts[(start + offset) % n]
            if candidate.state is ContextState.READY:
                self.switch_charged += self.switch_cycles
                self.counters.bump("cpu.context_switches")
                self._dispatch(candidate, self.switch_cycles)
                return
        # Nothing ready: pipeline idles until a memory completion arrives.

    def _retire(self, ctx: Context) -> None:
        ctx.state = ContextState.DONE
        self._running = None
        if all(c.state is ContextState.DONE for c in self.contexts):
            self._finish()
        else:
            self._find_work()

    def _finish(self) -> None:
        self.done = True
        self.finish_time = self.now
        if self.on_done is not None:
            self.on_done(self)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def stall_cycles(self) -> int:
        """Cycles neither computing, switching, nor in trap code."""
        if self.finish_time is None:
            return 0
        return max(
            0,
            self.finish_time
            - self.busy_cycles
            - self.switch_charged
            - self.trap_cycles,
        )

    def utilization(self) -> float:
        if not self.finish_time:
            return 0.0
        return self.busy_cycles / self.finish_time
