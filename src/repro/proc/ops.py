"""Operations a program yields to the processor.

Programs are Python generators: they ``yield`` operation tuples and receive
the operation's result via ``send`` — loads return the word value, atomic
read-modify-writes return the old value.  This is the reproduction's
equivalent of the paper's trace-driven inputs with embedded synchronization
(the post-mortem scheduler of §5.1): the instruction stream is fixed, but
synchronization operations can branch on the values the memory system
actually delivers.
"""

from __future__ import annotations

from typing import Callable

THINK = "think"
LOAD = "load"
STORE = "store"
RMW = "rmw"
FENCE = "fence"
SWITCH_HINT = "switch_hint"
BURST = "burst"


def think(cycles: int) -> tuple:
    """Compute locally for ``cycles`` cycles (no memory traffic)."""
    if cycles < 0:
        raise ValueError("think time must be non-negative")
    return (THINK, cycles)


def load(addr: int) -> tuple:
    """Read a shared word; the yield expression evaluates to its value."""
    return (LOAD, addr)


def store(addr: int, value: int) -> tuple:
    """Write ``value`` to a shared word."""
    return (STORE, addr, value)


def rmw(addr: int, fn: Callable[[int], int]) -> tuple:
    """Atomic read-modify-write; yields the *old* value."""
    return (RMW, addr, fn)


def fetch_add(addr: int, delta: int = 1) -> tuple:
    """Atomic fetch-and-add; yields the pre-increment value."""
    return (RMW, addr, lambda old: old + delta)


def test_and_set(addr: int) -> tuple:
    """Atomic test-and-set; yields the old value (0 means acquired)."""
    return (RMW, addr, lambda _old: 1)


def switch_hint() -> tuple:
    """Yield the pipeline to another ready hardware context, if any.

    Models SPARCLE's context switch on *synchronization faults* (§2): a
    spinning thread gives way so same-node threads cannot starve each
    other.  Costs the 11-cycle switch when a switch happens, one cycle
    otherwise.  Spin loops in :mod:`repro.sync` emit this between polls.
    """
    return (SWITCH_HINT,)


def burst(*operations: tuple) -> tuple:
    """Precompile a run of *value-independent* operations into one yield.

    The processor executes the operations back to back with identical
    timing to yielding them one at a time, but without resuming the
    program generator in between — the per-op generator round trip is
    the dominant interpreter cost of long straight-line access runs.
    Use only where no operation's result feeds a branch or a later
    operand: every intermediate result is discarded (the ``yield``
    expression evaluates to the final operation's result).  Nested
    bursts flatten.
    """
    flat: list[tuple] = []
    for op in operations:
        if op[0] == BURST:
            flat.extend(op[1])
        else:
            flat.append(op)
    if not flat:
        raise ValueError("burst needs at least one operation")
    return (BURST, tuple(flat))


def fence() -> tuple:
    """Order point: wait until all of this context's buffered stores have
    completed.  A no-op (one cycle) under sequential consistency, where
    every store already blocks; required for release ordering under the
    weakly-ordered model (``memory_model="wo"``).  Atomics fence
    implicitly."""
    return (FENCE,)
