"""Protocol-level recovery under injected faults.

Each test runs a real machine with one fault class cranked far above
campaign rates and asserts both survival (completion + clean invariant
audit, which :func:`run_experiment` performs) and that the intended
recovery machinery actually fired.
"""

from __future__ import annotations

from repro.machine import AlewifeConfig, run_experiment
from repro.workloads import SyntheticSharingWorkload, WeatherWorkload


def run(protocol: str, *, procs: int = 8, seed: int = 1, **rates):
    config = AlewifeConfig(
        n_procs=procs, protocol=protocol, pointers=2, seed=seed, **rates
    )
    return run_experiment(config, WeatherWorkload(iterations=2))


def test_drops_recovered_by_request_retransmission():
    stats = run("fullmap", fault_drop_rate=0.03)
    c = stats.counters
    assert c.get("faults.dropped") > 0
    assert c.get("cache.request_retx") + c.get("dir.inv_retx") > 0
    assert stats.entries_audited > 0


def test_limited_directory_survives_dropped_eviction_invs():
    # pointers=1 maximizes fire-and-forget eviction invalidations, the
    # path covered by the directory's pending-eviction tracking.
    config = AlewifeConfig(
        n_procs=8, protocol="limited", pointers=1, seed=2, fault_drop_rate=0.03
    )
    stats = run_experiment(config, WeatherWorkload(iterations=2))
    assert stats.counters.get("dir.pointer_evictions") > 0
    assert stats.entries_audited > 0


def test_duplicates_are_suppressed():
    stats = run("fullmap", fault_dup_rate=0.05)
    c = stats.counters
    assert c.get("faults.duplicated") > 0
    assert stats.entries_audited > 0


def test_limitless_survives_trap_stalls_and_drops():
    config = AlewifeConfig(
        n_procs=8,
        protocol="limitless",
        pointers=2,
        ts=50,
        seed=3,
        fault_drop_rate=0.02,
        fault_stall_rate=0.5,
    )
    stats = run_experiment(config, WeatherWorkload(iterations=2))
    assert stats.traps_taken > 0
    assert stats.counters.get("faults.trap_stalls") > 0
    assert stats.entries_audited > 0


def test_synthetic_sharing_under_combined_faults():
    config = AlewifeConfig(
        n_procs=8,
        protocol="limited",
        pointers=2,
        seed=4,
        fault_drop_rate=0.02,
        fault_dup_rate=0.02,
        fault_delay_rate=0.02,
    )
    workload = SyntheticSharingWorkload(worker_sets=[(2, 4), (4, 1)], rounds=2)
    stats = run_experiment(config, workload)
    assert stats.counters.get("faults.dropped") > 0
    assert stats.entries_audited > 0
