"""The liveness watchdog must convert silent wedges into diagnoses."""

from __future__ import annotations

import pytest

from repro.machine import AlewifeConfig, run_experiment
from repro.sim.kernel import SimulationError
from repro.verify.diagnose import LivenessError
from repro.workloads import WeatherWorkload


def wedged_config(**overrides) -> AlewifeConfig:
    """Drop every protocol packet: no miss can ever complete."""
    defaults = dict(
        n_procs=4,
        protocol="fullmap",
        fault_drop_rate=1.0,
        watchdog_interval=2_000,
        max_cycles=10_000_000,
    )
    defaults.update(overrides)
    return AlewifeConfig(**defaults)


def test_watchdog_flags_a_wedged_machine_with_a_diagnosis():
    with pytest.raises(LivenessError) as excinfo:
        run_experiment(wedged_config(), WeatherWorkload(iterations=1))
    err = excinfo.value
    assert "no forward progress" in err.reason
    diagnosis = err.diagnosis
    assert diagnosis.finished_processors < diagnosis.total_processors
    assert diagnosis.cycle < 100_000  # caught long before max_cycles
    assert diagnosis.stuck_contexts
    assert diagnosis.open_mshrs
    assert not diagnosis.is_quiescent
    # The structured report is also the exception message.
    assert "open MSHR" in str(err)


def test_liveness_error_is_a_simulation_error():
    # Existing harnesses catch SimulationError; the watchdog must not
    # escape them.
    with pytest.raises(SimulationError):
        run_experiment(wedged_config(), WeatherWorkload(iterations=1))
