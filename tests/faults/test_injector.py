"""Unit tests for the seeded fault injector."""

from __future__ import annotations

import pytest

from repro.faults import FaultInjector
from repro.machine import AlewifeConfig, AlewifeMachine, run_experiment
from repro.network.packet import DISABLED_POOL, Packet
from repro.sim.kernel import Simulator
from repro.sim.rng import DeterministicRng
from repro.workloads import WeatherWorkload


class StubNetwork:
    """Just enough network for the injector: a sim and a delivery sink."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.in_flight = 0
        self.fault_injector = None
        self.pool = DISABLED_POOL
        self.delivered: list[tuple[int, Packet]] = []

    def _deliver(self, packet: Packet) -> None:
        self.in_flight -= 1
        self.delivered.append((self.sim.now, packet))


def make_injector(**rates) -> tuple[Simulator, StubNetwork, FaultInjector]:
    sim = Simulator(max_cycles=1_000_000)
    net = StubNetwork(sim)
    config = AlewifeConfig(n_procs=4, protocol="fullmap", **rates)
    return sim, net, FaultInjector(net, DeterministicRng(7), config)


class TestPairFifo:
    def test_delay_never_reorders_a_pair(self):
        sim, net, injector = make_injector(fault_delay_rate=1.0, fault_delay_max=64)
        packets = [Packet(0, 1, "RREQ", address=16 * i) for i in range(20)]
        for i, packet in enumerate(packets):
            injector.admit(10 + i, packet)
        sim.run()
        assert [p for _, p in net.delivered] == packets
        times = [t for t, _ in net.delivered]
        assert times == sorted(times)

    def test_duplicate_follows_its_original(self):
        sim, net, injector = make_injector(fault_dup_rate=1.0)
        original = Packet(0, 1, "RREQ", address=0)
        injector.admit(5, original)
        sim.run()
        assert [p for _, p in net.delivered] == [original, original]
        assert injector.counters.get("faults.duplicated") == 1

    def test_drop_swallows_the_delivery(self):
        sim, net, injector = make_injector(fault_drop_rate=1.0)
        injector.admit(5, Packet(0, 1, "RREQ", address=0))
        sim.run()
        assert net.delivered == []
        assert net.in_flight == 0
        assert injector.counters.get("faults.dropped") == 1

    def test_interrupt_packets_are_never_faulted(self):
        sim, net, injector = make_injector(fault_drop_rate=1.0)
        ipi = Packet(0, 1, "IPI")
        injector.admit(5, ipi)
        sim.run()
        assert [p for _, p in net.delivered] == [ipi]

    def test_oldest_pending_describes_inflight_packet(self):
        sim, net, injector = make_injector(fault_delay_rate=1.0)
        assert injector.oldest_pending() is None
        injector.admit(5, Packet(2, 3, "WREQ", address=0x40))
        described = injector.oldest_pending()
        assert "WREQ" in described and "2->3" in described


FAULTY = dict(
    fault_drop_rate=5e-3,
    fault_dup_rate=5e-3,
    fault_delay_rate=5e-3,
    fault_corrupt_rate=5e-3,
)


class TestDeterminism:
    def test_same_seed_is_bit_identical(self):
        config = AlewifeConfig(n_procs=8, protocol="limitless", seed=3, **FAULTY)
        workload = WeatherWorkload(iterations=2)
        first = run_experiment(config, WeatherWorkload(iterations=2))
        second = run_experiment(config, workload)
        assert first.to_dict() == second.to_dict()
        assert first.counters.get("faults.dropped") > 0

    def test_different_seed_diverges(self):
        base = AlewifeConfig(n_procs=8, protocol="fullmap", **FAULTY)
        first = run_experiment(base.with_(seed=1), WeatherWorkload(iterations=2))
        second = run_experiment(base.with_(seed=2), WeatherWorkload(iterations=2))
        assert first.cycles != second.cycles

    def test_zero_rates_skip_the_injector_entirely(self):
        config = AlewifeConfig(n_procs=4, protocol="fullmap", fault_drop_rate=0.0)
        assert not config.faults_enabled
        machine = AlewifeMachine(config)
        assert machine.network.fault_injector is None
        assert not machine.nodes[0].cache_controller.fault_tolerant


class TestCorruption:
    def test_crc_catches_corruption_as_detected_loss(self):
        config = AlewifeConfig(
            n_procs=8, protocol="fullmap", seed=5, fault_corrupt_rate=0.05
        )
        stats = run_experiment(config, WeatherWorkload(iterations=2))
        assert stats.counters.get("faults.corrupted") > 0
        # Every corrupted payload is discarded at the receiving NIC; the
        # retry protocol then recovers, so the run still audits clean.
        assert stats.counters.get("nic.crc_drops") == stats.counters.get(
            "faults.corrupted"
        )
        assert stats.entries_audited > 0

    def test_rate_validation(self):
        with pytest.raises(ValueError, match="fault_drop_rate"):
            AlewifeConfig(n_procs=4, fault_drop_rate=1.5)
