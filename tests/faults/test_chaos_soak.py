"""Chaos soak tier: 16-processor meshes under campaign-rate faults.

The acceptance bar for the fault subsystem: every protocol completes the
weather and synthetic workloads under combined drop + duplicate + delay
injection at the campaign rate, audits clean, and pays a bounded retry
overhead — while a zero-rate campaign cell remains bit-identical to the
unfaulted machine.
"""

from __future__ import annotations

import pytest

from repro.faults.campaign import campaign_jobs, workload_spec
from repro.machine import AlewifeConfig, run_experiment
from repro.sweep.runner import run_jobs

RATE = 1e-3
PROTOCOLS = ("fullmap", "limited", "limitless")
WORKLOADS = ("weather", "synthetic")


@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("workload", WORKLOADS)
def test_soak_survives_with_bounded_retry_overhead(protocol, workload):
    config = AlewifeConfig(
        n_procs=16,
        protocol=protocol,
        pointers=4,
        seed=0,
        fault_drop_rate=RATE,
        fault_dup_rate=RATE,
        fault_delay_rate=RATE,
    )
    stats = run_experiment(config, workload_spec(workload, 16, 2).build())
    # Completion: every processor finished (run_experiment would raise a
    # LivenessError otherwise) and the invariant audit covered real state.
    assert len(stats.per_proc_finish) == 16
    assert all(finish > 0 for finish in stats.per_proc_finish)
    assert stats.entries_audited > 0
    # Bounded overhead: at this rate, recovery traffic must stay a small
    # fraction of total traffic.
    retx = (
        stats.counters.get("cache.request_retx")
        + stats.counters.get("cache.writeback_retx")
        + stats.counters.get("dir.inv_retx")
    )
    assert retx <= max(10, stats.network.packets // 10)


def test_soak_through_the_sweep_runner():
    # The campaign grid itself (one seed per cell to keep the tier fast),
    # executed exactly as `repro faults` runs it.
    jobs = campaign_jobs(
        procs=16,
        protocols=PROTOCOLS,
        workloads=WORKLOADS,
        rates=[RATE],
        seeds=[1],
        iters=2,
    )
    results = run_jobs(jobs, timeout=120.0, on_error="record")
    assert all(r.ok for r in results), [r.error for r in results if not r.ok]


def test_zero_rate_cell_is_bit_identical_to_the_unfaulted_machine():
    (job,) = campaign_jobs(
        procs=16, protocols=["limitless"], workloads=["weather"], rates=[0.0],
        seeds=[0], iters=2,
    )
    assert not job.config.faults_enabled
    plain = AlewifeConfig(
        n_procs=16, protocol="limitless", pointers=4, ts=50, seed=0
    )
    faulted = run_experiment(job.config, job.workload.build())
    baseline = run_experiment(plain, workload_spec("weather", 16, 2).build())
    assert faulted.to_dict() == baseline.to_dict()
