"""Tests for the chaos-campaign grid and the ``repro faults`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.faults.campaign import (
    campaign_jobs,
    classify_error,
    run_campaign,
    workload_spec,
)
from repro.faults.cli import main as faults_main


class TestGrid:
    def test_grid_is_the_full_cross_product(self):
        jobs = campaign_jobs(
            procs=4,
            protocols=["fullmap", "limited"],
            workloads=["weather", "synthetic"],
            rates=[1e-3, 1e-2],
            seeds=[0, 1, 2],
        )
        assert len(jobs) == 2 * 2 * 2 * 3
        assert len({job.label for job in jobs}) == len(jobs)

    def test_rates_land_in_the_config(self):
        (job,) = campaign_jobs(
            procs=4,
            protocols=["fullmap"],
            workloads=["weather"],
            rates=[2e-3],
            seeds=[7],
            corrupt_rate=1e-4,
            stall_rate=0.1,
        )
        cfg = job.config
        assert cfg.fault_drop_rate == cfg.fault_dup_rate == 2e-3
        assert cfg.fault_delay_rate == 2e-3
        assert cfg.fault_corrupt_rate == 1e-4
        assert cfg.fault_stall_rate == 0.1
        assert cfg.seed == 7

    def test_unknown_workload_raises(self):
        with pytest.raises(ValueError, match="no campaign parameterization"):
            workload_spec("nope", 4, 2)


class TestClassify:
    def test_buckets(self):
        assert classify_error(None) == "survived"
        assert classify_error("CoherenceViolation: block 0x0 ...") == "violation"
        assert classify_error("LivenessError: no forward progress") == "liveness"
        assert classify_error("JobTimeout: exceeded 5s wall clock") == "timeout"
        assert classify_error("ZeroDivisionError: boom") == "crash"


class TestRunCampaign:
    def test_small_campaign_survives_and_writes_report(self, tmp_path):
        out = tmp_path / "BENCH_faults.json"
        lines: list[str] = []
        report = run_campaign(
            procs=4,
            protocols=["fullmap", "limited"],
            workloads=["weather"],
            rates=[5e-3],
            seeds=[0, 1],
            iters=1,
            out=out,
            echo=lines.append,
        )
        assert report["summary"]["points"] == 4
        assert report["summary"]["failed"] == 0
        assert report["summary"]["by_protocol"]["fullmap"]["survived"] == 2
        on_disk = json.loads(out.read_text())
        assert on_disk["summary"] == report["summary"]
        point = on_disk["points"][0]
        assert point["outcome"] == "survived"
        assert point["cycles"] > 0
        assert "retransmissions" in point
        assert any("survived" in line for line in lines)

    def test_failed_points_are_recorded_not_raised(self, tmp_path, monkeypatch):
        # A 1.0 drop rate wedges every run; the watchdog converts that to
        # a LivenessError, which must land in the report as a failure.
        report = run_campaign(
            procs=4,
            protocols=["fullmap"],
            workloads=["weather"],
            rates=[1.0],
            seeds=[0],
            iters=1,
            timeout=60.0,
            out=tmp_path / "r.json",
            echo=lambda line: None,
        )
        assert report["summary"]["failed"] == 1
        (point,) = report["points"]
        assert point["outcome"] == "liveness"
        assert "LivenessError" in point["error"]


class TestCli:
    def test_cli_end_to_end_exit_zero(self, tmp_path, capsys):
        out = tmp_path / "BENCH_faults.json"
        code = faults_main(
            [
                "--procs", "4",
                "--protocols", "fullmap",
                "--workloads", "weather",
                "--rates", "0.005",
                "--seeds", "0",
                "--iters", "1",
                "--out", str(out),
            ]
        )
        assert code == 0
        assert out.is_file()
        assert "survived" in capsys.readouterr().out

    def test_cli_exit_one_on_failure(self, tmp_path, capsys):
        code = faults_main(
            [
                "--procs", "4",
                "--protocols", "fullmap",
                "--workloads", "weather",
                "--rates", "1.0",
                "--seeds", "0",
                "--iters", "1",
                "--out", str(tmp_path / "r.json"),
            ]
        )
        assert code == 1

    def test_registered_as_repro_subcommand(self, tmp_path, capsys):
        from repro.cli import main as repro_main

        code = repro_main(
            [
                "faults",
                "--procs", "4",
                "--protocols", "fullmap",
                "--workloads", "weather",
                "--rates", "0.002",
                "--seeds", "0",
                "--iters", "1",
                "--out", str(tmp_path / "r.json"),
            ]
        )
        assert code == 0
