"""Tests for workload construction and their documented sharing shapes."""

from __future__ import annotations

import pytest

from repro.machine import AlewifeConfig, AlewifeMachine, run_experiment
from repro.workloads import (
    HotSpotWorkload,
    MatmulWorkload,
    MigratoryWorkload,
    MultigridWorkload,
    ProducerConsumerWorkload,
    SyntheticSharingWorkload,
    WeatherWorkload,
)


def small_config(**overrides):
    defaults = dict(
        n_procs=8,
        protocol="fullmap",
        cache_lines=512,
        segment_bytes=1 << 17,
        max_cycles=8_000_000,
    )
    defaults.update(overrides)
    return AlewifeConfig(**defaults)


class TestWeather:
    def test_builds_one_program_per_proc(self):
        machine = AlewifeMachine(small_config())
        programs = WeatherWorkload(iterations=1).build(machine)
        assert set(programs) == set(range(8))
        assert all(len(v) == 1 for v in programs.values())

    def test_hot_variable_worker_set_is_machine_wide(self):
        machine = AlewifeMachine(small_config())
        machine.run(WeatherWorkload(iterations=2))
        hot = next(
            a for a in machine.allocator.allocations if a.name == "weather.init"
        )
        entry = machine.nodes[0].directory_controller.directory.entry(
            machine.space.block_of(hot.base)
        )
        assert entry.peak_sharers == 8

    def test_optimized_reads_hot_variable_once(self):
        opt = run_experiment(
            small_config(), WeatherWorkload(iterations=3, optimized=True)
        )
        unopt = run_experiment(
            small_config(), WeatherWorkload(iterations=3, optimized=False)
        )
        assert opt.counters.get("cache.hits.load") < unopt.counters.get(
            "cache.hits.load"
        )

    def test_describe_mentions_optimization(self):
        assert "unoptimized" in WeatherWorkload().describe()
        assert "optimized" in WeatherWorkload(optimized=True).describe()

    def test_corner_worker_sets_are_two_remote_readers(self):
        machine = AlewifeMachine(small_config())
        machine.run(WeatherWorkload(iterations=2))
        for p in range(8):
            corner = next(
                a
                for a in machine.allocator.allocations
                if a.name == f"weather.corner{p}"
            )
            entry = machine.nodes[p].directory_controller.directory.entry(
                machine.space.block_of(corner.base)
            )
            # two neighbours plus (sometimes) the local writer
            assert 2 <= entry.peak_sharers <= 3


class TestMultigrid:
    def test_edge_worker_sets_are_pairwise(self):
        machine = AlewifeMachine(small_config())
        machine.run(MultigridWorkload(levels=(1, 1)))
        for p in range(1, 7):
            edge = next(
                a
                for a in machine.allocator.allocations
                if a.name == f"mg.left{p}"
            )
            entry = machine.nodes[p].directory_controller.directory.entry(
                machine.space.block_of(edge.base)
            )
            assert entry.peak_sharers <= 2

    def test_level_sequence_shapes_work(self):
        shallow = run_experiment(small_config(), MultigridWorkload(levels=(1,)))
        deep = run_experiment(small_config(), MultigridWorkload(levels=(2, 2, 2)))
        assert deep.cycles > shallow.cycles


class TestHotSpot:
    def test_write_once_mode(self):
        stats = run_experiment(small_config(), HotSpotWorkload(rounds=3))
        assert stats.cycles > 0

    def test_rewrite_mode_invalidates_readers(self):
        rewrite = run_experiment(
            small_config(), HotSpotWorkload(rounds=3, write_period=1)
        )
        once = run_experiment(small_config(), HotSpotWorkload(rounds=3))
        assert rewrite.counters.get("dir.invalidations") > once.counters.get(
            "dir.invalidations"
        )


class TestMigratory:
    def test_payload_migrates_through_every_processor(self):
        machine = AlewifeMachine(small_config())
        machine.run(MigratoryWorkload(rounds=2, payload_words=2))
        payload = next(
            a for a in machine.allocator.allocations if a.name == "mig.payload"
        )
        blk = machine.space.block_of(payload.base)
        value = machine.nodes[0].memory.peek_word(payload.base)
        for node in machine.nodes:
            line = node.cache_array.lookup(blk)
            if line is not None and line.state.name == "READ_WRITE":
                value = line.data.words[0]
        assert value == 16  # 8 procs x 2 rounds

    def test_exercises_ownership_transfers(self):
        stats = run_experiment(small_config(), MigratoryWorkload(rounds=1))
        assert stats.counters.get("dir.read_transactions_done") > 0


class TestProducerConsumer:
    def test_consumers_see_complete_epochs(self):
        stats = run_experiment(small_config(), ProducerConsumerWorkload(epochs=3))
        assert stats.cycles > 0

    def test_single_node_machine(self):
        stats = run_experiment(
            small_config(n_procs=1), ProducerConsumerWorkload(epochs=2)
        )
        assert stats.cycles > 0


class TestSynthetic:
    def test_rejects_oversized_worker_set(self):
        machine = AlewifeMachine(small_config())
        with pytest.raises(ValueError):
            SyntheticSharingWorkload(worker_sets=[(100, 1)]).build(machine)

    def test_worker_sets_match_specification(self):
        machine = AlewifeMachine(small_config())
        machine.run(
            SyntheticSharingWorkload(
                worker_sets=[(5, 2)], rounds=2, write_period=0
            )
        )
        peaks = []
        for a in machine.allocator.allocations:
            if a.name.startswith("syn.var"):
                entry = machine.nodes[a.home].directory_controller.directory.entry(
                    machine.space.block_of(a.base)
                )
                peaks.append(entry.peak_sharers)
        # worker-set 5 = the owner plus 4 readers; with write_period=0 the
        # owner never touches the variable, so the directory sees 4 readers
        assert all(p == 4 for p in peaks)

    def test_deterministic_given_seed(self):
        a = run_experiment(
            small_config(seed=3),
            SyntheticSharingWorkload(worker_sets=[(3, 2)], rounds=2),
        )
        b = run_experiment(
            small_config(seed=3),
            SyntheticSharingWorkload(worker_sets=[(3, 2)], rounds=2),
        )
        assert a.cycles == b.cycles
        assert a.network.packets == b.network.packets


class TestMatmul:
    def test_grid_factorization(self):
        assert MatmulWorkload._grid(8) == (2, 4)
        assert MatmulWorkload._grid(16) == (4, 4)
        assert MatmulWorkload._grid(7) == (1, 7)

    def test_row_and_column_sharing(self):
        machine = AlewifeMachine(small_config())
        machine.run(MatmulWorkload(sweeps=1))
        a_block = next(
            a for a in machine.allocator.allocations if a.name == "mm.a0.0"
        )
        entry = machine.nodes[a_block.home].directory_controller.directory.entry(
            machine.space.block_of(a_block.base)
        )
        # read by its row (4 procs on a 2x4 grid)
        assert entry.peak_sharers >= 3
