"""Tests for trace recording and post-mortem replay."""

from __future__ import annotations

import pytest

from repro.machine import AlewifeConfig, AlewifeMachine
from repro.proc import ops
from repro.workloads import (
    MigratoryWorkload,
    MultigridWorkload,
    TraceReplayWorkload,
    WeatherWorkload,
    record_trace,
)
from repro.workloads.trace import Trace, TraceOp


def small_config(**overrides):
    defaults = dict(
        n_procs=8,
        protocol="fullmap",
        cache_lines=512,
        segment_bytes=1 << 17,
        max_cycles=8_000_000,
    )
    defaults.update(overrides)
    return AlewifeConfig(**defaults)


class TestRecording:
    def test_trace_captures_every_reference(self):
        trace, stats = record_trace(small_config(), MultigridWorkload(levels=(1,)))
        c = stats.counters
        issued = sum(
            c.get(f"cache.hits.{k}") + c.get(f"cache.misses.{k}")
            for k in ("load", "store", "rmw")
        )
        # every cache access came from a recorded op (replayed MSHR waiters
        # re-enter access(), so issued >= recorded references)
        assert trace.references() > 0
        assert issued >= trace.references()

    def test_recording_preserves_results(self):
        """The wrapped workload must behave exactly like the bare one."""
        bare = AlewifeMachine(small_config()).run(WeatherWorkload(iterations=2))
        trace, recorded = record_trace(small_config(), WeatherWorkload(iterations=2))
        assert recorded.cycles == bare.cycles

    def test_rmw_recorded_as_delta(self):
        # Multigrid barriers arrive with fetch-and-add: rmws get recorded.
        trace, _ = record_trace(small_config(), MultigridWorkload(levels=(1,)))
        rmws = [
            op
            for stream in trace.streams.values()
            for op in stream
            if op.kind == ops.RMW
        ]
        assert rmws
        assert all(op.value == 1 for op in rmws)  # barrier increments

    def test_streams_keyed_by_processor(self):
        trace, _ = record_trace(small_config(), MultigridWorkload(levels=(1,)))
        assert set(trace.streams) == set(range(8))


class TestReplay:
    def test_replay_same_protocol_is_cycle_exact(self):
        trace, recorded = record_trace(small_config(), WeatherWorkload(iterations=2))
        replay = AlewifeMachine(small_config()).run(TraceReplayWorkload(trace))
        assert replay.cycles == recorded.cycles

    def test_replay_under_other_protocols(self):
        trace, _ = record_trace(small_config(), WeatherWorkload(iterations=2))
        cycles = {}
        for protocol, extras in [
            ("limited", {"pointers": 1}),
            ("limitless", {"pointers": 2, "ts": 40}),
            ("chained", {}),
        ]:
            stats = AlewifeMachine(small_config(protocol=protocol, **extras)).run(
                TraceReplayWorkload(trace)
            )
            cycles[protocol] = stats.cycles
        assert all(v > 0 for v in cycles.values())
        # a thrashing one-pointer directory must not be faster than LimitLESS
        assert cycles["limited"] >= cycles["limitless"] * 0.9

    def test_replay_reference_stream_identical(self):
        trace, _ = record_trace(small_config(), MultigridWorkload(levels=(1,)))
        machine = AlewifeMachine(small_config(protocol="chained"))
        machine.run(TraceReplayWorkload(trace))
        # re-record the replay: streams must match address-for-address
        trace2, _ = record_trace(
            small_config(protocol="chained"), TraceReplayWorkload(trace)
        )
        for proc in trace.streams:
            a = [(op.kind, op.addr) for op in trace.streams[proc]]
            b = [(op.kind, op.addr) for op in trace2.streams[proc]]
            assert a == b

    def test_replay_on_wrong_machine_size_rejected(self):
        trace, _ = record_trace(small_config(), MultigridWorkload(levels=(1,)))
        machine = AlewifeMachine(small_config(n_procs=4))
        with pytest.raises(ValueError):
            machine.run(TraceReplayWorkload(trace))

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            TraceReplayWorkload(None)

    def test_manual_trace_replay(self):
        """A hand-written trace drives the machine directly."""
        config = small_config(n_procs=2)
        machine = AlewifeMachine(config)
        addr = machine.space.address(0, 0x400)
        trace = Trace(2)
        trace.append(0, TraceOp(ops.STORE, addr=addr, value=5))
        trace.append(0, TraceOp(ops.FENCE))
        trace.append(1, TraceOp(ops.THINK, value=200))
        trace.append(1, TraceOp(ops.LOAD, addr=addr))
        trace.append(1, TraceOp(ops.RMW, addr=addr, value=2))
        machine.run(TraceReplayWorkload(trace))
        blk = machine.space.block_of(addr)
        value = machine.nodes[0].memory.peek_word(addr)
        for node in machine.nodes:
            line = node.cache_array.lookup(blk)
            if line is not None and line.state.name == "READ_WRITE":
                value = line.data.words[machine.space.word_in_block(addr)]
        assert value == 7
