"""Tests for the butterfly and latency-tolerance workloads."""

from __future__ import annotations

import pytest

from repro.machine import AlewifeConfig, AlewifeMachine, run_experiment
from repro.workloads import ButterflyWorkload, LatencyToleranceWorkload


def config(**overrides):
    defaults = dict(
        n_procs=8,
        protocol="fullmap",
        cache_lines=512,
        segment_bytes=1 << 17,
        max_cycles=8_000_000,
    )
    defaults.update(overrides)
    return AlewifeConfig(**defaults)


class TestButterfly:
    def test_all_reduce_property(self):
        """After log2(N) exchange stages every processor holds the same
        combined value — the butterfly's defining invariant, computed
        entirely through coherent shared memory."""
        machine = AlewifeMachine(config())
        workload = ButterflyWorkload(sweeps=1)
        machine.run(workload)
        finals = set(workload.finals.values())
        assert len(finals) == 1
        assert finals.pop() == sum(range(1, 9))

    def test_requires_power_of_two(self):
        machine = AlewifeMachine(config(n_procs=6))
        with pytest.raises(ValueError):
            ButterflyWorkload().build(machine)

    def test_pairwise_worker_sets(self):
        machine = AlewifeMachine(config())
        machine.run(ButterflyWorkload(sweeps=1))
        for a in machine.allocator.allocations:
            if not a.name.startswith("fft.") or ".bar" in a.name:
                continue  # barrier tree variables have wider worker-sets
            entry = machine.nodes[a.home].directory_controller.directory.entry(
                machine.space.block_of(a.base)
            )
            assert entry.peak_sharers <= 2

    @pytest.mark.parametrize(
        "protocol,extras",
        [("limited", {"pointers": 1}), ("limitless", {"pointers": 1, "ts": 30})],
    )
    def test_under_tight_pointer_budgets(self, protocol, extras):
        machine = AlewifeMachine(config(protocol=protocol, **extras))
        workload = ButterflyWorkload(sweeps=1)
        machine.run(workload)
        assert len(set(workload.finals.values())) == 1

    def test_multiple_sweeps(self):
        machine = AlewifeMachine(config())
        workload = ButterflyWorkload(sweeps=3)
        stats = machine.run(workload)
        assert stats.cycles > 0


class TestLatencyTolerance:
    def test_more_threads_less_time(self):
        cycles = {}
        for threads in (1, 4):
            stats = run_experiment(
                config(n_procs=16),
                LatencyToleranceWorkload(
                    threads_per_proc=threads, total_accesses_per_proc=32
                ),
            )
            cycles[threads] = stats.cycles
        assert cycles[4] < cycles[1]

    def test_every_access_is_a_remote_miss(self):
        stats = run_experiment(
            config(n_procs=8),
            LatencyToleranceWorkload(threads_per_proc=2, total_accesses_per_proc=16),
        )
        c = stats.counters
        # every load opened a miss (the matching "hit" count is the MSHR
        # waiter replaying through the front door after its fill)
        assert c.get("cache.misses.load") == 8 * 16
        assert c.get("cache.fills") == 8 * 16
        assert c.get("cache.local_requests") == 0

    def test_rejects_too_many_threads(self):
        machine = AlewifeMachine(config(max_contexts=2))
        with pytest.raises(ValueError):
            LatencyToleranceWorkload(threads_per_proc=4).build(machine)

    def test_describe(self):
        assert "threads=2" in LatencyToleranceWorkload(threads_per_proc=2).describe()
