"""Tests for the parallel cached sweep runner and the figure grids."""

from __future__ import annotations

import json

import pytest

from repro.machine import AlewifeConfig
from repro.sweep import (
    Job,
    ResultCache,
    WorkloadSpec,
    figure_grids,
    run_figure_suite,
    run_jobs,
)
from repro.sweep.cli import main as sweep_main


def small_job(label="full", protocol="fullmap", rounds=2, **overrides) -> Job:
    config = AlewifeConfig(
        n_procs=4, protocol=protocol, max_cycles=2_000_000, **overrides
    )
    return Job(label, config, WorkloadSpec("hotspot", {"rounds": rounds}))


class TestRunJobs:
    def test_runs_jobs_in_order(self):
        jobs = [small_job("a"), small_job("b", protocol="limited", pointers=1)]
        results = run_jobs(jobs)
        assert [r.job.label for r in results] == ["a", "b"]
        assert all(r.stats.cycles > 0 for r in results)
        assert not any(r.cached for r in results)

    def test_identical_jobs_simulate_once(self):
        jobs = [small_job("first"), small_job("duplicate")]
        results = run_jobs(jobs)
        assert results[0].cached is False
        assert results[1].cached is True
        assert results[1].stats.cycles == results[0].stats.cycles

    def test_cache_hit_on_second_call(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_jobs([small_job()], cache=cache)
        assert not first[0].cached
        second = run_jobs([small_job()], cache=cache)
        assert second[0].cached
        assert second[0].stats.cycles == first[0].stats.cycles

    def test_parallel_matches_serial(self, tmp_path):
        jobs = [
            small_job("full"),
            small_job("dir1", protocol="limited", pointers=1),
            small_job("dir2", protocol="limited", pointers=2),
            small_job("ll", protocol="limitless", pointers=1, ts=25),
        ]
        serial = run_jobs(jobs)
        parallel = run_jobs(jobs, workers=2)
        assert [r.stats.cycles for r in serial] == [r.stats.cycles for r in parallel]
        assert [r.stats.network.packets for r in serial] == (
            [r.stats.network.packets for r in parallel]
        )

    def test_progress_fires_once_per_job(self):
        seen = []
        jobs = [small_job("a"), small_job("a-dup")]
        run_jobs(jobs, progress=lambda r, done, total: seen.append((done, total)))
        assert sorted(seen) == [(1, 2), (2, 2)]


class TestFailuresAndTimeouts:
    def test_worker_exception_raises_by_default(self, monkeypatch):
        import repro.sweep.runner as runner

        def boom(config, workload):
            raise ValueError("injected failure")

        monkeypatch.setattr(runner, "run_experiment", boom)
        with pytest.raises(RuntimeError, match="grid point 'a' failed.*injected"):
            run_jobs([small_job("a")])

    def test_on_error_record_returns_failed_result(self, monkeypatch, tmp_path):
        import repro.sweep.runner as runner

        def boom(config, workload):
            raise ValueError("injected failure")

        monkeypatch.setattr(runner, "run_experiment", boom)
        cache = ResultCache(tmp_path)
        (result,) = run_jobs([small_job()], cache=cache, on_error="record")
        assert not result.ok
        assert result.stats is None
        assert result.error == "ValueError: injected failure"
        # Failed points must never poison the cache.
        assert cache.stores == 0

    def test_duplicates_inherit_their_primary_error(self, monkeypatch):
        import repro.sweep.runner as runner

        monkeypatch.setattr(
            runner,
            "run_experiment",
            lambda c, w: (_ for _ in ()).throw(ValueError("nope")),
        )
        results = run_jobs(
            [small_job("first"), small_job("dup")], on_error="record"
        )
        assert [r.ok for r in results] == [False, False]
        assert results[1].cached and results[1].error == results[0].error

    def test_timeout_reclaims_a_hung_point(self, monkeypatch):
        import time as time_module

        import repro.sweep.runner as runner

        def hang(config, workload):
            time_module.sleep(10)

        monkeypatch.setattr(runner, "run_experiment", hang)
        (result,) = run_jobs([small_job()], timeout=1, on_error="record")
        assert not result.ok
        assert "JobTimeout" in result.error
        assert result.wall_seconds < 5

    def test_invalid_on_error_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            run_jobs([small_job()], on_error="ignore")

    def test_progress_printer_reports_failures(self, monkeypatch):
        import io

        import repro.sweep.runner as runner

        monkeypatch.setattr(
            runner,
            "run_experiment",
            lambda c, w: (_ for _ in ()).throw(ValueError("boom")),
        )
        stream = io.StringIO()
        run_jobs(
            [small_job()],
            on_error="record",
            progress=runner.ProgressPrinter(stream),
        )
        assert "FAILED: ValueError: boom" in stream.getvalue()


class TestProgressTracker:
    """Structured progress records with the ETA guards the serve layer
    relies on."""

    @staticmethod
    def fake_result(label="p", cached=False, wall=1.0, cycles=100, error=None):
        from unittest.mock import Mock

        from repro.sweep.runner import JobResult

        stats = None if error else Mock(cycles=cycles)
        return JobResult(
            Mock(label=label), stats, cached, wall, "k" * 8, error=error
        )

    def test_no_eta_before_first_execution(self):
        from repro.sweep.runner import ProgressTracker

        tracker = ProgressTracker()
        record = tracker.record(self.fake_result(cached=True, wall=0.0), 1, 3)
        assert record["eta_seconds"] is None  # executed == 0: no rate yet
        assert record["cached"] is True

    def test_eta_appears_after_execution_and_clamps_nonnegative(self):
        from repro.sweep.runner import ProgressTracker

        tracker = ProgressTracker()
        tracker.record(self.fake_result(wall=2.0), 1, 3)
        record = tracker.record(self.fake_result(wall=4.0), 2, 3)
        assert record["eta_seconds"] == pytest.approx(3.0)  # mean 3s x 1 left
        final = tracker.record(self.fake_result(wall=1.0), 3, 3)
        assert final["eta_seconds"] == 0.0  # nothing remaining

    def test_zero_wall_executions_do_not_divide_by_zero(self):
        from repro.sweep.runner import ProgressTracker

        tracker = ProgressTracker()
        record = tracker.record(self.fake_result(wall=0.0), 1, 5)
        assert record["eta_seconds"] == 0.0
        # Negative wall clocks (clock skew) clamp instead of going negative.
        record = tracker.record(self.fake_result(wall=-1.0), 2, 5)
        assert record["eta_seconds"] == 0.0
        assert record["wall_seconds"] == 0.0

    def test_record_is_json_serializable(self):
        from repro.sweep.runner import ProgressTracker

        tracker = ProgressTracker()
        record = tracker.record(self.fake_result(), 1, 2)
        parsed = json.loads(json.dumps(record))
        assert parsed["event"] == "point"
        assert parsed["label"] == "p"
        assert parsed["cycles"] == 100

    def test_failed_point_record(self):
        from repro.sweep.runner import ProgressTracker

        tracker = ProgressTracker()
        record = tracker.record(
            self.fake_result(error="ValueError: boom"), 1, 1
        )
        assert record["ok"] is False
        assert record["cycles"] is None
        assert "boom" in ProgressTracker.describe(record)

    def test_printer_derives_line_from_record(self):
        import io

        from repro.sweep.runner import ProgressPrinter

        stream = io.StringIO()
        printer = ProgressPrinter(stream)
        printer(self.fake_result(label="weather", cycles=1234), 1, 2)
        assert len(printer.records) == 1
        line = stream.getvalue()
        assert "[1/2]" in line and "weather" in line and "1,234" in line


class TestFigureGrids:
    def test_grid_titles_cover_the_evaluation(self):
        grids = figure_grids(8, 2)
        titles = " ".join(grids)
        for fragment in ("Figure 7", "Figure 8", "Figure 9", "Figure 10", "5.2"):
            assert fragment in titles

    def test_shared_baselines_dedupe(self):
        from repro.sweep import job_key

        grids = figure_grids(8, 2)
        jobs = [job for js in grids.values() for job in js]
        keys = {job_key(j.config, j.workload, "fp") for j in jobs}
        # Full-Map/Weather and Dir4NB/Weather repeat across figures.
        assert len(keys) < len(jobs)

    def test_run_figure_suite_writes_artifact(self, tmp_path):
        out = tmp_path / "BENCH_figures.json"
        artifact = run_figure_suite(
            4,
            2,
            cache=ResultCache(tmp_path / "cache"),
            only=["Figure 7"],
            out=out,
            echo=lambda line: None,
        )
        assert out.is_file()
        on_disk = json.loads(out.read_text())
        assert on_disk["figures"][0]["title"].startswith("Figure 7")
        rows = on_disk["figures"][0]["rows"]
        assert len(rows) == 4
        assert all(row["cycles"] > 0 for row in rows)
        assert artifact["simulated"] + artifact["reused"] == len(rows)

    def test_unknown_figure_filter_raises(self):
        with pytest.raises(ValueError, match="no figure matches"):
            run_figure_suite(4, 2, only=["Figure 99"], echo=lambda line: None)


class TestSweepCli:
    def test_list_prints_grids(self, capsys):
        assert sweep_main(["--list", "--procs", "4", "--iters", "2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "multigrid" in out

    def test_small_run_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "BENCH_figures.json"
        code = sweep_main(
            [
                "--procs", "4",
                "--iters", "2",
                "--figures", "5.2",
                "--cache-dir", str(tmp_path / "cache"),
                "--out", str(out),
            ]
        )
        assert code == 0
        assert out.is_file()
        assert "optimized Weather" in capsys.readouterr().out

    def test_unknown_figure_errors(self, tmp_path, capsys):
        code = sweep_main(
            ["--figures", "nope", "--cache-dir", str(tmp_path), "--out", ""]
        )
        assert code == 2

    def test_clear_cache(self, tmp_path, capsys):
        code = sweep_main(["--clear-cache", "--cache-dir", str(tmp_path)])
        assert code == 0
        assert "removed" in capsys.readouterr().out
