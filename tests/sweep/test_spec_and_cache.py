"""Tests for workload specs, cache keys, and the on-disk result cache."""

from __future__ import annotations

import pytest

from repro.machine import AlewifeConfig, MachineStats, run_experiment
from repro.sweep import (
    WORKLOAD_REGISTRY,
    ResultCache,
    SourceFingerprint,
    WorkloadSpec,
    job_key,
    source_fingerprint,
)
from repro.workloads import Workload


@pytest.fixture(scope="module")
def small_stats() -> MachineStats:
    config = AlewifeConfig(n_procs=4, protocol="fullmap", max_cycles=2_000_000)
    return run_experiment(config, WorkloadSpec("hotspot", {"rounds": 2}).build())


class TestWorkloadSpec:
    def test_registry_builds_real_workloads(self):
        spec = WorkloadSpec("weather", {"iterations": 2})
        workload = spec.build()
        assert isinstance(workload, Workload)
        # A spec builds a *fresh* instance each time.
        assert spec.build() is not workload

    def test_every_registered_name_is_a_workload_class(self):
        for cls in WORKLOAD_REGISTRY.values():
            assert issubclass(cls, Workload)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            WorkloadSpec("linpack")

    def test_key_dict_normalizes_tuples(self):
        a = WorkloadSpec("multigrid", {"levels": (2, 2)})
        b = WorkloadSpec("multigrid", {"levels": [2, 2]})
        assert a.key_dict() == b.key_dict()


class TestJobKey:
    def test_stable_for_identical_inputs(self):
        config = AlewifeConfig(n_procs=8)
        spec = WorkloadSpec("weather", {"iterations": 3})
        assert job_key(config, spec, "fp") == job_key(config, spec, "fp")

    def test_changes_with_config_workload_and_source(self):
        config = AlewifeConfig(n_procs=8)
        spec = WorkloadSpec("weather", {"iterations": 3})
        base = job_key(config, spec, "fp")
        assert job_key(config.with_(ts=100), spec, "fp") != base
        assert job_key(config, WorkloadSpec("weather", {"iterations": 4}), "fp") != base
        assert job_key(config, spec, "other-source") != base

    def test_source_fingerprint_is_stable_hex(self):
        fp = source_fingerprint()
        assert fp == source_fingerprint()
        assert len(fp) == 64
        int(fp, 16)


class TestSourceFingerprint:
    def test_memoizes_and_tracks_source_changes(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        fingerprint = SourceFingerprint(tmp_path)
        first = fingerprint.value()
        assert fingerprint.value() is first  # memoized, not recomputed
        # Without invalidation a source edit goes unnoticed (the memo is
        # the point); invalidate() recomputes and sees the change.
        (tmp_path / "a.py").write_text("x = 2\n")
        assert fingerprint.value() == first
        fingerprint.invalidate()
        assert fingerprint.value() != first

    def test_no_process_global_state(self, tmp_path):
        # Two caches hold independent fingerprints: invalidating one
        # leaves the other's memo untouched.
        (tmp_path / "a.py").write_text("x = 1\n")
        cache_a = ResultCache(
            tmp_path / "ca", fingerprint=SourceFingerprint(tmp_path)
        )
        cache_b = ResultCache(
            tmp_path / "cb", fingerprint=SourceFingerprint(tmp_path)
        )
        value_a = cache_a.fingerprint.value()
        value_b = cache_b.fingerprint.value()
        assert value_a == value_b
        cache_a.invalidate()
        assert cache_a.fingerprint._value is None
        assert cache_b.fingerprint._value is not None

    def test_module_has_no_fingerprint_global(self):
        import repro.sweep.cache as cache_module

        assert not hasattr(cache_module, "_fingerprint_cache")


class TestMachineStatsRoundTrip:
    def test_to_dict_from_dict_preserves_results(self, small_stats):
        clone = MachineStats.from_dict(small_stats.to_dict())
        assert clone.cycles == small_stats.cycles
        assert clone.config == small_stats.config
        assert clone.counters.as_dict() == small_stats.counters.as_dict()
        assert clone.network.packets == small_stats.network.packets
        assert clone.network.per_opcode == small_stats.network.per_opcode
        assert clone.worker_sets.as_sorted_items() == (
            small_stats.worker_sets.as_sorted_items()
        )
        assert clone.per_proc_finish == small_stats.per_proc_finish
        assert clone.summary() == small_stats.summary()

    def test_survives_json_round_trip(self, small_stats):
        import json

        clone = MachineStats.from_dict(json.loads(json.dumps(small_stats.to_dict())))
        assert clone.cycles == small_stats.cycles
        assert clone.worker_sets.mean() == small_stats.worker_sets.mean()


class TestResultCache:
    def test_store_then_lookup(self, tmp_path, small_stats):
        cache = ResultCache(tmp_path)
        assert cache.lookup("k1") is None
        cache.store("k1", small_stats, wall_seconds=0.5, label="t")
        found = cache.lookup("k1")
        assert found is not None
        assert found.cycles == small_stats.cycles
        assert cache.hits == 1 and cache.misses == 1 and cache.stores == 1

    def test_disabled_cache_is_inert(self, tmp_path, small_stats):
        cache = ResultCache(tmp_path, enabled=False)
        cache.store("k1", small_stats, wall_seconds=0.1)
        assert cache.lookup("k1") is None
        assert list(tmp_path.iterdir()) == []

    def test_corrupt_entry_misses_cleanly(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / "bad.json").write_text("{not json")
        assert cache.lookup("bad") is None

    def test_version_mismatch_misses(self, tmp_path, small_stats):
        cache = ResultCache(tmp_path)
        cache.store("k1", small_stats, wall_seconds=0.1)
        import json

        path = tmp_path / "k1.json"
        entry = json.loads(path.read_text())
        entry["version"] = -1
        path.write_text(json.dumps(entry))
        assert cache.lookup("k1") is None

    def test_clear_removes_entries(self, tmp_path, small_stats):
        cache = ResultCache(tmp_path)
        cache.store("k1", small_stats, wall_seconds=0.1)
        cache.store("k2", small_stats, wall_seconds=0.1)
        assert cache.clear() == 2
        assert cache.lookup("k1") is None

    def test_clear_sweeps_orphaned_temp_files(self, tmp_path, small_stats):
        cache = ResultCache(tmp_path)
        cache.store("k1", small_stats, wall_seconds=0.1)
        # A crashed run can leave the write-then-rename temp file behind.
        (tmp_path / "k2.tmp").write_text("{partial")
        assert cache.clear() == 1
        assert list(tmp_path.iterdir()) == []

    def test_unwritable_directory_degrades_to_cacheless(
        self, tmp_path, small_stats
    ):
        # Pointing the cache at a path whose parent is a *file* makes every
        # write fail; the sweep must keep its results and merely lose
        # caching.
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        cache = ResultCache(blocker / "cache")
        with pytest.warns(RuntimeWarning, match="result cache disabled"):
            cache.store("k1", small_stats, wall_seconds=0.1)
        assert not cache.enabled
        assert cache.stores == 0
        # Subsequent operations are inert, not fatal.
        cache.store("k2", small_stats, wall_seconds=0.1)
        assert cache.lookup("k1") is None
