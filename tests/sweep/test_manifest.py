"""Write-ahead manifest + crash-safe campaign semantics of ``run_jobs``."""

from __future__ import annotations

import json

import pytest

from repro.machine import AlewifeConfig
from repro.sweep.cache import ResultCache
from repro.sweep.manifest import CampaignManifest, PointState
from repro.sweep.runner import run_jobs
from repro.sweep.spec import Job, WorkloadSpec, job_key


def _job(label="pt", **overrides) -> Job:
    config = AlewifeConfig(n_procs=4, protocol="fullmap", **overrides)
    return Job(label, config, WorkloadSpec("weather", {"iterations": 1}))


def _failing_job(label="bad") -> Job:
    # worker-set size 99 on a 4-proc machine fails at build time, inside
    # the worker — a deterministic per-point failure.
    config = AlewifeConfig(n_procs=4, protocol="fullmap")
    return Job(
        label,
        config,
        WorkloadSpec("synthetic", {"worker_sets": [[99, 1]], "rounds": 1}),
    )


def _key(job: Job, cache: ResultCache) -> str:
    return job_key(job.config, job.workload, cache.fingerprint.value())


class TestManifestLog:
    def test_roundtrip(self, tmp_path):
        m = CampaignManifest(tmp_path / "m.ndjson")
        m.start("k1", "a", 1)
        m.done("k1")
        m.start("k2", "b", 1)
        m.failed("k2", 1, "boom")
        m.start("k3", "c", 1)  # no terminal record: died in flight
        m.close()
        states = m.load()
        assert states["k1"].done and states["k1"].crashed_attempts == 0
        assert states["k2"] == PointState(
            attempts=1, inflight=0, done=False, label="b", last_error="boom"
        )
        assert states["k3"].inflight == 1 and states["k3"].crashed_attempts == 1

    def test_missing_log_is_empty(self, tmp_path):
        assert CampaignManifest(tmp_path / "nope.ndjson").load() == {}

    def test_torn_tail_is_ignored(self, tmp_path):
        path = tmp_path / "m.ndjson"
        m = CampaignManifest(path)
        m.start("k1", "a", 1)
        m.done("k1")
        m.close()
        with open(path, "a") as fh:
            fh.write('{"event":"start","key":"k2","labe')  # crash mid-append
        states = m.load()
        assert states["k1"].done
        assert "k2" not in states


class TestCampaignResume:
    def test_inflight_point_requeued_within_budget(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        job = _job()
        m = CampaignManifest(tmp_path / "m.ndjson")
        m.start(_key(job, cache), "pt", 1)  # previous process died here
        m.close()
        result = run_jobs([job], cache=cache, manifest=m, resume=True, retries=1)[0]
        assert result.ok and result.stats is not None
        assert m.load()[_key(job, cache)].done

    def test_poisoned_point_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        job = _job()
        key = _key(job, cache)
        m = CampaignManifest(tmp_path / "m.ndjson")
        m.start(key, "pt", 1)
        m.start(key, "pt", 2)  # two campaign runs died on this point
        m.close()
        # Quarantine never raises, even under on_error="raise".
        result = run_jobs(
            [job], cache=cache, manifest=m, resume=True, retries=1
        )[0]
        assert result.stats is None
        assert result.error.startswith("quarantined")
        events = [
            json.loads(line)["event"]
            for line in (tmp_path / "m.ndjson").read_text().splitlines()
        ]
        assert "quarantined" in events

    def test_completed_points_resume_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        job = _job()
        m = CampaignManifest(tmp_path / "m.ndjson")
        first = run_jobs([job], cache=cache, manifest=m)[0]
        assert not first.cached
        again = run_jobs([job], cache=cache, manifest=m, resume=True)[0]
        m.close()
        assert again.cached
        assert again.stats.to_dict() == first.stats.to_dict()

    def test_retries_then_record(self, tmp_path):
        m = CampaignManifest(tmp_path / "m.ndjson")
        result = run_jobs(
            [_failing_job()],
            cache=ResultCache(enabled=False),
            manifest=m,
            retries=2,
            retry_backoff=0.0,
            on_error="record",
        )[0]
        m.close()
        state = list(m.load().values())[0]
        assert not result.ok
        assert state.attempts == 3  # initial attempt + 2 retries, all logged

    def test_retries_then_raise(self, tmp_path):
        m = CampaignManifest(tmp_path / "m.ndjson")
        with pytest.raises(RuntimeError, match="bad"):
            run_jobs(
                [_failing_job()],
                cache=ResultCache(enabled=False),
                manifest=m,
                retries=1,
                retry_backoff=0.0,
            )
        m.close()
        assert list(m.load().values())[0].attempts == 2


class TestCacheDegradation:
    def test_write_errors_counted_and_visible(self, tmp_path):
        # A regular file where the cache directory should be makes every
        # store fail with OSError, even when the tests run as root
        # (where a read-only chmod would not actually block writes).
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        cache = ResultCache(blocker / "cache")
        with pytest.warns(RuntimeWarning, match="result cache disabled"):
            result = run_jobs([_job()], cache=cache)[0]
        assert result.ok  # degradation must not fail the sweep
        assert cache.write_errors == 1 and not cache.enabled
        assert "write error" in cache.summary()
